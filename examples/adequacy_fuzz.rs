//! The adequacy differential harness (Thm. 6.2) as a standalone fuzzer:
//! generate random programs, optimize them, check SEQ refinement, then
//! check PS^na contextual refinement under random contexts — forever (or
//! for `--rounds N`). Exploration runs on the `seqwm-explore` engine,
//! optionally with parallel workers.
//!
//! ```sh
//! cargo run --release --example adequacy_fuzz -- --rounds 100 --seed 7
//! cargo run --release --example adequacy_fuzz -- --workers 4
//! ```

use promising_seq::explore::{ExploreConfig, SplitMix64};
use promising_seq::litmus::gen::{random_context, random_program, GenConfig};
use promising_seq::opt::pipeline::{Pipeline, PipelineConfig};
use promising_seq::promising::machine::ps_behaviors_refine;
use promising_seq::promising::search::{engine_config, explore_engine};
use promising_seq::promising::thread::PsConfig;
use promising_seq::seq::refine::{refines_advanced_or_simple_config, RefineConfig};

fn main() {
    let mut rounds = 50usize;
    let mut seed = 0xFEED_F00Du64;
    let mut workers = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rounds" => rounds = args.next().and_then(|v| v.parse().ok()).unwrap_or(rounds),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--workers" => workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            other => {
                eprintln!("unknown argument {other} (use --rounds N --seed S --workers W)");
                std::process::exit(1);
            }
        }
    }

    let gen_cfg = GenConfig {
        max_stmts: 5,
        ..GenConfig::default()
    };
    let refine_cfg = RefineConfig {
        max_steps: 64,
        ..RefineConfig::default()
    };
    let pipeline = Pipeline::new(PipelineConfig::default());
    let ps_cfg = PsConfig::default();
    let ecfg = ExploreConfig {
        workers,
        ..engine_config(&ps_cfg)
    };
    let mut rng = SplitMix64::new(seed);

    let mut optimized = 0usize;
    let mut seq_checked = 0usize;
    let mut ps_checked = 0usize;
    let mut states_total = 0usize;
    for round in 0..rounds {
        let src = random_program(&mut rng, &gen_cfg);
        let out = pipeline.optimize(&src);
        if out.program == src {
            continue;
        }
        optimized += 1;

        // SEQ refinement (simple, falling back to advanced).
        match refines_advanced_or_simple_config(&src, &out.program, &refine_cfg) {
            Ok(_) => seq_checked += 1,
            Err(e) => {
                eprintln!(
                    "✗ SEQ VIOLATION at round {round} (seed {seed}):\n{e}\nsrc:\n{src}\ntgt:\n{}",
                    out.program
                );
                std::process::exit(2);
            }
        }

        // PS^na contextual refinement under a random context.
        let ctx = random_context(&mut rng, &gen_cfg);
        let mut src_threads = vec![src.clone()];
        let mut tgt_threads = vec![out.program.clone()];
        if rng.chance(80) {
            src_threads.push(ctx.clone());
            tgt_threads.push(ctx);
        }
        let sb = explore_engine(&src_threads, &ps_cfg, &ecfg);
        let tb = explore_engine(&tgt_threads, &ps_cfg, &ecfg);
        states_total += sb.stats.states + tb.stats.states;
        if sb.stats.truncated || tb.stats.truncated {
            continue; // context too big for exhaustive exploration
        }
        if let Err(unmatched) = ps_behaviors_refine(&tb.behaviors, &sb.behaviors) {
            eprintln!(
                "✗ ADEQUACY VIOLATION at round {round} (seed {seed}): behavior {unmatched}\nsrc:\n{src}\ntgt:\n{}",
                out.program
            );
            std::process::exit(3);
        }
        ps_checked += 1;
        if round % 10 == 9 {
            println!(
                "round {:4}: {optimized} optimized, {seq_checked} SEQ-validated, \
                 {ps_checked} PS^na-validated, {states_total} states explored",
                round + 1
            );
        }
    }
    println!(
        "done: {rounds} rounds, {optimized} programs optimized, {seq_checked} SEQ refinements, \
         {ps_checked} PS^na contextual refinements ({states_total} engine states, {workers} \
         worker{}) — no violation found ✓",
        if workers == 1 { "" } else { "s" }
    );
}
