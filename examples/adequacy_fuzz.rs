//! The adequacy differential harness (Thm. 6.2) as a standalone fuzzer
//! — now a thin wrapper over the `seqwm-fuzz` campaign driver, which
//! owns the generate → optimize → SEQ → PS^na → SC loop, shrinks any
//! failure it finds, and persists replayable reproducers to a corpus
//! directory.
//!
//! ```sh
//! cargo run --release --example adequacy_fuzz -- --rounds 100 --seed 7
//! cargo run --release --example adequacy_fuzz -- --workers 4
//! ```
//!
//! Exit codes match the historical harness: 0 clean, 2 on a SEQ
//! violation, 3 on a PS^na/SC violation (the full campaign summary is
//! printed either way; `seqwm fuzz` is the richer front end).

use promising_seq::fuzz::{run_campaign, FuzzConfig, OracleKind};
use promising_seq::litmus::gen::GenConfig;

fn main() {
    let mut rounds = 50usize;
    let mut seed = 0xFEED_F00Du64;
    let mut workers = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rounds" => rounds = args.next().and_then(|v| v.parse().ok()).unwrap_or(rounds),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--workers" => workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            other => {
                eprintln!("unknown argument {other} (use --rounds N --seed S --workers W)");
                std::process::exit(1);
            }
        }
    }

    let cfg = FuzzConfig {
        cases: rounds,
        seed,
        workers,
        gen: GenConfig {
            max_stmts: 5,
            ..GenConfig::default()
        },
        corpus_dir: std::env::temp_dir().join(format!("adequacy-fuzz-{}", std::process::id())),
        checkpoint_every: 0,
        ..FuzzConfig::default()
    };
    let summary = match run_campaign(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "done: {} rounds, {} optimized checks, {} validated, {} quarantined, \
         {} engine states, {} worker{}",
        summary.cases_run,
        summary.optimized,
        summary.checks_passed,
        summary.incident_count,
        summary.states,
        cfg.workers,
        if cfg.workers == 1 { "" } else { "s" }
    );
    if summary.clean() {
        println!("no violation found ✓");
        let _ = std::fs::remove_dir_all(&cfg.corpus_dir);
        return;
    }
    let mut worst = 0;
    for f in &summary.unique_failures {
        eprintln!(
            "✗ VIOLATION: {} via {} (shrunk {} → {} stmts): {}",
            f.target,
            f.oracle,
            f.original_stmts,
            f.shrunk_stmts,
            f.path.display()
        );
        worst = worst.max(match f.oracle {
            OracleKind::Seq => 2,
            OracleKind::PsCtx | OracleKind::Sc | OracleKind::ModelDiff => 3,
        });
    }
    std::process::exit(worst.max(2));
}
