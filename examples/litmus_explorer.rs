//! Explore any named litmus case (or the whole corpus) under the three
//! machines — SC, the promise-free release/acquire fragment, and full
//! PS^na — and print the behavior sets side by side, with the
//! exploration-engine statistics (dedup hits, reduction savings, worker
//! utilization).
//!
//! ```sh
//! cargo run --example litmus_explorer                      # list cases
//! cargo run --example litmus_explorer sb-rlx               # run one case
//! cargo run --example litmus_explorer --all                # run everything
//! cargo run --example litmus_explorer sb-rlx --workers 4   # parallel frontier
//! cargo run --example litmus_explorer sb-rlx --no-reduction
//! ```

use promising_seq::explore::ExploreConfig;
use promising_seq::litmus::concurrent::{concurrent_corpus, ConcurrentCase};
use promising_seq::litmus::transform::transform_corpus;
use promising_seq::promising::sc::{explore_sc_engine, ScConfig};
use promising_seq::promising::search::{engine_config, explore_engine};
use promising_seq::promising::PsConfig;

fn main() {
    let mut name: Option<String> = None;
    let mut all = false;
    let mut ecfg = ExploreConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--all" => all = true,
            "--workers" => {
                ecfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(ecfg.workers)
            }
            "--no-reduction" => ecfg.reduction = false,
            other => name = Some(other.to_owned()),
        }
    }
    match (all, name) {
        (true, _) => {
            for case in concurrent_corpus() {
                run_case(&case, &ecfg);
            }
        }
        (false, None) => list(),
        (false, Some(name)) => {
            let Some(case) = concurrent_corpus().into_iter().find(|c| c.name == name) else {
                eprintln!("unknown case `{name}` — run without arguments to list cases");
                std::process::exit(1);
            };
            run_case(&case, &ecfg);
        }
    }
}

fn list() {
    println!("concurrent cases (run with a name or --all):");
    for c in concurrent_corpus() {
        println!("  {:36} {}", c.name, c.paper_ref);
    }
    println!("\ntransformation cases (checked by `cargo test --test paper_examples`):");
    for c in transform_corpus() {
        println!("  {:36} {} ({:?})", c.name, c.paper_ref, c.expectation);
    }
}

fn run_case(case: &ConcurrentCase, ecfg: &ExploreConfig) {
    println!("════ {} — {} ════", case.name, case.paper_ref);
    let progs = case.programs();
    for (i, t) in progs.iter().enumerate() {
        println!("─ thread {i} ─");
        for line in t.to_string().lines() {
            println!("    {line}");
        }
    }
    let knobs = |base: ExploreConfig| ExploreConfig {
        workers: ecfg.workers,
        reduction: ecfg.reduction,
        ..base
    };
    let sc_cfg = ScConfig::default();
    let sc = explore_sc_engine(
        &progs,
        &sc_cfg,
        &knobs(ExploreConfig {
            max_states: sc_cfg.max_states,
            max_depth: sc_cfg.max_steps,
            ..ExploreConfig::default()
        }),
    );
    println!(
        "SC            ({:6} states): {}",
        sc.states,
        fmt_behaviors(&sc.behaviors)
    );
    let ra_cfg = PsConfig::default();
    let ra = explore_engine(&progs, &ra_cfg, &knobs(engine_config(&ra_cfg)));
    println!(
        "RA (no promises, {:4} states): {}",
        ra.stats.states,
        fmt_behaviors(&ra.behaviors)
    );
    let cfg = case.config();
    let ps = explore_engine(&progs, &cfg, &knobs(engine_config(&cfg)));
    println!(
        "PS^na        ({:6} states{}): {}",
        ps.stats.states,
        if cfg.allow_promises { ", promises" } else { "" },
        fmt_behaviors(&ps.behaviors)
    );
    println!("  engine: {}", ps.stats);
    if ps.stats.racy_steps > 0 {
        println!("  ⚠ racy accesses reachable");
    }
    match case.check_with_engine(&knobs(engine_config(&cfg))) {
        Ok(_) => println!("  ✓ all paper expectations hold"),
        Err(e) => println!("  ✗ {e}"),
    }
    println!();
}

fn fmt_behaviors<B: std::fmt::Display>(set: &std::collections::BTreeSet<B>) -> String {
    set.iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join("  ")
}
