//! Explore any named litmus case (or the whole corpus) under the three
//! machines — SC, the promise-free release/acquire fragment, and full
//! PS^na — and print the behavior sets side by side.
//!
//! ```sh
//! cargo run --example litmus_explorer            # list cases
//! cargo run --example litmus_explorer sb-rlx     # run one case
//! cargo run --example litmus_explorer --all      # run everything
//! ```

use promising_seq::litmus::concurrent::{concurrent_corpus, ConcurrentCase};
use promising_seq::litmus::transform::transform_corpus;
use promising_seq::promising::sc::{explore_sc, ScConfig};
use promising_seq::promising::{explore, PsConfig};

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        None => list(),
        Some("--all") => {
            for case in concurrent_corpus() {
                run_case(&case);
            }
        }
        Some(name) => {
            let Some(case) = concurrent_corpus().into_iter().find(|c| c.name == name) else {
                eprintln!("unknown case `{name}` — run without arguments to list cases");
                std::process::exit(1);
            };
            run_case(&case);
        }
    }
}

fn list() {
    println!("concurrent cases (run with a name or --all):");
    for c in concurrent_corpus() {
        println!("  {:36} {}", c.name, c.paper_ref);
    }
    println!("\ntransformation cases (checked by `cargo test --test paper_examples`):");
    for c in transform_corpus() {
        println!("  {:36} {} ({:?})", c.name, c.paper_ref, c.expectation);
    }
}

fn run_case(case: &ConcurrentCase) {
    println!("════ {} — {} ════", case.name, case.paper_ref);
    let progs = case.programs();
    for (i, t) in progs.iter().enumerate() {
        println!("─ thread {i} ─");
        for line in t.to_string().lines() {
            println!("    {line}");
        }
    }
    let sc = explore_sc(&progs, &ScConfig::default());
    println!("SC            ({:6} states): {}", sc.states, fmt_behaviors(&sc.behaviors));
    let ra = explore(&progs, &PsConfig::default());
    println!("RA (no promises, {:4} states): {}", ra.states, fmt_behaviors(&ra.behaviors));
    let cfg = case.config();
    let ps = explore(&progs, &cfg);
    println!(
        "PS^na        ({:6} states{}): {}",
        ps.states,
        if cfg.allow_promises { ", promises" } else { "" },
        fmt_behaviors(&ps.behaviors)
    );
    if ps.racy {
        println!("  ⚠ racy accesses reachable");
    }
    match case.check() {
        Ok(()) => println!("  ✓ all paper expectations hold"),
        Err(e) => println!("  ✗ {e}"),
    }
    println!();
}

fn fmt_behaviors<B: std::fmt::Display>(set: &std::collections::BTreeSet<B>) -> String {
    set.iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join("  ")
}
