//! Quickstart: parse a program, optimize it, validate the optimization in
//! SEQ (sequential reasoning only!), then watch it run under the weak
//! memory model PS^na next to a concurrent context.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use promising_seq::lang::parser::parse_program;
use promising_seq::opt::pipeline::PipelineConfig;
use promising_seq::opt::validate::optimize_validated;
use promising_seq::promising::{explore, PsConfig};
use promising_seq::seq::refine::RefineConfig;

fn main() {
    // The running example of the paper (Fig. 4): a non-atomic store whose
    // value survives an acquire read and a release write.
    let src = parse_program(
        "store[na](x, 42);
         l := load[acq](y);
         if (l == 0) { a := load[na](x); }
         store[rel](y, 1);
         b := load[na](x);
         return b;",
    )
    .expect("example parses");

    println!("== source ==\n{src}");

    // Optimize with the four passes of §4 and validate each stage against
    // the sequential model SEQ — no weak-memory reasoning involved.
    let validated = optimize_validated(&src, PipelineConfig::default(), &RefineConfig::default())
        .expect("optimizer output refines its input in SEQ");
    println!("== optimized ==\n{}", validated.result.program);
    for stats in &validated.result.stats {
        println!("  pass {stats}");
    }
    for v in &validated.validations {
        println!("  validated {:?} via {:?}", v.pass, v.by);
    }

    // By the paper's adequacy theorem, SEQ refinement implies contextual
    // refinement under PS^na. Demonstrate by running both versions next to
    // a concurrent observer.
    let observer = parse_program(
        "f := load[acq](y); if (f == 1) { d := load[na](x); } else { d := 0 - 1; } return d;",
    )
    .expect("observer parses");

    let cfg = PsConfig::default();
    let before = explore(&[src.clone(), observer.clone()], &cfg);
    let after = explore(&[validated.result.program.clone(), observer], &cfg);

    println!(
        "== PS^na behaviors before optimization ({} states) ==",
        before.states
    );
    for b in &before.behaviors {
        println!("  {b}");
    }
    println!(
        "== PS^na behaviors after optimization ({} states) ==",
        after.states
    );
    for b in &after.behaviors {
        println!("  {b}");
    }
    assert!(
        after
            .behaviors
            .iter()
            .all(|tb| before.behaviors.iter().any(|sb| tb.refines(sb))),
        "contextual refinement holds (Thm. 6.2)"
    );
    println!("contextual refinement holds — every optimized behavior is a source behavior ✓");
}
