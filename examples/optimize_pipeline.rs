//! Walk through the Fig. 4 optimization in detail: show each pass's
//! rewrites and each intermediate program, plus the per-pass validation
//! verdicts — reproducing the paper's worked example (§4, Fig. 3/4).
//!
//! ```sh
//! cargo run --example optimize_pipeline [path/to/program.wm]
//! ```

use std::fs;

use promising_seq::lang::parser::parse_program;
use promising_seq::opt::pipeline::{PassKind, PipelineConfig};
use promising_seq::opt::validate::optimize_validated;
use promising_seq::seq::refine::RefineConfig;

const FIG4: &str = "store[na](x, 42);
l := load[acq](y);
if (l == 0) { a := load[na](x); }
store[rel](y, 1);
b := load[na](x);
return b;";

fn main() {
    let source = match std::env::args().nth(1) {
        Some(path) => fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => FIG4.to_owned(),
    };
    let prog = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    println!("┌─ input ─────────────────────────────────────");
    print_indented(&prog.to_string());

    let cfg = PipelineConfig::default();
    let passes = cfg.passes.clone();
    let v = match optimize_validated(&prog, cfg, &RefineConfig::default()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("VALIDATION FAILURE (optimizer bug!):\n{e}");
            std::process::exit(2);
        }
    };

    for (i, window) in v.result.stages.windows(2).enumerate() {
        let pass = passes[i % passes.len()];
        let stats = &v.result.stats[i];
        let validation = &v.validations[i];
        println!(
            "├─ after {} ({} rewrites, fixpoint ≤ {} iters, validated: {:?}) ─",
            pass_name(pass),
            stats.rewrites,
            stats.max_fixpoint_iterations,
            validation.by
        );
        if window[0] == window[1] {
            println!("│   (unchanged)");
        } else {
            print_indented(&window[1].to_string());
        }
    }
    println!("└─ total: {} rewrites", v.result.total_rewrites());
}

fn pass_name(p: PassKind) -> &'static str {
    match p {
        PassKind::Slf => "store-to-load forwarding (Fig. 3)",
        PassKind::Llf => "load-to-load forwarding (Fig. 8a)",
        PassKind::Dse => "dead store elimination (Fig. 8b)",
        PassKind::Licm => "loop-invariant code motion (App. D)",
        PassKind::ConstProp => "constant propagation (extension)",
        PassKind::Modes => "access-mode strengthening/elimination",
        PassKind::Fence => "fence elimination and merging",
        PassKind::Rmw => "redundant-RMW simplification",
        PassKind::Promote => "LDRF-gated register promotion",
    }
}

fn print_indented(s: &str) {
    for line in s.lines() {
        println!("│   {line}");
    }
}
