#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # seqwm-json
//!
//! The workspace's shared, dependency-free JSON layer: a [`Json`]
//! value type, a minimal recursive-descent parser, and a compact
//! emitter. It started life inside `seqwm-bench`'s report module and
//! was extracted once the serve daemon needed the same machinery for
//! its wire protocol; the workspace has no serde by design (offline,
//! zero registry dependencies), so this is the one place JSON is
//! read and written.
//!
//! The parser is only as lenient as round-tripping our own output
//! requires; it rejects anything structurally malformed (trailing
//! garbage, unterminated strings, unknown escapes). Object member
//! order is preserved on both ends: emitters write fields in a fixed
//! order and preserving it keeps diffs and checksums stable.
//!
//! Because the parser also reads *hostile* bytes (the serve daemon
//! hands it raw frames off a public socket), nesting is capped at
//! [`MAX_DEPTH`]: a `[[[[…` bomb is a positioned parse error, never a
//! recursion-driven stack overflow aborting the process.
//!
//! ```
//! use seqwm_json::Json;
//!
//! let v = Json::parse(r#"{"jobs":[{"id":3,"done":true}]}"#).unwrap();
//! let jobs = v.get("jobs").unwrap().as_arr("jobs").unwrap();
//! assert_eq!(jobs[0].get("id").unwrap().as_u64("id").unwrap(), 3);
//! assert_eq!(v.to_string(), r#"{"jobs":[{"id":3,"done":true}]}"#);
//! ```

use std::fmt;

/// Maximum container nesting depth the parser accepts. Every document
/// the workspace emits is a handful of levels deep; the cap exists so
/// adversarial input cannot drive the recursive-descent parser into a
/// stack overflow (which aborts, not unwinds).
pub const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON value. Object members keep their
/// insertion order (objects are association lists, not maps — small
/// documents, stable output).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `{...}` with member order preserved.
    Obj(Vec<(String, Json)>),
    /// `[...]`.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// Any number. Stored as `f64`: every emitter in this workspace
    /// writes unsigned integers small enough to round-trip exactly
    /// (u64 fingerprints travel as hex *strings* for that reason).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a byte-positioned diagnostic on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Convenience constructor: an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor: an unsigned integer value. Values
    /// beyond 2⁵³ lose precision in `f64`; callers with full-width
    /// u64s (fingerprints) should emit hex strings instead.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on an object (`None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object members, or a contextualized type error.
    ///
    /// # Errors
    ///
    /// When the value is not an object.
    pub fn as_obj(&self, ctx: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(format!("{ctx}: expected object, got {}", other.kind())),
        }
    }

    /// The array items, or a contextualized type error.
    ///
    /// # Errors
    ///
    /// When the value is not an array.
    pub fn as_arr(&self, ctx: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("{ctx}: expected array, got {}", other.kind())),
        }
    }

    /// The string contents, or a contextualized type error.
    ///
    /// # Errors
    ///
    /// When the value is not a string.
    pub fn as_str(&self, ctx: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{ctx}: expected string, got {}", other.kind())),
        }
    }

    /// The boolean, or a contextualized type error.
    ///
    /// # Errors
    ///
    /// When the value is not a bool.
    pub fn as_bool(&self, ctx: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{ctx}: expected bool, got {}", other.kind())),
        }
    }

    /// The value as an unsigned integer. Signs, fractions, and
    /// exponents parse as numbers but are rejected here — every
    /// integer field in the workspace's formats is unsigned.
    ///
    /// # Errors
    ///
    /// When the value is not a non-negative whole number.
    pub fn as_u64(&self, ctx: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => Ok(*n as u64),
            other => Err(format!(
                "{ctx}: expected unsigned integer, got {}",
                other.kind()
            )),
        }
    }

    /// The JSON type name, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Obj(_) => "object",
            Json::Arr(_) => "array",
            Json::Str(_) => "string",
            Json::Num(_) => "number",
            Json::Bool(_) => "bool",
            Json::Null => "null",
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Num(n) => {
                // Whole numbers render without a fraction so integer
                // fields round-trip byte-identically.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Null => out.push_str("null"),
        }
    }
}

/// Compact (no-whitespace) rendering; `Json::parse` inverts it.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Looks up `key` in an association-list object body, with a
/// missing-field diagnostic. (The slice-level twin of [`Json::get`],
/// for callers that already destructured via [`Json::as_obj`].)
///
/// # Errors
///
/// When no member named `key` exists.
pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Renders `s` as a quoted JSON string with the minimal escape set
/// (quotes, backslash, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// --- the recursive-descent parser ---

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn peek(b: &[u8], pos: &mut usize) -> Option<u8> {
    skip_ws(b, pos);
    b.get(*pos).copied()
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} levels at byte {}",
            *pos
        ));
    }
    match peek(b, pos).ok_or("unexpected end of input")? {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            if peek(b, pos) == Some(b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos, depth + 1)?;
                members.push((key, val));
                match peek(b, pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            if peek(b, pos) == Some(b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                match peek(b, pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b't' | b'f' | b'n' => {
            for (lit, val) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                if b[*pos..].starts_with(lit.as_bytes()) {
                    *pos += lit.len();
                    return Ok(val);
                }
            }
            Err(format!("invalid literal at byte {}", *pos))
        }
        _ => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let c = *b.get(*pos).ok_or("unterminated string")?;
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Our emitters only ever escape control
                        // characters; surrogate pairs are out of scope.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos)),
                }
            }
            _ => {
                // Re-sync to UTF-8 boundaries: back up and take the
                // whole code point.
                let start = *pos - 1;
                let s = std::str::from_utf8(&b[start..])
                    .map_err(|_| "invalid UTF-8 in string")?
                    .chars()
                    .next()
                    .ok_or("unterminated string")?;
                out.push(s);
                *pos = start + s.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_value_kind() {
        let v = Json::parse(r#"{"s":"x","n":42,"f":1.5,"b":true,"z":null,"a":[1,2]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str("s").unwrap(), "x");
        assert_eq!(v.get("n").unwrap().as_u64("n").unwrap(), 42);
        assert_eq!(v.get("f").unwrap(), &Json::Num(1.5));
        assert!(v.get("b").unwrap().as_bool("b").unwrap());
        assert_eq!(v.get("z").unwrap(), &Json::Null);
        assert_eq!(v.get("a").unwrap().as_arr("a").unwrap().len(), 2);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn display_and_parse_are_inverse() {
        let doc = r#"{"name":"quoted \"x\"\n","list":[0,1,2],"nested":{"ok":true,"v":null}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.to_string(), doc);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn constructed_values_render_compactly() {
        let v = Json::obj(vec![
            ("id", Json::num(7)),
            ("tag", Json::str("a\tb")),
            ("items", Json::Arr(vec![Json::Bool(false), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"id":7,"tag":"a\tb","items":[false,null]}"#
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "{} trailing",
            "{'a':1}",
            "nul",
            "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_reject_non_u64_reads() {
        for (doc, ok) in [("42", true), ("-1", false), ("1.5", false), ("0", true)] {
            let v = Json::parse(doc).unwrap();
            assert_eq!(v.as_u64("n").is_ok(), ok, "{doc}");
        }
    }

    #[test]
    fn escape_and_unicode_round_trip() {
        let s = "tabs\tnewlines\ncontrol\u{1}unicode→é";
        let doc = escape(s);
        assert_eq!(Json::parse(&doc).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn nesting_bomb_is_an_error_not_a_stack_overflow() {
        // Far past MAX_DEPTH: without the cap this recursion would
        // blow the thread stack and abort the whole process.
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.contains("nesting deeper"), "got: {err}");

        // Mixed object/array nesting trips the same cap.
        let mixed = "{\"a\":".repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(Json::parse(&mixed).is_err(), "mixed bomb accepted");

        // Reasonable depth still parses.
        let fine = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&fine).is_ok(), "64 levels must be fine");
    }

    #[test]
    fn get_reports_missing_fields() {
        let v = Json::parse(r#"{"a":1}"#).unwrap();
        let obj = v.as_obj("root").unwrap();
        assert_eq!(get(obj, "a").unwrap().as_u64("a").unwrap(), 1);
        assert!(get(obj, "b").unwrap_err().contains("missing field"));
    }

    #[test]
    fn member_order_is_preserved() {
        let doc = r#"{"z":1,"a":2,"m":3}"#;
        let v = Json::parse(doc).unwrap();
        let keys: Vec<&str> = v
            .as_obj("root")
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.to_string(), doc);
    }
}
