//! The [`ModelBackend`] trait and the registered executable backends.
//!
//! Every backend instantiates the `seqwm-explore`
//! [`TransitionSystem`](seqwm_explore::TransitionSystem) abstraction and
//! enumerates behaviors in the shared [`PsBehavior`] vocabulary, so
//! behavior sets are directly comparable across models — the invariant
//! the cross-model differential oracle and the DRF-gated planner both
//! rely on.
//!
//! The five production backends, strongest first:
//!
//! | kind | machine |
//! |---|---|
//! | [`ModelKind::Sc`] | flat-memory interleaving ([`ScSystem`]) |
//! | [`ModelKind::ScFence`] | PF machine over [`sc_fence_everywhere`] |
//! | [`ModelKind::Ra`] | PF machine over [`ra_strengthen`] |
//! | [`ModelKind::Pf`] | promise-free PS^na machine |
//! | [`ModelKind::PsNa`] | full PS^na (promises seeded from constants) |
//!
//! Expected behavior-set inclusions on any program:
//! `SC ⊑ SCF ⊑ PF ⊑ PS^na` and `SC ⊑ RA ⊑ PF` (each strengthening can
//! only *remove* behaviors). On race-free programs the paper's DRF
//! theorems collapse the chain to equalities — which is what
//! [`crate::plan`] exploits and `tests/model_differential.rs` asserts.

use std::collections::BTreeSet;

use seqwm_explore::ExploreConfig;
use seqwm_lang::{FenceMode, Program, ReadMode, RmwMode, Stmt, WriteMode};
use seqwm_promising::machine::PsBehavior;
use seqwm_promising::sc::{ScConfig, ScSystem};
use seqwm_promising::search::{engine_config, PsSystem};
use seqwm_promising::thread::PsConfig;

use crate::monitor::{pending_accesses, ConflictLog, ConflictSummary, Monitored};

// ---------------------------------------------------------------------------
// Model kinds
// ---------------------------------------------------------------------------

/// The registered memory models, strongest-to-weakest exploration cost.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ModelKind {
    /// Sequential consistency: one flat memory, plain interleaving.
    Sc,
    /// SC-fence discipline: an `fence[sc]` after every access, run on
    /// the promise-free machine.
    ScFence,
    /// Release/acquire: every relaxed access strengthened to
    /// acquire/release, run on the promise-free machine.
    Ra,
    /// The promise-free fragment of PS^na (promises disabled).
    Pf,
    /// Full PS^na with promise synthesis.
    PsNa,
    /// A deliberately broken backend (drops one behavior) proving the
    /// differential oracle catches an unsound model implementation.
    #[cfg(feature = "fault-injection")]
    PlantedUnsound,
}

impl ModelKind {
    /// Stable CLI / wire name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Sc => "sc",
            ModelKind::ScFence => "scf",
            ModelKind::Ra => "ra",
            ModelKind::Pf => "pf",
            ModelKind::PsNa => "psna",
            #[cfg(feature = "fault-injection")]
            ModelKind::PlantedUnsound => "planted-unsound",
        }
    }

    /// Parses a stable name back to the kind.
    pub fn parse(s: &str) -> Option<ModelKind> {
        Some(match s {
            "sc" => ModelKind::Sc,
            "scf" => ModelKind::ScFence,
            "ra" => ModelKind::Ra,
            "pf" => ModelKind::Pf,
            "psna" => ModelKind::PsNa,
            #[cfg(feature = "fault-injection")]
            "planted-unsound" => ModelKind::PlantedUnsound,
            _ => return None,
        })
    }

    /// All registered kinds, strongest first (production builds omit
    /// the planted-unsound backend).
    pub fn all() -> Vec<ModelKind> {
        vec![
            ModelKind::Sc,
            ModelKind::ScFence,
            ModelKind::Ra,
            ModelKind::Pf,
            ModelKind::PsNa,
            #[cfg(feature = "fault-injection")]
            ModelKind::PlantedUnsound,
        ]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Options and results
// ---------------------------------------------------------------------------

/// Budget and engine knobs shared by every backend.
#[derive(Clone, Debug, Default)]
pub struct ModelOpts {
    /// Bounds for the PS-machine family (PS^na, PF, RA, SC-fence).
    pub ps: PsConfig,
    /// Bounds for the SC machine.
    pub sc: ScConfig,
    /// Worker threads (0 = engine default of 1).
    pub workers: usize,
    /// Interleaving-reduction override for *behavior exploration*
    /// (`None` = engine default, on). Race scans always force it off —
    /// see [`ModelBackend::race_scan`].
    pub reduction: Option<bool>,
}

impl ModelOpts {
    fn apply(&self, mut ecfg: ExploreConfig) -> ExploreConfig {
        if self.workers > 0 {
            ecfg.workers = self.workers;
        }
        if let Some(r) = self.reduction {
            ecfg.reduction = r;
        }
        ecfg
    }

    fn ps_engine(&self) -> ExploreConfig {
        self.apply(engine_config(&self.ps))
    }

    fn sc_engine(&self) -> ExploreConfig {
        self.apply(ExploreConfig {
            max_states: self.sc.max_states,
            max_depth: self.sc.max_steps,
            ..ExploreConfig::default()
        })
    }
}

/// A behavior enumeration under one model.
#[derive(Clone, Debug)]
pub struct ModelExploration {
    /// Which model produced it.
    pub model: ModelKind,
    /// The behavior set, in the shared [`PsBehavior`] vocabulary.
    pub behaviors: BTreeSet<PsBehavior>,
    /// Distinct states expanded.
    pub states: usize,
    /// A bound was hit: behaviors may be missing.
    pub truncated: bool,
    /// The machine itself observed a racy-access step (PS-family
    /// machines only; the SC machine has no such notion).
    pub racy: bool,
}

/// A race scan: an unreduced exploration plus what the conflict
/// monitor saw along the way.
#[derive(Clone, Debug)]
pub struct RaceScan {
    /// The (reduction-off) exploration the scan rode on.
    pub exploration: ModelExploration,
    /// Conflicting concurrently-enabled pairs, per LDRF level.
    pub conflicts: ConflictSummary,
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// An executable memory-model backend.
pub trait ModelBackend: Sync {
    /// The registered kind.
    fn kind(&self) -> ModelKind;

    /// Stable name (defaults to the kind's).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Enumerates the behaviors of the parallel composition `progs`
    /// under this model, within `opts` bounds.
    fn explore(&self, progs: &[Program], opts: &ModelOpts) -> ModelExploration;

    /// Explores with the conflict monitor attached and interleaving
    /// reduction forced OFF, so every reachable state of the bounded
    /// space is inspected for concurrently enabled conflicting pairs.
    /// (Reduction prunes interleavings, not reachable states, but the
    /// unreduced scan makes the co-enabledness check exact by
    /// construction rather than by a commutativity argument.)
    fn race_scan(&self, progs: &[Program], opts: &ModelOpts) -> RaceScan;

    /// A canonical fingerprint of an exploration's behavior set —
    /// stable across backends, engines and runs, used by the
    /// differential oracle's reporting.
    fn behavior_fingerprint(&self, e: &ModelExploration) -> u128 {
        let rendered: Vec<String> = e.behaviors.iter().map(|b| b.to_string()).collect();
        seqwm_explore::fp128(&rendered)
    }
}

// ---------------------------------------------------------------------------
// Program transforms
// ---------------------------------------------------------------------------

/// Strengthens every relaxed atomic access to acquire/release (RMWs to
/// acq-rel). Non-atomics are left alone — under RA they are exactly
/// the race detectors' concern, not the model's. Running the
/// promise-free machine on the result is the RA baseline model.
pub fn ra_strengthen(prog: &Program) -> Program {
    Program::new(ra_stmt(&prog.body))
}

fn ra_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Load(r, x, ReadMode::Rlx) => Stmt::Load(*r, *x, ReadMode::Acq),
        Stmt::Store(x, WriteMode::Rlx, e) => Stmt::Store(*x, WriteMode::Rel, e.clone()),
        Stmt::Cas {
            dst,
            loc,
            expected,
            new,
            ..
        } => Stmt::Cas {
            dst: *dst,
            loc: *loc,
            expected: expected.clone(),
            new: new.clone(),
            mode: RmwMode::AcqRel,
        },
        Stmt::Fadd {
            dst, loc, operand, ..
        } => Stmt::Fadd {
            dst: *dst,
            loc: *loc,
            operand: operand.clone(),
            mode: RmwMode::AcqRel,
        },
        Stmt::Seq(a, b) => Stmt::Seq(Box::new(ra_stmt(a)), Box::new(ra_stmt(b))),
        Stmt::If(c, a, b) => Stmt::If(c.clone(), Box::new(ra_stmt(a)), Box::new(ra_stmt(b))),
        Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(ra_stmt(b))),
        other => other.clone(),
    }
}

/// Appends an `fence[sc]` after every memory access (and strengthens
/// like [`ra_strengthen`] first, so no relaxed access escapes the
/// discipline). Running the promise-free machine on the result is the
/// SC-fence baseline model.
pub fn sc_fence_everywhere(prog: &Program) -> Program {
    Program::new(scf_stmt(&ra_stmt(&prog.body)))
}

fn scf_stmt(s: &Stmt) -> Stmt {
    match s {
        acc @ (Stmt::Load(..) | Stmt::Store(..) | Stmt::Cas { .. } | Stmt::Fadd { .. }) => {
            Stmt::seq(acc.clone(), Stmt::Fence(FenceMode::Sc))
        }
        Stmt::Seq(a, b) => Stmt::seq(scf_stmt(a), scf_stmt(b)),
        Stmt::If(c, a, b) => Stmt::If(c.clone(), Box::new(scf_stmt(a)), Box::new(scf_stmt(b))),
        Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(scf_stmt(b))),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------------
// PS-machine family plumbing
// ---------------------------------------------------------------------------

/// The PS config for the full PS^na backend: if the caller's config
/// already allows promises it is used as-is; otherwise promises are
/// enabled with values seeded from the programs' constants (the
/// [`PsConfig::with_promises`] rule) while every *bound* of the
/// caller's config is preserved.
fn psna_cfg(progs: &[Program], base: &PsConfig) -> PsConfig {
    if base.allow_promises {
        return base.clone();
    }
    let refs: Vec<&Program> = progs.iter().collect();
    PsConfig {
        allow_promises: true,
        promise_values: PsConfig::with_promises(&refs).promise_values,
        ..base.clone()
    }
}

fn pf_cfg(base: &PsConfig) -> PsConfig {
    PsConfig {
        allow_promises: false,
        ..base.clone()
    }
}

/// Runs the PS machine over (possibly transformed) programs.
fn ps_explore(
    kind: ModelKind,
    progs: &[Program],
    cfg: &PsConfig,
    ecfg: &ExploreConfig,
) -> ModelExploration {
    let sys = PsSystem::new(progs, cfg);
    let r = seqwm_explore::explore(&sys, ecfg);
    ModelExploration {
        model: kind,
        behaviors: r.behaviors,
        states: r.stats.states,
        truncated: r.stats.truncated,
        racy: r.stats.racy_steps > 0,
    }
}

/// Runs the PS machine with the conflict monitor, reduction off.
fn ps_scan(kind: ModelKind, progs: &[Program], cfg: &PsConfig, ecfg: &ExploreConfig) -> RaceScan {
    let ecfg = ExploreConfig {
        reduction: false,
        ..ecfg.clone()
    };
    let sys = PsSystem::new(progs, cfg);
    let log = ConflictLog::default();
    let mon = Monitored::new(
        &sys,
        |st: &seqwm_promising::machine::MachineState| {
            pending_accesses(st.threads.iter().map(|t| &t.prog))
        },
        &log,
    );
    let r = seqwm_explore::explore(&mon, &ecfg);
    RaceScan {
        exploration: ModelExploration {
            model: kind,
            behaviors: r.behaviors,
            states: r.stats.states,
            truncated: r.stats.truncated,
            racy: r.stats.racy_steps > 0,
        },
        conflicts: log.summary(),
    }
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

struct PsNaBackend;

impl ModelBackend for PsNaBackend {
    fn kind(&self) -> ModelKind {
        ModelKind::PsNa
    }

    fn explore(&self, progs: &[Program], opts: &ModelOpts) -> ModelExploration {
        let cfg = psna_cfg(progs, &opts.ps);
        ps_explore(self.kind(), progs, &cfg, &opts.apply(engine_config(&cfg)))
    }

    fn race_scan(&self, progs: &[Program], opts: &ModelOpts) -> RaceScan {
        let cfg = psna_cfg(progs, &opts.ps);
        ps_scan(self.kind(), progs, &cfg, &opts.apply(engine_config(&cfg)))
    }
}

struct PfBackend;

impl ModelBackend for PfBackend {
    fn kind(&self) -> ModelKind {
        ModelKind::Pf
    }

    fn explore(&self, progs: &[Program], opts: &ModelOpts) -> ModelExploration {
        ps_explore(self.kind(), progs, &pf_cfg(&opts.ps), &opts.ps_engine())
    }

    fn race_scan(&self, progs: &[Program], opts: &ModelOpts) -> RaceScan {
        ps_scan(self.kind(), progs, &pf_cfg(&opts.ps), &opts.ps_engine())
    }
}

struct RaBackend;

impl ModelBackend for RaBackend {
    fn kind(&self) -> ModelKind {
        ModelKind::Ra
    }

    fn explore(&self, progs: &[Program], opts: &ModelOpts) -> ModelExploration {
        let strong: Vec<Program> = progs.iter().map(ra_strengthen).collect();
        ps_explore(self.kind(), &strong, &pf_cfg(&opts.ps), &opts.ps_engine())
    }

    fn race_scan(&self, progs: &[Program], opts: &ModelOpts) -> RaceScan {
        let strong: Vec<Program> = progs.iter().map(ra_strengthen).collect();
        ps_scan(self.kind(), &strong, &pf_cfg(&opts.ps), &opts.ps_engine())
    }
}

struct ScFenceBackend;

impl ModelBackend for ScFenceBackend {
    fn kind(&self) -> ModelKind {
        ModelKind::ScFence
    }

    fn explore(&self, progs: &[Program], opts: &ModelOpts) -> ModelExploration {
        let fenced: Vec<Program> = progs.iter().map(sc_fence_everywhere).collect();
        ps_explore(self.kind(), &fenced, &pf_cfg(&opts.ps), &opts.ps_engine())
    }

    fn race_scan(&self, progs: &[Program], opts: &ModelOpts) -> RaceScan {
        let fenced: Vec<Program> = progs.iter().map(sc_fence_everywhere).collect();
        ps_scan(self.kind(), &fenced, &pf_cfg(&opts.ps), &opts.ps_engine())
    }
}

struct ScBackend;

impl ModelBackend for ScBackend {
    fn kind(&self) -> ModelKind {
        ModelKind::Sc
    }

    fn explore(&self, progs: &[Program], opts: &ModelOpts) -> ModelExploration {
        let sys = ScSystem::new(progs, &opts.sc);
        let r = seqwm_explore::explore(&sys, &opts.sc_engine());
        ModelExploration {
            model: self.kind(),
            behaviors: r.behaviors,
            states: r.stats.states,
            truncated: r.stats.truncated,
            racy: false,
        }
    }

    fn race_scan(&self, progs: &[Program], opts: &ModelOpts) -> RaceScan {
        let ecfg = ExploreConfig {
            reduction: false,
            ..opts.sc_engine()
        };
        let sys = ScSystem::new(progs, &opts.sc);
        let log = ConflictLog::default();
        let mon = Monitored::new(
            &sys,
            |st: &seqwm_promising::sc::ScState| pending_accesses(st.thread_states()),
            &log,
        );
        let r = seqwm_explore::explore(&mon, &ecfg);
        RaceScan {
            exploration: ModelExploration {
                model: self.kind(),
                behaviors: r.behaviors,
                states: r.stats.states,
                truncated: r.stats.truncated,
                racy: false,
            },
            conflicts: log.summary(),
        }
    }
}

/// A deliberately unsound backend: the promise-free enumeration with
/// the greatest behavior silently dropped. Any race-free program with
/// ≥ 2 behaviors makes it diverge from every sound backend, which the
/// cross-model differential oracle must detect.
#[cfg(feature = "fault-injection")]
struct PlantedUnsoundBackend;

#[cfg(feature = "fault-injection")]
impl ModelBackend for PlantedUnsoundBackend {
    fn kind(&self) -> ModelKind {
        ModelKind::PlantedUnsound
    }

    fn explore(&self, progs: &[Program], opts: &ModelOpts) -> ModelExploration {
        let mut e = ps_explore(self.kind(), progs, &pf_cfg(&opts.ps), &opts.ps_engine());
        e.behaviors.pop_last();
        e
    }

    fn race_scan(&self, progs: &[Program], opts: &ModelOpts) -> RaceScan {
        let mut s = ps_scan(self.kind(), progs, &pf_cfg(&opts.ps), &opts.ps_engine());
        s.exploration.behaviors.pop_last();
        s
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

static PSNA: PsNaBackend = PsNaBackend;
static PF: PfBackend = PfBackend;
static RA: RaBackend = RaBackend;
static SCF: ScFenceBackend = ScFenceBackend;
static SC: ScBackend = ScBackend;
#[cfg(feature = "fault-injection")]
static PLANTED: PlantedUnsoundBackend = PlantedUnsoundBackend;

/// Every registered backend, strongest model first.
pub fn registry() -> Vec<&'static dyn ModelBackend> {
    vec![
        &SC,
        &SCF,
        &RA,
        &PF,
        &PSNA,
        #[cfg(feature = "fault-injection")]
        &PLANTED,
    ]
}

/// The backend registered for `kind`.
pub fn backend(kind: ModelKind) -> &'static dyn ModelBackend {
    match kind {
        ModelKind::Sc => &SC,
        ModelKind::ScFence => &SCF,
        ModelKind::Ra => &RA,
        ModelKind::Pf => &PF,
        ModelKind::PsNa => &PSNA,
        #[cfg(feature = "fault-injection")]
        ModelKind::PlantedUnsound => &PLANTED,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;
    use seqwm_promising::machine::ps_behaviors_refine;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    #[test]
    fn names_round_trip() {
        for k in ModelKind::all() {
            assert_eq!(ModelKind::parse(k.name()), Some(k), "{k}");
            assert_eq!(backend(k).kind(), k);
        }
        assert_eq!(ModelKind::parse("tso"), None);
    }

    #[test]
    fn ra_strengthen_leaves_no_relaxed_access() {
        let p = parse_program(
            "store[rlx](bk_x, 1); a := load[rlx](bk_y);
             b := cas[rlx](bk_z, 0, 1); c := fadd[acq](bk_z, 1);
             if (a == 1) { store[na](bk_w, 1); } while (a < 1) { a := a + 1; }",
        )
        .unwrap();
        let q = ra_strengthen(&p);
        let text = q.to_string();
        assert!(!text.contains("rlx"), "no rlx remains: {text}");
        assert!(text.contains("store[na]"), "na untouched: {text}");
    }

    #[test]
    fn sc_fence_everywhere_fences_every_access() {
        let p = parse_program("store[rlx](bf_x, 1); a := load[acq](bf_y); return a;").unwrap();
        let q = sc_fence_everywhere(&p);
        let text = q.to_string();
        assert_eq!(text.matches("fence[sc]").count(), 2, "{text}");
    }

    #[test]
    fn backends_refine_down_the_chain_on_sb() {
        // SB with relaxed accesses: PS^na/PF/RA admit the weak outcome,
        // SC-fence and SC forbid it; every strengthening only removes
        // behaviors.
        let ps = progs(&[
            "store[rlx](bc_x, 1); a := load[rlx](bc_y); return a;",
            "store[rlx](bc_y, 1); b := load[rlx](bc_x); return b;",
        ]);
        let opts = ModelOpts::default();
        let by_kind: Vec<(ModelKind, BTreeSet<PsBehavior>)> = [
            ModelKind::Sc,
            ModelKind::ScFence,
            ModelKind::Ra,
            ModelKind::Pf,
            ModelKind::PsNa,
        ]
        .into_iter()
        .map(|k| (k, backend(k).explore(&ps, &opts).behaviors))
        .collect();
        for w in by_kind.windows(2) {
            let (stronger, weaker) = (&w[0], &w[1]);
            assert!(
                ps_behaviors_refine(&stronger.1, &weaker.1).is_ok(),
                "{} ⊑ {} failed",
                stronger.0,
                weaker.0
            );
        }
        let weak = |bs: &BTreeSet<PsBehavior>| bs.iter().any(|b| b.to_string() == "(0 ∥ 0)");
        assert!(weak(&by_kind[4].1), "PS^na shows the weak SB outcome");
        assert!(!weak(&by_kind[0].1), "SC forbids the weak SB outcome");
        assert!(!weak(&by_kind[1].1), "SC-fence forbids the weak SB outcome");
    }

    #[test]
    fn race_scan_spots_the_na_race_everywhere() {
        let ps = progs(&[
            "store[na](br_x, 1); return 0;",
            "store[na](br_x, 2); return 0;",
        ]);
        let opts = ModelOpts::default();
        for k in ModelKind::all() {
            #[cfg(feature = "fault-injection")]
            if k == ModelKind::PlantedUnsound {
                continue;
            }
            let s = backend(k).race_scan(&ps, &opts);
            assert!(s.conflicts.sc_conflict, "{k} misses the WW conflict");
            assert!(s.conflicts.pf_conflict, "{k} misses the na write pair");
        }
    }

    #[test]
    fn race_scan_is_clean_on_disjoint_threads() {
        let ps = progs(&[
            "store[na](bd_a, 1); return 0;",
            "store[na](bd_b, 1); return 0;",
        ]);
        let opts = ModelOpts::default();
        let s = backend(ModelKind::Sc).race_scan(&ps, &opts);
        assert!(!s.conflicts.sc_conflict);
        assert!(!s.exploration.truncated);
    }

    #[test]
    fn fingerprints_agree_iff_behaviors_agree() {
        let ps = progs(&[
            "store[na](bg_d, 1); store[rel](bg_f, 1); return 0;",
            "a := load[acq](bg_f); if (a == 1) { b := load[na](bg_d); } return a;",
        ]);
        let opts = ModelOpts::default();
        let sc = backend(ModelKind::Sc).explore(&ps, &opts);
        let pf = backend(ModelKind::Pf).explore(&ps, &opts);
        let psna = backend(ModelKind::PsNa).explore(&ps, &opts);
        assert_eq!(sc.behaviors, pf.behaviors, "MP is race-free: models agree");
        assert_eq!(
            backend(ModelKind::Sc).behavior_fingerprint(&sc),
            backend(ModelKind::Pf).behavior_fingerprint(&pf),
        );
        assert_eq!(
            backend(ModelKind::Pf).behavior_fingerprint(&pf),
            backend(ModelKind::PsNa).behavior_fingerprint(&psna),
        );
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn planted_unsound_backend_diverges() {
        let ps = progs(&[
            "store[rel](bp_f, 1); return 0;",
            "a := load[acq](bp_f); return a;",
        ]);
        let opts = ModelOpts::default();
        let honest = backend(ModelKind::Pf).explore(&ps, &opts);
        let planted = backend(ModelKind::PlantedUnsound).explore(&ps, &opts);
        assert!(honest.behaviors.len() >= 2);
        assert_eq!(planted.behaviors.len(), honest.behaviors.len() - 1);
        assert_ne!(
            backend(ModelKind::Pf).behavior_fingerprint(&honest),
            backend(ModelKind::PlantedUnsound).behavior_fingerprint(&planted),
        );
    }
}
