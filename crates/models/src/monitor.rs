//! Race-detection monitoring: a [`TransitionSystem`] wrapper that
//! inspects every expanded state for concurrently enabled conflicting
//! accesses, classified by the synchronization strength the LDRF
//! theorems care about.
//!
//! The monitor never changes the wrapped system's transitions — it
//! only *observes* states as the engine expands them. Scans run with
//! partial-order reduction disabled (the planner's checkers force
//! `reduction = false`), so every reachable state of the bounded state
//! space is visited and "concurrently enabled in some execution" is
//! decided exactly, not up to a reduction argument.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use seqwm_explore::{AgentGroup, TransitionSystem};
use seqwm_lang::{Loc, ProgState, ReadMode, Step, WriteMode};

/// One thread's pending memory access at a state, pre-classified by
/// the strength lattice the LDRF race notions use.
#[derive(Clone, Debug)]
pub struct Access {
    /// Thread index.
    pub tid: usize,
    /// Location accessed.
    pub loc: Loc,
    /// Has a write component (plain write or RMW).
    pub is_write: bool,
    /// Some component is weaker than release/acquire (a `na`/`rlx`
    /// read or write side) — the RA-level race trigger.
    pub weak_side: bool,
    /// The write component (if any) is weaker than release (`na` or
    /// `rlx`) — the PF-level race trigger (only such writes can be
    /// promised early).
    pub weak_write: bool,
    /// Rendered access for witness messages.
    pub describe: String,
}

/// Extracts the pending accesses of per-thread program states (both
/// the PS^na machine and the SC machine expose one [`ProgState`] per
/// thread).
pub fn pending_accesses<'a, I>(threads: I) -> Vec<Access>
where
    I: IntoIterator<Item = &'a ProgState>,
{
    let mut out = Vec::new();
    for (tid, t) in threads.into_iter().enumerate() {
        match t.step() {
            Step::Read { loc, mode } => out.push(Access {
                tid,
                loc,
                is_write: false,
                weak_side: mode != ReadMode::Acq,
                weak_write: false,
                describe: format!("t{tid}: R[{mode}]({loc})"),
            }),
            Step::Write { loc, mode, .. } => out.push(Access {
                tid,
                loc,
                is_write: true,
                weak_side: mode != WriteMode::Rel,
                weak_write: mode != WriteMode::Rel,
                describe: format!("t{tid}: W[{mode}]({loc})"),
            }),
            Step::Rmw { loc, mode } => out.push(Access {
                tid,
                loc,
                is_write: true,
                weak_side: mode.read_mode() != ReadMode::Acq || mode.write_mode() != WriteMode::Rel,
                weak_write: mode.write_mode() != WriteMode::Rel,
                describe: format!("t{tid}: U[{mode}]({loc})"),
            }),
            _ => {}
        }
    }
    out
}

/// Thread-safe conflict cells filled in by a scan (the engine may
/// expand states from several workers).
#[derive(Debug, Default)]
pub struct ConflictLog {
    sc: AtomicBool,
    ra: AtomicBool,
    pf: AtomicBool,
    witness: Mutex<Witnesses>,
}

#[derive(Debug, Default)]
struct Witnesses {
    sc: Option<String>,
    ra: Option<String>,
    pf: Option<String>,
}

impl ConflictLog {
    /// Classifies every conflicting pair among `accesses` (same
    /// location, distinct threads, at least one write component).
    pub fn scan(&self, accesses: &[Access]) {
        for (i, a) in accesses.iter().enumerate() {
            for b in &accesses[i + 1..] {
                if a.tid == b.tid || a.loc != b.loc || !(a.is_write || b.is_write) {
                    continue;
                }
                // SC level: *any* concurrently enabled conflicting pair
                // forfeits the DRF-SC guarantee (maximally conservative:
                // only fully conflict-free programs downgrade to SC).
                self.record(Level::Sc, a, b);
                // RA level: a side weaker than rel/acq.
                if a.weak_side || b.weak_side {
                    self.record(Level::Ra, a, b);
                }
                // PF level: a promisable (weaker-than-rel) write side.
                if a.weak_write || b.weak_write {
                    self.record(Level::Pf, a, b);
                }
            }
        }
    }

    fn record(&self, level: Level, a: &Access, b: &Access) {
        let flag = match level {
            Level::Sc => &self.sc,
            Level::Ra => &self.ra,
            Level::Pf => &self.pf,
        };
        if flag.swap(true, Ordering::Relaxed) {
            return; // already witnessed — keep the first
        }
        let text = format!("{} ∥ {}", a.describe, b.describe);
        if let Ok(mut w) = self.witness.lock() {
            let slot = match level {
                Level::Sc => &mut w.sc,
                Level::Ra => &mut w.ra,
                Level::Pf => &mut w.pf,
            };
            if slot.is_none() {
                *slot = Some(text);
            }
        }
    }

    /// The immutable summary once a scan finished.
    pub fn summary(&self) -> ConflictSummary {
        let w = match self.witness.lock() {
            Ok(g) => Witnesses {
                sc: g.sc.clone(),
                ra: g.ra.clone(),
                pf: g.pf.clone(),
            },
            Err(_) => Witnesses::default(),
        };
        ConflictSummary {
            sc_conflict: self.sc.load(Ordering::Relaxed),
            ra_conflict: self.ra.load(Ordering::Relaxed),
            pf_conflict: self.pf.load(Ordering::Relaxed),
            sc_witness: w.sc,
            ra_witness: w.ra,
            pf_witness: w.pf,
        }
    }
}

#[derive(Clone, Copy)]
enum Level {
    Sc,
    Ra,
    Pf,
}

/// What a race scan found, per LDRF level. The levels are nested:
/// `pf_conflict ⇒ ra_conflict ⇒ sc_conflict`.
#[derive(Clone, Debug, Default)]
pub struct ConflictSummary {
    /// Any concurrently enabled conflicting pair at all.
    pub sc_conflict: bool,
    /// A conflicting pair with a side weaker than rel/acq.
    pub ra_conflict: bool,
    /// A conflicting pair with a promisable (weaker-than-rel) write.
    pub pf_conflict: bool,
    /// First SC-level witness, rendered.
    pub sc_witness: Option<String>,
    /// First RA-level witness, rendered.
    pub ra_witness: Option<String>,
    /// First PF-level witness, rendered.
    pub pf_witness: Option<String>,
}

/// A [`TransitionSystem`] that forwards to `inner` while logging the
/// conflicting concurrently-enabled access pairs of every expanded
/// state into a [`ConflictLog`].
pub struct Monitored<'a, S, F> {
    inner: &'a S,
    extract: F,
    log: &'a ConflictLog,
}

impl<'a, S, F> Monitored<'a, S, F> {
    /// Wraps `inner`, extracting per-state pending accesses with
    /// `extract`.
    pub fn new(inner: &'a S, extract: F, log: &'a ConflictLog) -> Self {
        Monitored {
            inner,
            extract,
            log,
        }
    }
}

impl<S, F> TransitionSystem for Monitored<'_, S, F>
where
    S: TransitionSystem,
    F: Fn(&S::State) -> Vec<Access> + Sync,
{
    type State = S::State;
    type Behavior = S::Behavior;

    fn initial_state(&self) -> S::State {
        self.inner.initial_state()
    }

    fn agent_groups(&self, st: &S::State) -> Vec<AgentGroup<S::State, S::Behavior>> {
        self.log.scan(&(self.extract)(st));
        self.inner.agent_groups(st)
    }

    fn terminal_behavior(&self, st: &S::State) -> Option<S::Behavior> {
        self.inner.terminal_behavior(st)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    /// Parses `src` and silently steps to the first non-silent step,
    /// so the pending access is actually pending (a fresh `ProgState`
    /// sits at a `Seq` unfold).
    fn at_access(src: &str) -> ProgState {
        let p = parse_program(src).unwrap();
        let mut t = ProgState::new(&p);
        for _ in 0..32 {
            match t.step() {
                Step::Silent(next) => t = next,
                _ => break,
            }
        }
        t
    }

    fn pending(srcs: &[&str]) -> Vec<Access> {
        let threads: Vec<ProgState> = srcs.iter().map(|s| at_access(s)).collect();
        pending_accesses(&threads)
    }

    #[test]
    fn disjoint_writers_have_no_conflict() {
        let log = ConflictLog::default();
        log.scan(&pending(&[
            "store[na](mon_a, 1); return 0;",
            "store[na](mon_b, 1); return 0;",
        ]));
        let s = log.summary();
        assert!(!s.sc_conflict && !s.ra_conflict && !s.pf_conflict);
    }

    #[test]
    fn na_write_pair_trips_every_level() {
        let log = ConflictLog::default();
        log.scan(&pending(&[
            "store[na](mon_x, 1); return 0;",
            "store[na](mon_x, 2); return 0;",
        ]));
        let s = log.summary();
        assert!(s.sc_conflict && s.ra_conflict && s.pf_conflict);
        assert!(s.pf_witness.unwrap().contains("mon_x"));
    }

    #[test]
    fn rel_acq_pair_is_sc_level_only() {
        let log = ConflictLog::default();
        log.scan(&pending(&[
            "store[rel](mon_f, 1); return 0;",
            "a := load[acq](mon_f); return a;",
        ]));
        let s = log.summary();
        assert!(s.sc_conflict, "conflicting pair forfeits DRF-SC");
        assert!(!s.ra_conflict, "both sides are rel/acq");
        assert!(!s.pf_conflict, "the write is a release");
    }

    #[test]
    fn rlx_write_trips_pf_level() {
        let log = ConflictLog::default();
        log.scan(&pending(&[
            "store[rlx](mon_y, 1); return 0;",
            "a := load[acq](mon_y); return a;",
        ]));
        let s = log.summary();
        assert!(s.ra_conflict, "a rlx side is weaker than rel/acq");
        assert!(s.pf_conflict, "a rlx write is promisable");
    }

    #[test]
    fn read_read_pairs_never_conflict() {
        let log = ConflictLog::default();
        log.scan(&pending(&[
            "a := load[na](mon_r); return a;",
            "b := load[na](mon_r); return b;",
        ]));
        assert!(!log.summary().sc_conflict);
    }

    #[test]
    fn rmw_counts_as_write() {
        let log = ConflictLog::default();
        log.scan(&pending(&[
            "a := fadd[acqrel](mon_c, 1); return a;",
            "b := load[acq](mon_c); return b;",
        ]));
        let s = log.summary();
        assert!(s.sc_conflict);
        assert!(!s.ra_conflict, "acqrel RMW vs acq load is RA-synchronized");
    }
}
