//! The DRF-gated exploration planner.
//!
//! `--model auto` runs the checker ladder cheapest-first and downgrades
//! the exploration backend as far as the verdicts allow:
//!
//! 1. **LDRF-SC scan** (unreduced SC exploration with the conflict
//!    monitor). `RaceFree` ⟹ the SC behavior set *is* the PS^na
//!    behavior set — the scan's enumeration is returned as-is, so the
//!    whole pipeline cost one SC-sized exploration.
//! 2. Otherwise, **LDRF-RA + LDRF-PF in one promise-free scan**.
//!    Either verdict `RaceFree` ⟹ the promise-free enumeration is
//!    complete (LDRF-RA implies LDRF-PF's premise under our
//!    conservative predicates: an RA-disciplined program a fortiori
//!    confines its sub-release writes), and the scan is reused.
//! 3. Otherwise, **full PS^na** with promises, reduction on.
//!
//! Every checker verdict is reported in [`PlanReport::checks`] with its
//! fuel spend, and [`PlanReport::total_states`] is the whole pipeline's
//! state budget — the number the `drf-gated` bench pair and the
//! acceptance test in `tests/model_differential.rs` compare against a
//! straight `--model psna` run.

use std::fmt;

use seqwm_lang::Program;
use seqwm_promising::drf::RaceVerdict;

use crate::backend::{backend, ModelExploration, ModelKind, ModelOpts};
use crate::ldrf::{ldrf_pf_ra, ldrf_sc, LdrfOutcome};

/// What the user asked to explore under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelChoice {
    /// Run the DRF-gated ladder.
    Auto,
    /// Use exactly this backend, no checking.
    Fixed(ModelKind),
}

impl ModelChoice {
    /// Parses `"auto"` or a backend name.
    pub fn parse(s: &str) -> Option<ModelChoice> {
        if s == "auto" {
            return Some(ModelChoice::Auto);
        }
        ModelKind::parse(s).map(ModelChoice::Fixed)
    }

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            ModelChoice::Auto => "auto",
            ModelChoice::Fixed(k) => k.name(),
        }
    }
}

impl fmt::Display for ModelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The planner's full account of one gated exploration.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// What was asked for.
    pub requested: ModelChoice,
    /// The backend that produced [`Self::exploration`].
    pub chosen: ModelKind,
    /// Every checker verdict taken along the ladder, in order.
    pub checks: Vec<LdrfOutcome>,
    /// The final behavior enumeration.
    pub exploration: ModelExploration,
    /// States spent by checker scans whose exploration was *not*
    /// reused as the final enumeration.
    pub checker_states: usize,
    /// The final enumeration is a checker scan's (no extra exploration
    /// was run).
    pub reused_scan: bool,
}

impl PlanReport {
    /// Total states the pipeline expanded: discarded checker scans
    /// plus the final enumeration.
    pub fn total_states(&self) -> usize {
        self.checker_states + self.exploration.states
    }

    /// True when every scan and the final enumeration ran to
    /// completion (behaviors cannot be missing).
    pub fn complete(&self) -> bool {
        !self.exploration.truncated
            && self
                .checks
                .iter()
                .all(|c| c.verdict != RaceVerdict::Inconclusive)
    }
}

/// Explores `progs` under `choice`, running the DRF-gated ladder for
/// [`ModelChoice::Auto`].
pub fn plan_explore(progs: &[Program], choice: ModelChoice, opts: &ModelOpts) -> PlanReport {
    let fixed = match choice {
        ModelChoice::Fixed(k) => Some(k),
        ModelChoice::Auto => None,
    };
    if let Some(k) = fixed {
        return PlanReport {
            requested: choice,
            chosen: k,
            checks: Vec::new(),
            exploration: backend(k).explore(progs, opts),
            checker_states: 0,
            reused_scan: false,
        };
    }

    // Rung 1: the SC scan. RaceFree ⟹ LDRF-SC applies and the scan's
    // behavior set is already the PS^na behavior set.
    let (sc_check, sc_expl) = ldrf_sc(progs, opts);
    let mut checks = vec![sc_check];
    if checks[0].verdict == RaceVerdict::RaceFree {
        return PlanReport {
            requested: choice,
            chosen: ModelKind::Sc,
            checks,
            exploration: sc_expl,
            checker_states: 0,
            reused_scan: true,
        };
    }
    let sc_states = sc_expl.states;

    // Rung 2: one promise-free scan decides both LDRF-RA and LDRF-PF.
    // Either RaceFree verdict licenses the promise-free enumeration
    // (LDRF-RA's premise implies LDRF-PF's under the conservative
    // predicates), and that enumeration is exactly the scan.
    let (ra_check, pf_check, pf_expl) = ldrf_pf_ra(progs, opts);
    let downgrade =
        ra_check.verdict == RaceVerdict::RaceFree || pf_check.verdict == RaceVerdict::RaceFree;
    checks.push(ra_check);
    checks.push(pf_check);
    if downgrade {
        return PlanReport {
            requested: choice,
            chosen: ModelKind::Pf,
            checks,
            exploration: pf_expl,
            checker_states: sc_states,
            reused_scan: true,
        };
    }

    // Rung 3: no discipline holds — full PS^na.
    PlanReport {
        requested: choice,
        chosen: ModelKind::PsNa,
        checks,
        exploration: backend(ModelKind::PsNa).explore(progs, opts),
        checker_states: sc_states + pf_expl.states,
        reused_scan: false,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    #[test]
    fn choice_parse_round_trips() {
        assert_eq!(ModelChoice::parse("auto"), Some(ModelChoice::Auto));
        assert_eq!(
            ModelChoice::parse("psna"),
            Some(ModelChoice::Fixed(ModelKind::PsNa))
        );
        assert_eq!(ModelChoice::parse("tso"), None);
    }

    #[test]
    fn conflict_free_program_downgrades_to_sc_with_equal_behaviors() {
        let ps = progs(&[
            "store[na](pl_a, 1); store[na](pl_a, 2); return 0;",
            "store[na](pl_b, 1); return 0;",
        ]);
        let opts = ModelOpts::default();
        let auto = plan_explore(&ps, ModelChoice::Auto, &opts);
        assert_eq!(auto.chosen, ModelKind::Sc);
        assert!(auto.reused_scan);
        assert!(auto.complete());
        let psna = plan_explore(&ps, ModelChoice::Fixed(ModelKind::PsNa), &opts);
        assert_eq!(auto.exploration.behaviors, psna.exploration.behaviors);
        assert!(
            auto.total_states() < psna.total_states(),
            "gated {} vs psna {}",
            auto.total_states(),
            psna.total_states()
        );
    }

    #[test]
    fn mp_downgrades_to_promise_free() {
        let ps = progs(&[
            "store[na](pm_d, 1); store[rel](pm_f, 1); return 0;",
            "a := load[acq](pm_f); if (a == 1) { b := load[na](pm_d); } return a;",
        ]);
        let opts = ModelOpts::default();
        let auto = plan_explore(&ps, ModelChoice::Auto, &opts);
        assert_eq!(auto.chosen, ModelKind::Pf, "checks: {:?}", auto.checks);
        assert!(auto.reused_scan);
        assert_eq!(auto.checks.len(), 3, "SC, RA and PF verdicts reported");
        let psna = plan_explore(&ps, ModelChoice::Fixed(ModelKind::PsNa), &opts);
        assert_eq!(auto.exploration.behaviors, psna.exploration.behaviors);
    }

    #[test]
    fn relaxed_program_falls_back_to_full_psna() {
        // LB with relaxed accesses: promises genuinely add behaviors,
        // and no checker may license a downgrade.
        let ps = progs(&[
            "a := load[rlx](pf_x); store[rlx](pf_y, 1); return a;",
            "b := load[rlx](pf_y); store[rlx](pf_x, 1); return b;",
        ]);
        let opts = ModelOpts::default();
        let auto = plan_explore(&ps, ModelChoice::Auto, &opts);
        assert_eq!(auto.chosen, ModelKind::PsNa);
        assert!(!auto.reused_scan);
        assert!(auto.checker_states > 0, "scan fuel is accounted");
        let psna = plan_explore(&ps, ModelChoice::Fixed(ModelKind::PsNa), &opts);
        assert_eq!(auto.exploration.behaviors, psna.exploration.behaviors);
        // The weak LB outcome requires promises; the fallback keeps it.
        assert!(auto
            .exploration
            .behaviors
            .iter()
            .any(|b| b.to_string() == "(1 ∥ 1)"));
    }

    #[test]
    fn racy_program_fallback_preserves_ub() {
        let ps = progs(&[
            "store[na](pr_x, 1); return 0;",
            "store[na](pr_x, 2); return 0;",
        ]);
        let opts = ModelOpts::default();
        let auto = plan_explore(&ps, ModelChoice::Auto, &opts);
        assert_eq!(auto.chosen, ModelKind::PsNa);
        assert!(auto
            .exploration
            .behaviors
            .iter()
            .any(|b| b.to_string() == "⊥"));
    }

    #[test]
    fn fixed_choice_skips_all_checks() {
        let ps = progs(&["store[na](px_a, 1); return 0;"]);
        let r = plan_explore(
            &ps,
            ModelChoice::Fixed(ModelKind::Sc),
            &ModelOpts::default(),
        );
        assert!(r.checks.is_empty());
        assert_eq!(r.checker_states, 0);
        assert_eq!(r.chosen, ModelKind::Sc);
    }
}
