#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # seqwm-models
//!
//! Pluggable memory-model backends with local-DRF-gated exploration.
//!
//! The paper's artifact carries three *local* data-race-freedom theorems
//! (LDRF-PF, LDRF-RA, LDRF-SC, `src/ldrfpf/LocalDRFPF.v` and friends):
//! a program whose races are confined to a given synchronization
//! discipline behaves identically under PS^na and under a strictly
//! stronger (and much cheaper to explore) model. This crate turns those
//! theorem statements into a runtime speed lever:
//!
//! * [`backend`] — a [`ModelBackend`] trait instantiating the
//!   `seqwm-explore` [`TransitionSystem`](seqwm_explore::TransitionSystem)
//!   abstraction, with five registered executable backends: full
//!   **PS^na** (promises on), the promise-free fragment **PF**, a
//!   release/acquire **RA** model (access-mode strengthening under the
//!   promise-free machine), an **SC-fence** model (an SC fence after
//!   every access), and the flat-memory interleaving **SC** machine.
//!   Each backend exposes behavior enumeration ([`ModelBackend::explore`]),
//!   race detection ([`ModelBackend::race_scan`]) and a canonical
//!   behavior-set fingerprint ([`ModelBackend::behavior_fingerprint`]).
//! * [`ldrf`] — the three local-DRF checkers as bounded runtime
//!   verdicts: [`RaceVerdict::RaceFree`] / [`RaceVerdict::Racy`] /
//!   [`RaceVerdict::Inconclusive`], with fuel accounting (states the
//!   scan spent). A truncated scan is *never* reported race-free.
//! * [`plan`] — the DRF-gated exploration planner: run the cheapest
//!   sound checker first, downgrade the exploration backend on a
//!   `RaceFree` verdict, fall back to full PS^na otherwise.
//!
//! The checkers are deliberately conservative: the executable race
//! notions over-approximate the paper's (any concurrently enabled
//! conflicting pair counts at the SC level; weaker-than-rel/acq sides
//! at the RA level; weaker-than-rel writes at the PF level), so a
//! `RaceFree` verdict always licenses the downgrade while a spurious
//! `Racy` merely costs speed, never soundness.

pub mod backend;
pub mod ldrf;
pub mod monitor;
pub mod plan;

pub use backend::{
    backend, ra_strengthen, registry, sc_fence_everywhere, ModelBackend, ModelExploration,
    ModelKind, ModelOpts, RaceScan,
};
pub use ldrf::{ldrf_pf_ra, ldrf_sc, LdrfLevel, LdrfOutcome};
pub use monitor::ConflictSummary;
pub use plan::{plan_explore, ModelChoice, PlanReport};
pub use seqwm_promising::drf::RaceVerdict;
