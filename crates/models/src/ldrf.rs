//! The three local-DRF checkers as bounded runtime verdicts.
//!
//! The paper's Coq artifact proves three *local* data-race-freedom
//! theorems: if a program's races are confined below a synchronization
//! discipline, its PS^na behaviors coincide with a stronger model's —
//!
//! * **LDRF-PF**: races only through `⊒ rel` writes ⟹ PS^na = PF
//!   (promises are never needed);
//! * **LDRF-RA**: races only through `⊒ rel/acq` pairs ⟹ PS^na = RA;
//! * **LDRF-SC**: no races at all ⟹ PS^na = SC.
//!
//! The checkers here decide *conservative executable* versions of
//! those premises by exhaustively scanning a bounded state space for
//! concurrently enabled conflicting pairs (see [`crate::monitor`]):
//!
//! * SC level trips on **any** conflicting pair;
//! * RA level trips on a pair with a side weaker than rel/acq, or on a
//!   machine-observed non-atomic racy step;
//! * PF level trips on a pair whose write side is weaker than rel
//!   (only such writes can be promised early), or on a racy step.
//!
//! Over-approximation is one-directional by design: a spurious `Racy`
//! merely forfeits the speed win; `RaceFree` always licenses the
//! downgrade. Fuel discipline mirrors `promising::drf`: a truncated
//! scan that found no race is [`RaceVerdict::Inconclusive`], never
//! `RaceFree`.

use std::fmt;

use seqwm_lang::Program;
use seqwm_promising::drf::RaceVerdict;

use crate::backend::{backend, ModelExploration, ModelKind, ModelOpts};

/// Which local-DRF theorem a verdict speaks to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LdrfLevel {
    /// LDRF-SC: race-free ⟹ SC suffices.
    Sc,
    /// LDRF-RA: rel/acq-disciplined ⟹ RA suffices.
    Ra,
    /// LDRF-PF: release-write-disciplined ⟹ promise-free suffices.
    Pf,
}

impl LdrfLevel {
    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            LdrfLevel::Sc => "ldrf-sc",
            LdrfLevel::Ra => "ldrf-ra",
            LdrfLevel::Pf => "ldrf-pf",
        }
    }
}

impl fmt::Display for LdrfLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One checker's verdict, with fuel accounting.
#[derive(Clone, Debug)]
pub struct LdrfOutcome {
    /// The theorem checked.
    pub level: LdrfLevel,
    /// Race-free / racy / inconclusive (truncated scan, no race found).
    pub verdict: RaceVerdict,
    /// States the scan expanded (the checker's fuel spend).
    pub states: usize,
    /// A rendered witness when `Racy`.
    pub witness: Option<String>,
}

impl fmt::Display for LdrfOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} states",
            self.level, self.verdict, self.states
        )?;
        match &self.witness {
            Some(w) => write!(f, "; witness: {w})"),
            None => write!(f, ")"),
        }
    }
}

fn verdict(racy: bool, truncated: bool) -> RaceVerdict {
    if racy {
        RaceVerdict::Racy
    } else if truncated {
        RaceVerdict::Inconclusive
    } else {
        RaceVerdict::RaceFree
    }
}

/// Runs the LDRF-SC checker: an unreduced scan of the SC machine,
/// racy iff *any* conflicting pair is ever concurrently enabled.
/// Returns the outcome plus the scan's exploration (reusable as the
/// final SC enumeration when the verdict is `RaceFree`).
pub fn ldrf_sc(progs: &[Program], opts: &ModelOpts) -> (LdrfOutcome, ModelExploration) {
    let scan = backend(ModelKind::Sc).race_scan(progs, opts);
    let racy = scan.conflicts.sc_conflict;
    let out = LdrfOutcome {
        level: LdrfLevel::Sc,
        verdict: verdict(racy, scan.exploration.truncated),
        states: scan.exploration.states,
        witness: scan.conflicts.sc_witness.clone(),
    };
    (out, scan.exploration)
}

/// Runs the LDRF-RA and LDRF-PF checkers in ONE unreduced scan of the
/// promise-free machine over the *original* (untransformed) programs:
/// the RA verdict trips on any weaker-than-rel/acq side, the PF
/// verdict only on weaker-than-rel *writes*, and both trip on a
/// machine-observed non-atomic racy step. Returns `(ra, pf, scan)`;
/// the scan exploration is the promise-free enumeration, reusable as
/// the final result when either verdict is `RaceFree`.
pub fn ldrf_pf_ra(
    progs: &[Program],
    opts: &ModelOpts,
) -> (LdrfOutcome, LdrfOutcome, ModelExploration) {
    let scan = backend(ModelKind::Pf).race_scan(progs, opts);
    let machine_racy = scan.exploration.racy;
    let na_witness = || Some("machine-observed non-atomic racy step".to_string());
    let ra_racy = machine_racy || scan.conflicts.ra_conflict;
    let pf_racy = machine_racy || scan.conflicts.pf_conflict;
    let ra = LdrfOutcome {
        level: LdrfLevel::Ra,
        verdict: verdict(ra_racy, scan.exploration.truncated),
        states: scan.exploration.states,
        witness: scan.conflicts.ra_witness.clone().or_else(|| {
            if machine_racy {
                na_witness()
            } else {
                None
            }
        }),
    };
    let pf = LdrfOutcome {
        level: LdrfLevel::Pf,
        verdict: verdict(pf_racy, scan.exploration.truncated),
        states: scan.exploration.states,
        witness: scan.conflicts.pf_witness.clone().or_else(|| {
            if machine_racy {
                na_witness()
            } else {
                None
            }
        }),
    };
    (ra, pf, scan.exploration)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    #[test]
    fn disjoint_program_is_race_free_at_every_level() {
        let ps = progs(&[
            "store[na](ld_a, 1); return 0;",
            "store[na](ld_b, 1); return 0;",
        ]);
        let opts = ModelOpts::default();
        let (sc, _) = ldrf_sc(&ps, &opts);
        assert_eq!(sc.verdict, RaceVerdict::RaceFree, "{sc}");
        let (ra, pf, _) = ldrf_pf_ra(&ps, &opts);
        assert_eq!(ra.verdict, RaceVerdict::RaceFree);
        assert_eq!(pf.verdict, RaceVerdict::RaceFree);
    }

    #[test]
    fn mp_is_sc_racy_but_pf_race_free() {
        // Message passing through a release flag: the flag pair is a
        // conflict (SC level trips, conservatively) but both sides are
        // rel/acq and the na data accesses never co-enable, so RA and
        // PF verdicts are race-free — LDRF-PF licenses the promise-free
        // downgrade exactly as the paper's theorem predicts.
        let ps = progs(&[
            "store[na](lm_d, 1); store[rel](lm_f, 1); return 0;",
            "a := load[acq](lm_f); if (a == 1) { b := load[na](lm_d); } return a;",
        ]);
        let opts = ModelOpts::default();
        let (sc, _) = ldrf_sc(&ps, &opts);
        assert_eq!(sc.verdict, RaceVerdict::Racy, "conservative: {sc}");
        let (ra, pf, _) = ldrf_pf_ra(&ps, &opts);
        assert_eq!(ra.verdict, RaceVerdict::RaceFree, "{ra}");
        assert_eq!(pf.verdict, RaceVerdict::RaceFree, "{pf}");
    }

    #[test]
    fn relaxed_sb_is_racy_at_pf_level() {
        // SB with rlx accesses: rlx writes are promisable, so even the
        // PF-level checker must refuse the downgrade (PS^na genuinely
        // has behaviors PF lacks on LB-shaped programs; on SB the
        // refusal is conservative but required by the discipline).
        let ps = progs(&[
            "store[rlx](ls_x, 1); a := load[rlx](ls_y); return a;",
            "store[rlx](ls_y, 1); b := load[rlx](ls_x); return b;",
        ]);
        let opts = ModelOpts::default();
        let (ra, pf, _) = ldrf_pf_ra(&ps, &opts);
        assert_eq!(ra.verdict, RaceVerdict::Racy);
        assert_eq!(pf.verdict, RaceVerdict::Racy);
        assert!(pf.witness.unwrap().contains("ls_"));
    }

    #[test]
    fn na_race_trips_every_checker() {
        let ps = progs(&[
            "store[na](ln_x, 1); return 0;",
            "a := load[na](ln_x); return a;",
        ]);
        let opts = ModelOpts::default();
        let (sc, _) = ldrf_sc(&ps, &opts);
        let (ra, pf, _) = ldrf_pf_ra(&ps, &opts);
        assert_eq!(sc.verdict, RaceVerdict::Racy);
        assert_eq!(ra.verdict, RaceVerdict::Racy);
        assert_eq!(pf.verdict, RaceVerdict::Racy);
    }

    #[test]
    fn truncated_scan_is_inconclusive() {
        let ps = progs(&[
            "store[na](lt_a, 1); return 0;",
            "store[na](lt_b, 1); return 0;",
        ]);
        let mut opts = ModelOpts::default();
        opts.sc.max_states = 1;
        opts.ps.max_states = 1;
        let (sc, _) = ldrf_sc(&ps, &opts);
        assert_eq!(sc.verdict, RaceVerdict::Inconclusive, "{sc}");
        let (ra, pf, _) = ldrf_pf_ra(&ps, &opts);
        assert_eq!(ra.verdict, RaceVerdict::Inconclusive);
        assert_eq!(pf.verdict, RaceVerdict::Inconclusive);
    }
}
