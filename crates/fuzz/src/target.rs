//! What the fuzzer fuzzes: the optimizer pipeline, each individual
//! pass, and — for testing the fuzzer itself — deliberately unsound
//! "planted bug" passes generalizing the fixed program pairs of
//! `tests/validation_catches_bugs.rs` into rewrites that fire on
//! arbitrary generated programs.

use std::fmt;

use seqwm_lang::{Expr, Loc, Program, ReadMode, Stmt, Value, WriteMode};
use seqwm_models::ModelOpts;
use seqwm_opt::pipeline::{PassKind, Pipeline, PipelineConfig};
use seqwm_opt::validate::Obligation;
use seqwm_opt::{PromoteConfig, RegisterPromotion};

/// A program transformation under differential test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuzzTarget {
    /// The full 4-pass pipeline (§4 order).
    Pipeline,
    /// A single optimization pass.
    Pass(PassKind),
    /// A planted-bug pass (must be *caught* by the oracles).
    Buggy(BuggyPass),
}

impl FuzzTarget {
    /// The default healthy target set: the pipeline plus every
    /// individual pass (the paper's passes and the atomics/promotion
    /// families alike).
    pub fn default_targets() -> Vec<FuzzTarget> {
        let mut out = vec![FuzzTarget::Pipeline];
        out.extend(PassKind::extended().into_iter().map(FuzzTarget::Pass));
        out
    }

    /// Parses a target name as accepted by `seqwm fuzz --target`.
    pub fn parse(name: &str) -> Option<FuzzTarget> {
        Some(match name {
            "pipeline" => FuzzTarget::Pipeline,
            other => match PassKind::parse(other) {
                Some(k) => FuzzTarget::Pass(k),
                None => FuzzTarget::Buggy(BuggyPass::parse(other)?),
            },
        })
    }

    /// Applies the transformation with no declared context (promotion
    /// uses its closed-program gate).
    pub fn apply(&self, p: &Program) -> Program {
        self.apply_in(p, None, &ModelOpts::default())
    }

    /// Applies the transformation as the production optimizer would:
    /// register promotion is told about the concurrent context the
    /// oracles will compose with, so its LDRF gate judges the actual
    /// composition rather than the closed program. Every other target
    /// ignores `ctx` and `model`.
    pub fn apply_in(&self, p: &Program, ctx: Option<&Program>, model: &ModelOpts) -> Program {
        match self {
            FuzzTarget::Pipeline => Pipeline::new(PipelineConfig::default()).optimize(p).program,
            FuzzTarget::Pass(PassKind::Promote) if ctx.is_some() => {
                let cfg = PromoteConfig {
                    context: ctx.cloned().into_iter().collect(),
                    model: model.clone(),
                };
                RegisterPromotion::run_gated(p, &cfg).0
            }
            FuzzTarget::Pass(k) => k.run(p).0,
            FuzzTarget::Buggy(b) => b.apply(p),
        }
    }

    /// True when this target's translation-validation obligation is SEQ
    /// refinement. The atomics/promotion pass families change the
    /// atomic event trace, which SEQ's pointwise trace matching refutes
    /// *by construction* even for sound rewrites — their obligation is
    /// the PS^na differential check instead, so the SEQ oracle must
    /// not judge them.
    pub fn seq_obligation(&self) -> bool {
        match self {
            FuzzTarget::Pipeline => true,
            FuzzTarget::Pass(k) => k.obligation() == Obligation::Seq,
            FuzzTarget::Buggy(_) => true,
        }
    }
}

impl fmt::Display for FuzzTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzTarget::Pipeline => write!(f, "pipeline"),
            FuzzTarget::Pass(k) => write!(f, "{k}"),
            FuzzTarget::Buggy(b) => write!(f, "{b}"),
        }
    }
}

/// The planted-bug passes. Each generalizes one fixed unsound rewrite
/// from `tests/validation_catches_bugs.rs` into a pass over arbitrary
/// programs; a fuzz campaign against any of them must find, shrink and
/// persist a counterexample.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BuggyPass {
    /// SLF that keeps store-knowledge alive across release–acquire
    /// pairs (Example 2.12): forwards a non-atomic store's constant to
    /// a later non-atomic load even though an intervening release may
    /// have published the location and an acquire re-gained it.
    SlfAcrossRelAcq,
    /// DSE that treats a store as dead whenever the location is
    /// overwritten later, ignoring the *loads* (and release
    /// publications) in between that observe the first store.
    DseRemovesObservedStore,
    /// LICM that hoists a *store* (not a load) out of a conditional:
    /// unused store introduction (Example 2.10).
    LicmHoistsStore,
    /// A scheduler that sinks an acquire load below a following
    /// non-atomic store (Example 2.9 (i)).
    ReorderAcquireDown,
}

impl BuggyPass {
    /// All planted bugs.
    pub fn all() -> [BuggyPass; 4] {
        [
            BuggyPass::SlfAcrossRelAcq,
            BuggyPass::DseRemovesObservedStore,
            BuggyPass::LicmHoistsStore,
            BuggyPass::ReorderAcquireDown,
        ]
    }

    /// Parses a planted-bug name as accepted by `seqwm fuzz --inject-bug`.
    pub fn parse(name: &str) -> Option<BuggyPass> {
        Some(match name {
            "slf-across-rel-acq" => BuggyPass::SlfAcrossRelAcq,
            "dse-removes-observed-store" => BuggyPass::DseRemovesObservedStore,
            "licm-hoists-store" => BuggyPass::LicmHoistsStore,
            "reorder-acquire-down" => BuggyPass::ReorderAcquireDown,
            _ => return None,
        })
    }

    /// Applies the unsound rewrite (identity when the trigger pattern
    /// is absent — such cases count as unoptimized, not as passes).
    pub fn apply(&self, p: &Program) -> Program {
        let body = match self {
            BuggyPass::SlfAcrossRelAcq => slf_across_rel_acq(&p.body),
            BuggyPass::DseRemovesObservedStore => dse_ignores_observers(&p.body),
            BuggyPass::LicmHoistsStore => hoist_branch_stores(&p.body),
            BuggyPass::ReorderAcquireDown => reorder_acquire_down(&p.body),
        };
        Program::new(body)
    }
}

impl fmt::Display for BuggyPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuggyPass::SlfAcrossRelAcq => write!(f, "slf-across-rel-acq"),
            BuggyPass::DseRemovesObservedStore => write!(f, "dse-removes-observed-store"),
            BuggyPass::LicmHoistsStore => write!(f, "licm-hoists-store"),
            BuggyPass::ReorderAcquireDown => write!(f, "reorder-acquire-down"),
        }
    }
}

/// Flattens the `Seq` spine of a statement into a list.
fn spine(s: &Stmt) -> Vec<Stmt> {
    fn go(s: &Stmt, out: &mut Vec<Stmt>) {
        if let Stmt::Seq(a, b) = s {
            go(a, out);
            go(b, out);
        } else {
            out.push(s.clone());
        }
    }
    let mut out = Vec::new();
    go(s, &mut out);
    out
}

/// Buggy SLF: remembers the constant of the latest non-atomic store per
/// location and forwards it into later non-atomic loads. Knowledge is
/// (correctly) killed by further stores to the location and by control
/// flow, but (incorrectly) survives release stores followed by acquire
/// loads — the §2.12 unsoundness.
fn slf_across_rel_acq(s: &Stmt) -> Stmt {
    use std::collections::BTreeMap;
    let mut known: BTreeMap<Loc, i64> = BTreeMap::new();
    let mut out = Vec::new();
    for st in spine(s) {
        match &st {
            Stmt::Store(x, WriteMode::Na, e) => {
                match e {
                    Expr::Const(Value::Int(v)) => known.insert(*x, *v),
                    _ => known.remove(x),
                };
                out.push(st);
            }
            Stmt::Load(r, x, ReadMode::Na) => {
                if let Some(&v) = known.get(x) {
                    out.push(Stmt::Assign(*r, Expr::int(v)));
                } else {
                    out.push(st);
                }
            }
            // BUG: atomic stores (releases) and atomic loads (acquires)
            // should invalidate forwarding knowledge for published
            // locations; this pass keeps it.
            Stmt::Store(_, _, _) | Stmt::Load(_, _, _) | Stmt::Fence(_) => out.push(st),
            Stmt::If(_, _, _) | Stmt::While(_, _) | Stmt::Cas { .. } | Stmt::Fadd { .. } => {
                known.clear();
                out.push(st);
            }
            _ => out.push(st),
        }
    }
    Stmt::block(out)
}

/// Buggy DSE: removes a non-atomic store whenever a later non-atomic
/// store to the same location exists on the spine, ignoring the loads
/// (and release publications) in between.
fn dse_ignores_observers(s: &Stmt) -> Stmt {
    let stmts = spine(s);
    let mut dead: Option<usize> = None;
    'scan: for (i, st) in stmts.iter().enumerate() {
        if let Stmt::Store(x, WriteMode::Na, _) = st {
            for later in &stmts[i + 1..] {
                if let Stmt::Store(y, WriteMode::Na, _) = later {
                    if y == x {
                        dead = Some(i);
                        break 'scan;
                    }
                }
            }
        }
    }
    match dead {
        Some(i) => {
            let mut out = stmts;
            out.remove(i);
            Stmt::block(out)
        }
        None => s.clone(),
    }
}

/// Buggy LICM: hoists the first store found inside an `if` branch (or a
/// loop body) to just before the conditional — introducing a store on
/// paths that never executed it.
fn hoist_branch_stores(s: &Stmt) -> Stmt {
    fn first_store(s: &Stmt) -> Option<Stmt> {
        let mut found = None;
        s.visit(&mut |n| {
            if found.is_none() && matches!(n, Stmt::Store(_, _, _)) {
                found = Some(n.clone());
            }
        });
        found
    }
    let mut out = Vec::new();
    let mut done = false;
    for st in spine(s) {
        match &st {
            Stmt::If(_, a, b) if !done => {
                if let Some(store) = first_store(a).or_else(|| first_store(b)) {
                    out.push(store);
                    done = true;
                }
                out.push(st);
            }
            Stmt::While(_, body) if !done => {
                if let Some(store) = first_store(body) {
                    out.push(store);
                    done = true;
                }
                out.push(st);
            }
            _ => out.push(st),
        }
    }
    Stmt::block(out)
}

/// Buggy reordering: swaps the first adjacent `r := load[acq](y);
/// store[na](x, e)` pair (with `e` not reading `r`, so the swap is a
/// pure memory-ordering change, not a data-flow one).
fn reorder_acquire_down(s: &Stmt) -> Stmt {
    let mut stmts = spine(s);
    for i in 0..stmts.len().saturating_sub(1) {
        let (a, b) = (&stmts[i], &stmts[i + 1]);
        if let (Stmt::Load(r, _, ReadMode::Acq), Stmt::Store(_, WriteMode::Na, e)) = (a, b) {
            if !e.regs().contains(r) {
                stmts.swap(i, i + 1);
                return Stmt::block(stmts);
            }
        }
    }
    s.clone()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn target_names_round_trip() {
        for t in FuzzTarget::default_targets() {
            assert_eq!(FuzzTarget::parse(&t.to_string()), Some(t));
        }
        for b in BuggyPass::all() {
            assert_eq!(
                FuzzTarget::parse(&b.to_string()),
                Some(FuzzTarget::Buggy(b))
            );
        }
        assert_eq!(FuzzTarget::parse("frobnicate"), None);
    }

    #[test]
    fn reorder_acquire_down_swaps_the_planted_pair() {
        let src = p("a := load[acq](y); store[na](x, 1); return a;");
        let tgt = BuggyPass::ReorderAcquireDown.apply(&src);
        assert_eq!(
            tgt,
            p("store[na](x, 1); a := load[acq](y); return a;"),
            "{tgt}"
        );
        // A store whose value depends on the loaded register stays put.
        let dep = p("a := load[acq](y); store[na](x, a); return a;");
        assert_eq!(BuggyPass::ReorderAcquireDown.apply(&dep), dep);
    }

    #[test]
    fn slf_across_rel_acq_forwards_the_planted_pair() {
        let src = p(
            "store[na](x, 1); store[rel](y, 1); a := load[acq](z); print(a); \
             b := load[na](x); return b;",
        );
        let tgt = BuggyPass::SlfAcrossRelAcq.apply(&src);
        assert!(tgt.to_string().contains("b := 1;"), "{tgt}");
    }

    #[test]
    fn dse_removes_an_observed_store() {
        let src = p("store[na](x, 1); a := load[na](x); store[na](x, 2); return a;");
        let tgt = BuggyPass::DseRemovesObservedStore.apply(&src);
        assert!(!tgt.to_string().contains("store[na](x, 1);"), "{tgt}");
    }

    #[test]
    fn licm_hoists_a_branch_store() {
        let src = p("a := load[rlx](y); if (a == 1) { store[na](x, 5); } return a;");
        let tgt = BuggyPass::LicmHoistsStore.apply(&src);
        let text = tgt.to_string();
        let hoisted = text.find("store[na](x, 5);").unwrap();
        let cond = text.find("if (a == 1)").unwrap();
        assert!(hoisted < cond, "{text}");
    }

    #[test]
    fn buggy_passes_are_identity_without_their_trigger() {
        let src = p("a := load[na](x); return a;");
        for b in BuggyPass::all() {
            assert_eq!(b.apply(&src), src, "{b}");
        }
    }
}
