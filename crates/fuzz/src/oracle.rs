//! The three differential oracles and their shared budget envelope.
//!
//! Each fuzz case runs a target transformation on a generated program
//! and asks, in order:
//!
//! 1. **SEQ** — does the simple (Def. 2.4) or advanced (Def. 3.3)
//!    sequential refinement hold between source and target?
//! 2. **PS^na** — under a generated concurrent context, is every
//!    target behavior of the PS^na machine matched by a source
//!    behavior (Def. 5.3, the adequacy direction of Thm. 6.2)?
//! 3. **SC** — cross-validation between independent machines: every
//!    SC behavior of the target must be refined by a PS^na behavior
//!    of the source (SC executions are legal PS^na executions, so
//!    this holds whenever the optimization is correct; a failure is
//!    either an optimizer bug or an engine divergence — both worth
//!    reporting).
//! 4. **model-diff** — cross-model behavior-set equality: when the
//!    LDRF-SC checker proves the optimized composition race-free,
//!    every registered backend (SC, SC-fence, RA, the promise-free
//!    machine) must enumerate the *same* behavior set — the paper's
//!    DRF theorems collapse the model hierarchy on race-free
//!    programs, so any divergence is a backend implementation bug.
//!    Racy programs pass vacuously (models legitimately differ).
//!
//! Every exploration runs through the fault-tolerant engine with
//! per-case deadline/memory budgets. Resource exhaustion, engine
//! faults and quarantined states yield [`CheckVerdict::Incident`],
//! *never* a violation: a quarantined state means behaviors may be
//! missing from the source set, which could fabricate an unmatched
//! target behavior.

use std::fmt;
use std::time::Duration;

use seqwm_explore::ExploreConfig;
use seqwm_lang::Program;
use seqwm_models::{backend as model_backend, ldrf_sc, ModelKind, ModelOpts, RaceVerdict};
use seqwm_promising::machine::ps_behaviors_refine;
use seqwm_promising::sc::{explore_sc_engine, ScConfig};
use seqwm_promising::search::{engine_config, try_explore_engine};
use seqwm_promising::thread::PsConfig;
use seqwm_seq::refine::{
    refines_advanced_or_simple_outcome, RefineCheckError, RefineConfig, RefineError,
};

use crate::target::FuzzTarget;

/// Which oracle spoke.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OracleKind {
    /// Sequential refinement (simple falling back to advanced).
    Seq,
    /// PS^na contextual refinement under a generated context.
    PsCtx,
    /// SC cross-validation against the PS^na source behaviors.
    Sc,
    /// Cross-model behavior-set equality on LDRF-SC-race-free targets.
    ModelDiff,
}

impl OracleKind {
    /// Parses the tag produced by `Display` (corpus round-trip).
    pub fn parse(s: &str) -> Option<OracleKind> {
        Some(match s {
            "seq" => OracleKind::Seq,
            "ps-ctx" => OracleKind::PsCtx,
            "sc" => OracleKind::Sc,
            "model-diff" => OracleKind::ModelDiff,
            _ => return None,
        })
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleKind::Seq => write!(f, "seq"),
            OracleKind::PsCtx => write!(f, "ps-ctx"),
            OracleKind::Sc => write!(f, "sc"),
            OracleKind::ModelDiff => write!(f, "model-diff"),
        }
    }
}

/// Why a case was quarantined instead of judged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IncidentCause {
    /// The engine quarantined states (caught panics exhausted their
    /// retries): the behavior sets may be incomplete.
    EngineFault,
    /// A state/depth/deadline/memory budget truncated exploration.
    Truncated,
    /// The engine rejected its configuration.
    EngineError,
    /// The oracle itself was inapplicable (e.g. mixed atomicity).
    OracleError,
    /// The whole checker panicked and was caught at the campaign
    /// boundary (the case is quarantined, the campaign continues).
    CheckerPanic,
}

impl fmt::Display for IncidentCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidentCause::EngineFault => write!(f, "engine-fault"),
            IncidentCause::Truncated => write!(f, "truncated"),
            IncidentCause::EngineError => write!(f, "engine-error"),
            IncidentCause::OracleError => write!(f, "oracle-error"),
            IncidentCause::CheckerPanic => write!(f, "checker-panic"),
        }
    }
}

/// Per-case resource envelope shared by all three oracles.
#[derive(Clone, Debug)]
pub struct OracleBudgets {
    /// SEQ refinement checker configuration.
    pub refine: RefineConfig,
    /// PS^na machine bounds (promise-free by default).
    pub ps: PsConfig,
    /// SC machine bounds.
    pub sc: ScConfig,
    /// Wall-clock deadline per engine exploration.
    pub deadline: Option<Duration>,
    /// Memory ceiling per engine exploration, in bytes.
    pub max_memory: Option<usize>,
    /// Deterministic fault plan forwarded to the engine (testing the
    /// fuzzer's own crash resilience).
    #[cfg(feature = "fault-injection")]
    pub fault: Option<seqwm_explore::FaultPlan>,
}

impl Default for OracleBudgets {
    fn default() -> Self {
        OracleBudgets {
            // The per-path step cap bounds depth but not the path
            // *count*; the global fuel bounds the whole SEQ check
            // deterministically (pathological cases — several atomic
            // reads feeding a loop — otherwise run for minutes and
            // stall a worker; see `RefineError::Truncated`).
            refine: RefineConfig {
                max_steps: 64,
                max_fuel: Some(30_000),
                ..RefineConfig::default()
            },
            // Generated cases are small; a tight state bound keeps
            // throughput up and reports the rest as truncation
            // incidents rather than stalling a worker.
            ps: PsConfig {
                max_states: 20_000,
                ..PsConfig::default()
            },
            sc: ScConfig::default(),
            deadline: Some(Duration::from_millis(2_000)),
            max_memory: None,
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }
}

impl OracleBudgets {
    /// The engine configuration for a PS^na exploration under these
    /// budgets.
    pub fn ps_engine_config(&self) -> ExploreConfig {
        #[allow(unused_mut)]
        let mut ecfg = ExploreConfig {
            deadline: self.deadline,
            max_memory: self.max_memory,
            ..engine_config(&self.ps)
        };
        #[cfg(feature = "fault-injection")]
        {
            ecfg.fault = self.fault.clone();
        }
        ecfg
    }

    /// The engine configuration for an SC exploration under these
    /// budgets.
    pub fn sc_engine_config(&self) -> ExploreConfig {
        ExploreConfig {
            max_states: self.sc.max_states,
            max_depth: self.sc.max_steps,
            deadline: self.deadline,
            max_memory: self.max_memory,
            ..ExploreConfig::default()
        }
    }
}

/// The judgment on one (program, context, target) case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckVerdict {
    /// The target left the program unchanged — nothing to validate.
    Unoptimized,
    /// All applicable oracles passed.
    Passed {
        /// Engine states explored across the PS^na and SC runs.
        states: usize,
    },
    /// An oracle refuted refinement: the transformation is unsound on
    /// this program (modulo checker incompleteness, recorded as-is).
    Violation {
        /// The refuting oracle.
        oracle: OracleKind,
        /// Human-readable refutation (unmatched behavior, failed
        /// configuration, ...).
        detail: String,
    },
    /// The case could not be judged within budget; quarantined, not
    /// counted as pass or fail.
    Incident {
        /// The oracle that was running when the budget tripped.
        oracle: OracleKind,
        /// What tripped.
        cause: IncidentCause,
        /// Diagnostic message.
        message: String,
    },
}

impl CheckVerdict {
    /// True for [`CheckVerdict::Violation`].
    pub fn is_violation(&self) -> bool {
        matches!(self, CheckVerdict::Violation { .. })
    }
}

/// Runs all four oracles on one case. `ctx` is the concurrent
/// context composed with both source and target for the PS^na, SC and
/// model-diff oracles; `None` checks the program in isolation.
pub fn check_target(
    target: FuzzTarget,
    src: &Program,
    ctx: Option<&Program>,
    budgets: &OracleBudgets,
) -> CheckVerdict {
    check_target_upto(target, src, ctx, budgets, OracleKind::ModelDiff)
}

/// [`check_target`], but stopping after `last` in the fixed oracle
/// order SEQ → PS^na → SC → model-diff. The shrinker uses this to
/// avoid paying for exploration-based oracles while minimizing a case
/// the cheap SEQ checker already refutes.
pub fn check_target_upto(
    target: FuzzTarget,
    src: &Program,
    ctx: Option<&Program>,
    budgets: &OracleBudgets,
    last: OracleKind,
) -> CheckVerdict {
    let gate_model = ModelOpts {
        ps: budgets.ps.clone(),
        workers: 0,
        reduction: None,
        ..ModelOpts::default()
    };
    let tgt = target.apply_in(src, ctx, &gate_model);
    // Structural equality misses no-op rewrites that only reassociate
    // the `Seq` spine; the rendered text is the canonical form.
    if tgt == *src || tgt.to_string() == src.to_string() {
        return CheckVerdict::Unoptimized;
    }

    // Oracle 1: SEQ refinement — only for targets carrying the SEQ
    // obligation. The atomics/promotion families change the atomic
    // event trace, which pointwise trace matching refutes even for
    // sound rewrites; their obligation is discharged by the PS^na
    // differential oracle below instead. Only a `Refuted` outcome is a
    // violation; inconclusive checks (mixed atomicity, exhausted fuel)
    // are quarantined like any other budget trip.
    if target.seq_obligation() {
        match refines_advanced_or_simple_outcome(src, &tgt, &budgets.refine) {
            Ok(_) => {}
            Err(RefineCheckError::Refuted(detail)) => {
                return CheckVerdict::Violation {
                    oracle: OracleKind::Seq,
                    detail,
                };
            }
            Err(RefineCheckError::Inconclusive(e)) => {
                let cause = match e {
                    RefineError::MixedAtomicity(_) => IncidentCause::OracleError,
                    RefineError::Truncated { .. } => IncidentCause::Truncated,
                };
                return CheckVerdict::Incident {
                    oracle: OracleKind::Seq,
                    cause,
                    message: e.to_string(),
                };
            }
        }
    }
    if last == OracleKind::Seq {
        return CheckVerdict::Passed { states: 0 };
    }

    let mut src_threads = vec![src.clone()];
    let mut tgt_threads = vec![tgt.clone()];
    if let Some(c) = ctx {
        src_threads.push(c.clone());
        tgt_threads.push(c.clone());
    }

    // Oracle 2: PS^na contextual refinement through the fault-tolerant
    // engine.
    let ecfg = budgets.ps_engine_config();
    let mut states = 0usize;
    let mut explorations = Vec::with_capacity(2);
    for threads in [&src_threads, &tgt_threads] {
        match try_explore_engine(threads, &budgets.ps, &ecfg) {
            Ok(e) => {
                states += e.stats.states;
                if e.stats.quarantined > 0 {
                    return CheckVerdict::Incident {
                        oracle: OracleKind::PsCtx,
                        cause: IncidentCause::EngineFault,
                        message: format!(
                            "{} state(s) quarantined after {} incident(s): behavior sets \
                             may be incomplete",
                            e.stats.quarantined, e.stats.incident_count
                        ),
                    };
                }
                if e.stats.truncated {
                    return CheckVerdict::Incident {
                        oracle: OracleKind::PsCtx,
                        cause: IncidentCause::Truncated,
                        message: format!("exploration truncated ({})", e.stats.stop),
                    };
                }
                explorations.push(e);
            }
            Err(err) => {
                return CheckVerdict::Incident {
                    oracle: OracleKind::PsCtx,
                    cause: IncidentCause::EngineError,
                    message: err.to_string(),
                }
            }
        }
    }
    let (src_ps, tgt_ps) = (&explorations[0], &explorations[1]);
    if let Err(unmatched) = ps_behaviors_refine(&tgt_ps.behaviors, &src_ps.behaviors) {
        return CheckVerdict::Violation {
            oracle: OracleKind::PsCtx,
            detail: format!("unmatched PS^na behavior: {unmatched}"),
        };
    }
    if last == OracleKind::PsCtx {
        return CheckVerdict::Passed { states };
    }

    // Oracle 3: SC cross-validation. SC executions are legal PS^na
    // executions (concrete values refine undef, UB matches anything),
    // so target-SC ⊑ source-PS^na must hold for any correct
    // transformation — checked against the independently implemented
    // SC machine.
    let sc = explore_sc_engine(&tgt_threads, &budgets.sc, &budgets.sc_engine_config());
    states += sc.states;
    if sc.truncated {
        return CheckVerdict::Incident {
            oracle: OracleKind::Sc,
            cause: IncidentCause::Truncated,
            message: "SC exploration truncated".to_string(),
        };
    }
    if let Err(unmatched) = ps_behaviors_refine(&sc.behaviors, &src_ps.behaviors) {
        return CheckVerdict::Violation {
            oracle: OracleKind::Sc,
            detail: format!("SC behavior unmatched by source PS^na: {unmatched}"),
        };
    }
    if last == OracleKind::Sc {
        return CheckVerdict::Passed { states };
    }

    // Oracle 4: cross-model differential. An unreduced LDRF-SC scan of
    // the optimized composition; on a RaceFree verdict the DRF
    // theorems force every backend to enumerate the SAME behavior set,
    // so the SC scan, the SC-fence and RA backends, and the PS^na
    // enumeration already in hand must all coincide exactly. A `Racy`
    // verdict passes vacuously; truncation quarantines the case.
    let mopts = ModelOpts {
        ps: budgets.ps.clone(),
        // The scan runs reduction-off: keep its state bound at the
        // (tight) PS budget rather than the roomier SC default so
        // pathological compositions quarantine instead of stalling.
        sc: ScConfig {
            max_states: budgets.sc.max_states.min(budgets.ps.max_states),
            ..budgets.sc.clone()
        },
        workers: 0,
        reduction: None,
    };
    let (ldrf, sc_scan) = ldrf_sc(&tgt_threads, &mopts);
    states += sc_scan.states;
    match ldrf.verdict {
        RaceVerdict::Racy => {}
        RaceVerdict::Inconclusive => {
            return CheckVerdict::Incident {
                oracle: OracleKind::ModelDiff,
                cause: IncidentCause::Truncated,
                message: "LDRF-SC scan truncated; cross-model equality unchecked".to_string(),
            };
        }
        RaceVerdict::RaceFree => {
            for kind in [ModelKind::ScFence, ModelKind::Ra] {
                let e = model_backend(kind).explore(&tgt_threads, &mopts);
                states += e.states;
                if e.truncated {
                    return CheckVerdict::Incident {
                        oracle: OracleKind::ModelDiff,
                        cause: IncidentCause::Truncated,
                        message: format!("{kind} exploration truncated"),
                    };
                }
                if e.behaviors != sc_scan.behaviors {
                    return CheckVerdict::Violation {
                        oracle: OracleKind::ModelDiff,
                        detail: format!(
                            "backend {kind} disagrees with SC on a race-free program \
                             ({} vs {} behaviors): a memory-model backend is unsound",
                            e.behaviors.len(),
                            sc_scan.behaviors.len()
                        ),
                    };
                }
            }
            if tgt_ps.behaviors != sc_scan.behaviors {
                return CheckVerdict::Violation {
                    oracle: OracleKind::ModelDiff,
                    detail: format!(
                        "PS^na disagrees with SC on a race-free program \
                         ({} vs {} behaviors): DRF-SC guarantee violated",
                        tgt_ps.behaviors.len(),
                        sc_scan.behaviors.len()
                    ),
                };
            }
        }
    }

    CheckVerdict::Passed { states }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::target::BuggyPass;
    use seqwm_lang::parser::parse_program;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn oracle_tags_round_trip() {
        for o in [
            OracleKind::Seq,
            OracleKind::PsCtx,
            OracleKind::Sc,
            OracleKind::ModelDiff,
        ] {
            assert_eq!(OracleKind::parse(&o.to_string()), Some(o));
        }
        assert_eq!(OracleKind::parse("psx"), None);
    }

    #[test]
    fn identity_is_unoptimized() {
        let src = p("a := load[rlx](x); return a;");
        let v = check_target(FuzzTarget::Pipeline, &src, None, &OracleBudgets::default());
        assert_eq!(v, CheckVerdict::Unoptimized);
    }

    #[test]
    fn sound_forwarding_passes_all_oracles() {
        // Fig. 4's motivating rewrite: the pipeline forwards the store.
        let src = p("store[na](x, 1); a := load[na](x); return a;");
        let ctx = p("b := load[rlx](y); return b;");
        let v = check_target(
            FuzzTarget::Pipeline,
            &src,
            Some(&ctx),
            &OracleBudgets::default(),
        );
        assert!(matches!(v, CheckVerdict::Passed { .. }), "{v:?}");
    }

    #[test]
    fn planted_reorder_bug_is_caught() {
        let src = p("a := load[acq](y); store[na](x, 1); return a;");
        let v = check_target(
            FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown),
            &src,
            None,
            &OracleBudgets::default(),
        );
        assert!(v.is_violation(), "{v:?}");
    }
}
