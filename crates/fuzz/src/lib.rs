//! `seqwm-fuzz` — crash-resilient differential fuzzing of the
//! SEQ-validated optimizer.
//!
//! The crate turns the paper's adequacy story (Thm. 6.2) into a
//! continuous testing instrument: generate random programs
//! ([`seqwm_litmus::gen`]), run the optimizer pipeline and each
//! individual pass over them, and judge every transformation with
//! three independent oracles — SEQ refinement, PS^na contextual
//! refinement under generated contexts, and SC cross-validation.
//! Everything expensive runs through the fault-tolerant exploration
//! engine, so a panicking, hanging or state-exploding case becomes a
//! quarantined *incident* with a structured cause instead of a dead
//! campaign.
//!
//! Failing cases are delta-debugged by an AST-level shrinker
//! ([`shrink`]) and persisted to an on-disk corpus ([`corpus`]) as
//! replayable records, deduplicated by failure fingerprint. Campaign
//! progress is checkpointed so interrupted runs resume.
//!
//! Module map:
//!
//! * [`target`] — what is being fuzzed: pipeline, single passes, and
//!   planted-bug passes for testing the fuzzer itself.
//! * [`oracle`] — the three oracles and the per-case budget envelope.
//! * [`shrink`] — greedy, measure-decreasing delta debugging.
//! * [`corpus`] — the persistent, fingerprint-deduplicated failure
//!   corpus.
//! * [`campaign`] — the parallel campaign driver, checkpointing, and
//!   the machine-readable summary.
//! * [`batch`] — batch-mode corpus optimization through the validated
//!   pipeline with a shared memo cache: the optimizer-throughput
//!   (programs/sec) instrument behind `seqwm optimize --batch` and the
//!   `opt/` bench group.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod batch;
pub mod campaign;
pub mod corpus;
pub mod oracle;
pub mod shrink;
pub mod target;

pub use batch::{run_batch, BatchConfig, BatchFailure, BatchSummary};
pub use campaign::{
    replay, run_campaign, run_campaign_with, CampaignEvent, CampaignSummary, CaseIncident,
    FailureSummary, FuzzConfig,
};
pub use corpus::{Corpus, FailureRecord};
pub use oracle::{check_target, CheckVerdict, IncidentCause, OracleBudgets, OracleKind};
pub use shrink::{shrink, ShrinkOutcome};
pub use target::{BuggyPass, FuzzTarget};
