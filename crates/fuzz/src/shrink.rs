//! AST-level delta debugging of failing fuzz cases.
//!
//! Greedy first-improvement descent: enumerate one-step reductions of
//! the (program, context) pair, accept the first one on which the
//! oracle still reports *a* violation for the same target (any oracle
//! counts — shrinking may legitimately move a PS^na failure into the
//! cheaper SEQ checker's range), restart. Every candidate strictly
//! decreases the lexicographic measure
//!
//! > (statement nodes, expression nodes, register reads, non-zero
//! >  constants)
//!
//! so the descent terminates without a fuel hack; `max_evals` bounds
//! wall-clock anyway since each acceptance re-runs the full oracle
//! stack. Oracle re-checks run under `catch_unwind`: a candidate that
//! panics the checker is simply rejected, keeping the shrinker itself
//! crash-resilient.

use std::panic::{catch_unwind, AssertUnwindSafe};

use seqwm_lang::expr::Expr;
use seqwm_lang::{Program, Stmt, Value};

use crate::oracle::{check_target_upto, CheckVerdict, OracleBudgets, OracleKind};
use crate::target::FuzzTarget;

/// The result of shrinking one failing case.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimized source program (still failing).
    pub src: Program,
    /// The minimized context, if one is still needed to fail.
    pub ctx: Option<Program>,
    /// The oracle that refutes the minimized case.
    pub oracle: OracleKind,
    /// The refutation detail on the minimized case.
    pub detail: String,
    /// Oracle evaluations spent.
    pub evals: usize,
    /// Statement count of the original case (program + context).
    pub original_stmts: usize,
    /// Statement count of the minimized case.
    pub shrunk_stmts: usize,
}

impl ShrinkOutcome {
    /// original/shrunk statement ratio (1.0 = no reduction).
    pub fn ratio(&self) -> f64 {
        if self.original_stmts == 0 {
            1.0
        } else {
            self.shrunk_stmts as f64 / self.original_stmts as f64
        }
    }
}

/// Shrinks a failing case, given the violation the campaign observed
/// on it. Returns the original case unchanged if no reduction
/// reproduces a violation (or `max_evals` is 0).
pub fn shrink(
    target: FuzzTarget,
    src: &Program,
    ctx: Option<&Program>,
    oracle: OracleKind,
    detail: &str,
    budgets: &OracleBudgets,
    max_evals: usize,
) -> ShrinkOutcome {
    let original_stmts = case_stmts(src, ctx);
    let mut best = (src.clone(), ctx.cloned());
    let mut verdict = (oracle, detail.to_string());
    let mut evals = 0usize;

    'descent: loop {
        for (cand_src, cand_ctx) in candidates(&best.0, best.1.as_ref()) {
            if evals >= max_evals {
                break 'descent;
            }
            debug_assert!(
                measure(&cand_src, cand_ctx.as_ref()) < measure(&best.0, best.1.as_ref()),
                "shrink candidate must strictly decrease the measure"
            );
            evals += 1;
            // Only run oracles up to the one currently refuting the
            // case: while a SEQ violation is being minimized there is
            // no reason to pay for PS^na/SC exploration per candidate.
            let v = catch_unwind(AssertUnwindSafe(|| {
                check_target_upto(target, &cand_src, cand_ctx.as_ref(), budgets, verdict.0)
            }));
            if let Ok(CheckVerdict::Violation { oracle, detail }) = v {
                best = (cand_src, cand_ctx);
                verdict = (oracle, detail);
                continue 'descent;
            }
        }
        break;
    }

    let shrunk_stmts = case_stmts(&best.0, best.1.as_ref());
    ShrinkOutcome {
        src: best.0,
        ctx: best.1,
        oracle: verdict.0,
        detail: verdict.1,
        evals,
        original_stmts,
        shrunk_stmts,
    }
}

/// Statement count of a case (program plus optional context).
pub fn case_stmts(src: &Program, ctx: Option<&Program>) -> usize {
    src.stmt_count() + ctx.map_or(0, Program::stmt_count)
}

/// The termination measure: every candidate strictly decreases this.
fn measure(src: &Program, ctx: Option<&Program>) -> (usize, usize, usize, usize) {
    let mut m = prog_measure(src);
    if let Some(c) = ctx {
        let n = prog_measure(c);
        m = (m.0 + n.0, m.1 + n.1, m.2 + n.2, m.3 + n.3);
    }
    m
}

fn prog_measure(p: &Program) -> (usize, usize, usize, usize) {
    let stmts = p.stmt_count();
    let (mut nodes, mut regs, mut consts) = (0, 0, 0);
    for e in expr_slots(&p.body) {
        nodes += expr_nodes(&e);
        regs += e.regs().len();
        consts += nonzero_consts(&e);
    }
    (stmts, nodes, regs, consts)
}

fn expr_nodes(e: &Expr) -> usize {
    match e {
        Expr::Const(_) | Expr::Reg(_) => 1,
        Expr::Un(_, a) => 1 + expr_nodes(a),
        Expr::Bin(_, a, b) => 1 + expr_nodes(a) + expr_nodes(b),
    }
}

fn nonzero_consts(e: &Expr) -> usize {
    match e {
        Expr::Const(Value::Int(0)) | Expr::Const(Value::Undef) | Expr::Reg(_) => 0,
        Expr::Const(Value::Int(_)) => 1,
        Expr::Un(_, a) => nonzero_consts(a),
        Expr::Bin(_, a, b) => nonzero_consts(a) + nonzero_consts(b),
    }
}

/// All one-step reductions of the case, larger reductions first.
fn candidates(src: &Program, ctx: Option<&Program>) -> Vec<(Program, Option<Program>)> {
    let mut out = Vec::new();
    // 1. Drop the context entirely.
    if ctx.is_some() {
        out.push((src.clone(), None));
    }
    // 2. Statement-level reductions of the program...
    for body in stmt_reductions(&src.body) {
        out.push((Program::new(body), ctx.cloned()));
    }
    // ...and of the context.
    if let Some(c) = ctx {
        for body in stmt_reductions(&c.body) {
            out.push((src.clone(), Some(Program::new(body))));
        }
    }
    // 3. Expression-level simplifications.
    for body in expr_reductions(&src.body) {
        out.push((Program::new(body), ctx.cloned()));
    }
    if let Some(c) = ctx {
        for body in expr_reductions(&c.body) {
            out.push((src.clone(), Some(Program::new(body))));
        }
    }
    out
}

/// One-step statement reductions: remove a statement, project a
/// conditional onto a branch, unroll-and-drop a loop.
fn stmt_reductions(s: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match s {
        Stmt::Skip => {}
        Stmt::Seq(a, b) => {
            for ra in stmt_reductions(a) {
                out.push(Stmt::seq(ra, (**b).clone()));
            }
            for rb in stmt_reductions(b) {
                out.push(Stmt::seq((**a).clone(), rb));
            }
        }
        Stmt::If(e, a, b) => {
            out.push(Stmt::Skip);
            out.push((**a).clone());
            out.push((**b).clone());
            for ra in stmt_reductions(a) {
                out.push(Stmt::If(e.clone(), Box::new(ra), b.clone()));
            }
            for rb in stmt_reductions(b) {
                out.push(Stmt::If(e.clone(), a.clone(), Box::new(rb)));
            }
        }
        Stmt::While(e, body) => {
            out.push(Stmt::Skip);
            out.push((**body).clone());
            for rb in stmt_reductions(body) {
                out.push(Stmt::While(e.clone(), Box::new(rb)));
            }
        }
        _ => out.push(Stmt::Skip),
    }
    out
}

/// One-step expression reductions: collapse a compound expression to
/// `0`, zero a register read, zero a non-zero constant.
fn expr_reductions(s: &Stmt) -> Vec<Stmt> {
    let slots = expr_slots(s);
    let mut out = Vec::new();
    for (k, e) in slots.iter().enumerate() {
        if expr_nodes(e) > 1
            || matches!(e, Expr::Reg(_))
            || matches!(e, Expr::Const(Value::Int(v)) if *v != 0)
        {
            out.push(replace_expr_slot(s, k, Expr::int(0)));
        }
    }
    out
}

/// The expression slots of a statement tree, in a fixed pre-order.
/// `replace_expr_slot` uses the same order.
fn expr_slots(s: &Stmt) -> Vec<Expr> {
    let mut out = Vec::new();
    collect_exprs(s, &mut out);
    out
}

fn collect_exprs(s: &Stmt, out: &mut Vec<Expr>) {
    match s {
        Stmt::Assign(_, e)
        | Stmt::Store(_, _, e)
        | Stmt::Freeze(_, e)
        | Stmt::Print(e)
        | Stmt::Return(e) => out.push(e.clone()),
        Stmt::Cas { expected, new, .. } => {
            out.push(expected.clone());
            out.push(new.clone());
        }
        Stmt::Fadd { operand, .. } => out.push(operand.clone()),
        Stmt::Seq(a, b) => {
            collect_exprs(a, out);
            collect_exprs(b, out);
        }
        Stmt::If(e, a, b) => {
            out.push(e.clone());
            collect_exprs(a, out);
            collect_exprs(b, out);
        }
        Stmt::While(e, body) => {
            out.push(e.clone());
            collect_exprs(body, out);
        }
        Stmt::Skip | Stmt::Load(_, _, _) | Stmt::Choose(_, _) | Stmt::Fence(_) | Stmt::Abort => {}
    }
}

/// Rebuilds `s` with its `at`-th expression slot replaced by `new`.
fn replace_expr_slot(s: &Stmt, at: usize, new: Expr) -> Stmt {
    let mut k = 0usize;
    rebuild(s, &mut k, at, &new)
}

fn rebuild(s: &Stmt, k: &mut usize, at: usize, new: &Expr) -> Stmt {
    fn slot(k: &mut usize, at: usize, e: &Expr, new: &Expr) -> Expr {
        let out = if *k == at { new.clone() } else { e.clone() };
        *k += 1;
        out
    }
    match s {
        Stmt::Assign(r, e) => Stmt::Assign(*r, slot(k, at, e, new)),
        Stmt::Store(x, m, e) => Stmt::Store(*x, *m, slot(k, at, e, new)),
        Stmt::Freeze(r, e) => Stmt::Freeze(*r, slot(k, at, e, new)),
        Stmt::Print(e) => Stmt::Print(slot(k, at, e, new)),
        Stmt::Return(e) => Stmt::Return(slot(k, at, e, new)),
        Stmt::Cas {
            dst,
            loc,
            expected,
            new: n,
            mode,
        } => Stmt::Cas {
            dst: *dst,
            loc: *loc,
            expected: slot(k, at, expected, new),
            new: slot(k, at, n, new),
            mode: *mode,
        },
        Stmt::Fadd {
            dst,
            loc,
            operand,
            mode,
        } => Stmt::Fadd {
            dst: *dst,
            loc: *loc,
            operand: slot(k, at, operand, new),
            mode: *mode,
        },
        Stmt::Seq(a, b) => {
            let a = rebuild(a, k, at, new);
            let b = rebuild(b, k, at, new);
            Stmt::seq(a, b)
        }
        Stmt::If(e, a, b) => {
            let e = slot(k, at, e, new);
            let a = rebuild(a, k, at, new);
            let b = rebuild(b, k, at, new);
            Stmt::If(e, Box::new(a), Box::new(b))
        }
        Stmt::While(e, body) => {
            let e = slot(k, at, e, new);
            let body = rebuild(body, k, at, new);
            Stmt::While(e, Box::new(body))
        }
        Stmt::Skip | Stmt::Load(_, _, _) | Stmt::Choose(_, _) | Stmt::Fence(_) | Stmt::Abort => {
            s.clone()
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::oracle::check_target;
    use crate::target::BuggyPass;
    use seqwm_lang::parser::parse_program;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn every_candidate_strictly_decreases_the_measure() {
        let src = p(
            "a := load[acq](y); if (a == 1) { store[na](x, 2 + a); } else { print(a); } \
             b := 0; while (b < 2) { b := b + 1; } return a + b;",
        );
        let ctx = p("c := load[rlx](z); store[rel](y, c + 1); return 0;");
        let m0 = measure(&src, Some(&ctx));
        let cands = candidates(&src, Some(&ctx));
        assert!(cands.len() > 10, "rich enumeration, got {}", cands.len());
        for (cs, cc) in cands {
            assert!(
                measure(&cs, cc.as_ref()) < m0,
                "candidate did not shrink:\n{cs}"
            );
        }
    }

    #[test]
    fn replace_expr_slot_hits_every_slot_in_order() {
        let s = p("if (a == 1) { store[na](x, 2); } r := cas[rlx](y, 3, 4); return a;").body;
        let slots = expr_slots(&s);
        assert_eq!(slots.len(), 5);
        for k in 0..slots.len() {
            let replaced = replace_expr_slot(&s, k, Expr::int(0));
            let new_slots = expr_slots(&replaced);
            assert_eq!(new_slots[k], Expr::int(0));
            for (j, (a, b)) in slots.iter().zip(&new_slots).enumerate() {
                if j != k {
                    assert_eq!(a, b, "slot {j} disturbed when replacing {k}");
                }
            }
        }
    }

    #[test]
    fn shrinks_a_planted_bug_to_its_core() {
        // The reorder bug needs only the acquire load and the na store;
        // the surrounding noise must be stripped.
        let src = p(
            "n := load[rlx](w); print(n); a := load[acq](y); store[na](x, 1); \
             m := 7; print(m); return a;",
        );
        let first = check_target(
            FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown),
            &src,
            None,
            &OracleBudgets::default(),
        );
        let CheckVerdict::Violation { oracle, detail } = first else {
            panic!("expected a violation, got {first:?}");
        };
        let out = shrink(
            FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown),
            &src,
            None,
            oracle,
            &detail,
            &OracleBudgets::default(),
            400,
        );
        assert!(
            out.shrunk_stmts <= 3,
            "expected a tiny reproducer, got {} stmts:\n{}",
            out.shrunk_stmts,
            out.src
        );
        assert!(out.ratio() < 1.0);
        // The shrunk case still fails.
        let v = check_target(
            FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown),
            &out.src,
            out.ctx.as_ref(),
            &OracleBudgets::default(),
        );
        assert!(v.is_violation(), "{v:?}");
    }
}
