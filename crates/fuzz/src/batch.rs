//! Batch-mode corpus optimization: the throughput face of the fuzz
//! driver.
//!
//! Where [`crate::campaign`] hunts for optimizer bugs, the batch driver
//! measures the optimizer *as a production tool*: generate a
//! deterministic corpus ([`seqwm_litmus::gen`], case `i` seeded with
//! `mix64(seed ^ i)` exactly like the campaign), push every program
//! through the fully validated pipeline
//! ([`seqwm_opt::optimize_validated_with`]), and share one
//! fingerprint-keyed memo cache across the whole corpus so repeated
//! source/target pairs — which small generator pools produce constantly
//! — are disk-backed cache hits instead of fresh refinement checks.
//!
//! The [`BatchSummary`] records programs/sec and the cache hit/miss
//! split; the `opt/` bench group and `seqwm optimize --batch` both sit
//! on top of [`run_batch`].

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use seqwm_explore::counters::OPT_PROGRAMS;
use seqwm_explore::{mix64, SplitMix64};
use seqwm_json::escape as json_string;
use seqwm_litmus::gen::{random_program, GenConfig};
use seqwm_opt::{
    optimize_validated_with, CacheStats, PassKind, PipelineConfig, ValidationCache,
    ValidationConfig,
};

/// Configuration for a batch optimization run.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Number of programs to generate and optimize.
    pub programs: usize,
    /// Corpus seed (case `i` is generated from `mix64(seed ^ i)`).
    pub seed: u64,
    /// Program generator configuration.
    pub gen: GenConfig,
    /// The pipeline to run over every program.
    pub pipeline: PipelineConfig,
    /// Validation budgets and contexts applied to every stage.
    pub validate: ValidationConfig,
    /// Memo-cache directory; `None` runs cacheless (every stage fresh).
    pub cache_dir: Option<PathBuf>,
    /// Memo-cache capacity (entries) when `cache_dir` is set.
    pub cache_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            programs: 32,
            seed: 0xBA7C_4022,
            gen: GenConfig::fuzzing(),
            pipeline: PipelineConfig {
                passes: PassKind::extended(),
                rounds: 1,
            },
            validate: ValidationConfig::default(),
            cache_dir: None,
            cache_capacity: 4096,
        }
    }
}

/// One program whose validated optimization failed: the validator
/// refuted (or could not conclusively discharge) a stage obligation.
#[derive(Clone, Debug)]
pub struct BatchFailure {
    /// Corpus index of the program.
    pub index: usize,
    /// The pass whose obligation failed.
    pub pass: String,
    /// Validator diagnostic.
    pub detail: String,
    /// The generated source program (canonical text).
    pub program: String,
}

/// Machine-readable batch outcome.
#[derive(Clone, Debug, Default)]
pub struct BatchSummary {
    /// Corpus seed.
    pub seed: u64,
    /// Programs generated and pushed through the pipeline.
    pub programs: usize,
    /// Programs the pipeline actually changed.
    pub optimized: usize,
    /// Total rewrites across the corpus.
    pub rewrites: usize,
    /// Stage validations discharged (fresh or cached).
    pub stages_validated: usize,
    /// Stage validations answered from the memo cache.
    pub stages_cached: usize,
    /// Programs whose validation failed.
    pub failures: Vec<BatchFailure>,
    /// Final cache statistics (when a cache directory was configured).
    pub cache: Option<CacheStats>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl BatchSummary {
    /// True iff every stage obligation across the corpus was discharged.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Optimizer throughput in programs per second.
    pub fn programs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.programs as f64 / secs
        }
    }

    /// Renders the summary as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"seed\":{},", self.seed));
        out.push_str(&format!("\"programs\":{},", self.programs));
        out.push_str(&format!("\"optimized\":{},", self.optimized));
        out.push_str(&format!("\"rewrites\":{},", self.rewrites));
        out.push_str(&format!("\"stages_validated\":{},", self.stages_validated));
        out.push_str(&format!("\"stages_cached\":{},", self.stages_cached));
        out.push_str(&format!("\"elapsed_ms\":{},", self.elapsed.as_millis()));
        out.push_str(&format!(
            "\"programs_per_sec\":{:.2},",
            self.programs_per_sec()
        ));
        match &self.cache {
            Some(c) => out.push_str(&format!(
                "\"cache\":{{\"entries\":{},\"hits\":{},\"misses\":{},\
                 \"evictions\":{},\"quarantined\":{}}},",
                c.entries, c.hits, c.misses, c.evictions, c.quarantined
            )),
            None => out.push_str("\"cache\":null,"),
        }
        out.push_str("\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"pass\":{},\"detail\":{},\"program\":{}}}",
                f.index,
                json_string(&f.pass),
                json_string(&f.detail),
                json_string(&f.program)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Generates `cfg.programs` programs and runs each through the
/// validated pipeline, sharing one memo cache.
///
/// Validation failures do not abort the batch — they are recorded in
/// [`BatchSummary::failures`] and the corpus continues, mirroring how a
/// production compiler would fall back to the unoptimized program for
/// that translation unit.
///
/// # Errors
///
/// Returns an error only if the memo cache directory cannot be opened.
pub fn run_batch(cfg: &BatchConfig) -> std::io::Result<BatchSummary> {
    let cache = match &cfg.cache_dir {
        Some(dir) => Some(ValidationCache::open(dir, cfg.cache_capacity)?),
        None => None,
    };
    let mut sum = BatchSummary {
        seed: cfg.seed,
        ..BatchSummary::default()
    };
    let start = Instant::now();
    for i in 0..cfg.programs {
        let mut rng = SplitMix64::new(mix64(cfg.seed ^ i as u64));
        let prog = random_program(&mut rng, &cfg.gen);
        OPT_PROGRAMS.fetch_add(1, Ordering::Relaxed);
        sum.programs += 1;
        match optimize_validated_with(&prog, cfg.pipeline.clone(), &cfg.validate, cache.as_ref()) {
            Ok(v) => {
                if v.result.program.to_string() != prog.to_string() {
                    sum.optimized += 1;
                }
                sum.rewrites += v.result.total_rewrites();
                sum.stages_validated += v.validations.len();
                sum.stages_cached += v.cached_stages();
            }
            Err(fail) => sum.failures.push(BatchFailure {
                index: i,
                pass: fail.pass.to_string(),
                detail: fail.detail.clone(),
                program: prog.to_string(),
            }),
        }
    }
    sum.elapsed = start.elapsed();
    sum.cache = cache.as_ref().map(|c| c.stats());
    Ok(sum)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn small(programs: usize, cache_dir: Option<PathBuf>) -> BatchConfig {
        // Seed chosen so the 3-program corpus actually rewrites (and
        // therefore caches) something: profitability guards can turn a
        // tiny corpus into all-no-op stages, which never touch the
        // memo store.
        BatchConfig {
            programs,
            seed: 21,
            cache_dir,
            ..BatchConfig::default()
        }
    }

    #[test]
    fn batch_is_deterministic_and_clean() {
        let a = run_batch(&small(4, None)).unwrap();
        let b = run_batch(&small(4, None)).unwrap();
        assert!(a.clean(), "failures: {:?}", a.failures);
        assert_eq!(a.programs, 4);
        assert_eq!(a.rewrites, b.rewrites);
        assert_eq!(a.optimized, b.optimized);
        assert_eq!(a.stages_validated, b.stages_validated);
        assert!(a.stages_validated >= 4 * PassKind::extended().len());
    }

    #[test]
    fn warm_cache_answers_repeat_corpus_from_disk() {
        let dir = tempdir("seqwm-batch-warm");
        let cold = run_batch(&small(3, Some(dir.clone()))).unwrap();
        let warm = run_batch(&small(3, Some(dir.clone()))).unwrap();
        assert!(cold.clean() && warm.clean());
        // Identical corpus, identical pipeline: every non-no-op stage of
        // the warm run is a cache hit.
        assert!(warm.stages_cached > 0, "{}", warm.to_json());
        assert_eq!(
            warm.stages_cached,
            warm.cache.as_ref().unwrap().hits as usize
        );
        assert_eq!(warm.rewrites, cold.rewrites);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_json_is_well_formed() {
        let s = run_batch(&small(2, None)).unwrap();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"programs\":2"), "{j}");
        assert!(j.contains("\"programs_per_sec\""), "{j}");
        assert!(j.contains("\"cache\":null"), "{j}");
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
