//! The persistent failure corpus.
//!
//! Every unique shrunk failure is written to the corpus directory
//! (default `.seqwm-fuzz/`) as a self-contained, replayable text
//! record: a `key: value` header followed by the program (and
//! optional context) in the litmus `.lit`-style concrete syntax the
//! parser reads back. Records are deduplicated by **fingerprint** —
//! the 64-bit hash of (target, oracle, shrunk program text, context
//! text) — so re-runs and parallel workers do not pile up copies of
//! the same minimized failure, while the same program failing under
//! two targets (or two oracles) files as two distinct records.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use seqwm_explore::fp64;
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;

use crate::oracle::OracleKind;
use crate::target::FuzzTarget;

/// Magic first line of a corpus record.
const MAGIC: &str = "seqwm-fuzz failure v1";

/// One minimized failure, as persisted to the corpus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureRecord {
    /// The transformation that failed.
    pub target: FuzzTarget,
    /// The oracle that refuted it (on the shrunk case).
    pub oracle: OracleKind,
    /// The campaign-level seed of the generating run.
    pub campaign_seed: u64,
    /// Index of the failing case within the campaign.
    pub case_index: usize,
    /// Statement count before shrinking.
    pub original_stmts: usize,
    /// Statement count after shrinking.
    pub shrunk_stmts: usize,
    /// Refutation detail (unmatched behavior etc.).
    pub detail: String,
    /// The minimized source program.
    pub src: Program,
    /// The minimized concurrent context, if needed to fail.
    pub ctx: Option<Program>,
}

impl FailureRecord {
    /// The dedup fingerprint: target, oracle and the *shrunk* case
    /// text (the campaign metadata does not participate, so the same
    /// minimized failure found from two seeds files once).
    pub fn fingerprint(&self) -> u64 {
        let ctx_text = self.ctx.as_ref().map(ToString::to_string);
        fp64(&(
            self.target.to_string(),
            self.oracle.to_string(),
            self.src.to_string(),
            ctx_text,
        ))
    }

    /// The corpus file name for this record.
    pub fn file_name(&self) -> String {
        format!(
            "fail-{}-{}-{:016x}.lit",
            self.target,
            self.oracle,
            self.fingerprint()
        )
    }

    /// Serializes to the corpus text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("target: {}\n", self.target));
        out.push_str(&format!("oracle: {}\n", self.oracle));
        out.push_str(&format!("fingerprint: {:016x}\n", self.fingerprint()));
        out.push_str(&format!("campaign-seed: {}\n", self.campaign_seed));
        out.push_str(&format!("case-index: {}\n", self.case_index));
        out.push_str(&format!("original-stmts: {}\n", self.original_stmts));
        out.push_str(&format!("shrunk-stmts: {}\n", self.shrunk_stmts));
        out.push_str(&format!(
            "detail: {}\n",
            self.detail.replace('\\', "\\\\").replace('\n', "\\n")
        ));
        out.push_str("== program\n");
        out.push_str(&self.src.to_string());
        if !out.ends_with('\n') {
            out.push('\n');
        }
        if let Some(c) = &self.ctx {
            out.push_str("== context\n");
            out.push_str(&c.to_string());
            if !out.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// Parses a corpus record back from its text form.
    pub fn parse(text: &str) -> Result<FailureRecord, String> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(format!("not a corpus record (expected `{MAGIC}`)"));
        }
        let mut target = None;
        let mut oracle = None;
        let mut campaign_seed = 0u64;
        let mut case_index = 0usize;
        let mut original_stmts = 0usize;
        let mut shrunk_stmts = 0usize;
        let mut detail = String::new();
        let mut stored_fp = None;
        loop {
            let Some(line) = lines.next() else {
                return Err("missing `== program` section".to_string());
            };
            if line == "== program" {
                break;
            }
            let Some((key, value)) = line.split_once(": ") else {
                return Err(format!("malformed header line `{line}`"));
            };
            match key {
                "target" => {
                    target = Some(
                        FuzzTarget::parse(value)
                            .ok_or_else(|| format!("unknown target {value}"))?,
                    )
                }
                "oracle" => {
                    oracle = Some(
                        OracleKind::parse(value)
                            .ok_or_else(|| format!("unknown oracle {value}"))?,
                    )
                }
                "fingerprint" => {
                    stored_fp = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|e| format!("bad fingerprint: {e}"))?,
                    )
                }
                "campaign-seed" => {
                    campaign_seed = value
                        .parse()
                        .map_err(|e| format!("bad campaign-seed: {e}"))?
                }
                "case-index" => {
                    case_index = value.parse().map_err(|e| format!("bad case-index: {e}"))?
                }
                "original-stmts" => {
                    original_stmts = value
                        .parse()
                        .map_err(|e| format!("bad original-stmts: {e}"))?
                }
                "shrunk-stmts" => {
                    shrunk_stmts = value
                        .parse()
                        .map_err(|e| format!("bad shrunk-stmts: {e}"))?
                }
                "detail" => {
                    detail = unescape(value);
                }
                other => return Err(format!("unknown header key `{other}`")),
            }
        }
        let rest: Vec<&str> = lines.collect();
        let (src_text, ctx_text) = match rest.iter().position(|l| *l == "== context") {
            Some(i) => (rest[..i].join("\n"), Some(rest[i + 1..].join("\n"))),
            None => (rest.join("\n"), None),
        };
        let src = parse_program(&src_text).map_err(|e| format!("bad program section: {e}"))?;
        let ctx = match ctx_text {
            Some(t) => Some(parse_program(&t).map_err(|e| format!("bad context section: {e}"))?),
            None => None,
        };
        let record = FailureRecord {
            target: target.ok_or("missing target header")?,
            oracle: oracle.ok_or("missing oracle header")?,
            campaign_seed,
            case_index,
            original_stmts,
            shrunk_stmts,
            detail,
            src,
            ctx,
        };
        if let Some(fp) = stored_fp {
            let actual = record.fingerprint();
            if fp != actual {
                return Err(format!(
                    "fingerprint mismatch: header {fp:016x}, computed {actual:016x} \
                     (record edited by hand?)"
                ));
            }
        }
        Ok(record)
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// The on-disk corpus directory.
#[derive(Clone, Debug)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Opens (creating if needed) the corpus at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Corpus> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Corpus { dir })
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persists a record (atomic write: temp file + rename). Returns
    /// the record's path; saving an already-present fingerprint is a
    /// no-op rewrite of identical content.
    pub fn save(&self, record: &FailureRecord) -> io::Result<PathBuf> {
        let path = self.dir.join(record.file_name());
        let tmp = self.dir.join(format!(
            ".tmp-{}-{:016x}",
            std::process::id(),
            record.fingerprint()
        ));
        fs::write(&tmp, record.to_text())?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads one record from a path.
    pub fn load(path: &Path) -> Result<FailureRecord, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        FailureRecord::parse(&text)
    }

    /// The fingerprints already present on disk (resume-time dedup
    /// seed), plus the record paths.
    pub fn existing(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.starts_with("fail-") || !name.ends_with(".lit") {
                continue;
            }
            if let Ok(rec) = Corpus::load(&path) {
                out.push((rec.fingerprint(), path));
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::target::BuggyPass;

    fn sample() -> FailureRecord {
        FailureRecord {
            target: FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown),
            oracle: OracleKind::Seq,
            campaign_seed: 0xFEED,
            case_index: 17,
            original_stmts: 9,
            shrunk_stmts: 3,
            detail: "neither simple nor advanced refinement holds\n(line two)".to_string(),
            src: parse_program("a := load[acq](y); store[na](x, 1); return a;").unwrap(),
            ctx: Some(parse_program("store[rel](y, 1); return 0;").unwrap()),
        }
    }

    #[test]
    fn records_round_trip_through_text() {
        let rec = sample();
        let parsed = FailureRecord::parse(&rec.to_text()).unwrap();
        assert_eq!(parsed, rec);
        // Without a context, too.
        let mut solo = rec;
        solo.ctx = None;
        assert_eq!(FailureRecord::parse(&solo.to_text()).unwrap(), solo);
    }

    #[test]
    fn fingerprint_ignores_campaign_metadata() {
        let a = sample();
        let mut b = sample();
        b.campaign_seed = 1;
        b.case_index = 999;
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample();
        c.oracle = OracleKind::PsCtx;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn tampered_records_are_rejected() {
        let text = sample()
            .to_text()
            .replace("store[na](x, 1)", "store[na](x, 2)");
        let err = FailureRecord::parse(&text).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn corpus_saves_and_lists() {
        let dir = std::env::temp_dir().join(format!("seqwm-fuzz-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let corpus = Corpus::open(&dir).unwrap();
        let rec = sample();
        let path = corpus.save(&rec).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("fail-"));
        // Idempotent save, one file.
        corpus.save(&rec).unwrap();
        let existing = corpus.existing().unwrap();
        assert_eq!(existing.len(), 1);
        assert_eq!(existing[0].0, rec.fingerprint());
        assert_eq!(Corpus::load(&existing[0].1).unwrap(), rec);
        let _ = fs::remove_dir_all(&dir);
    }
}
