//! The campaign driver: generate, transform, judge, shrink, persist —
//! in parallel, without letting any single case take the run down.
//!
//! Determinism: case `i` of a campaign with seed `s` derives its own
//! PRNG from `mix64(s ^ i)`, so the generated (program, context) pair
//! is independent of worker count and scheduling. Workers drain a
//! shared atomic case counter; each (case, target) check runs under
//! `catch_unwind`, so a panicking checker quarantines one case as an
//! incident instead of killing the campaign (the engine additionally
//! retries/quarantines *internal* faults per PR 2's fault model).
//!
//! Durability: campaign progress is checkpointed to a small text file
//! (magic `SQFZ1`, trailing fingerprint checksum, atomic tmp+rename —
//! the same shape as the exploration engine's checkpoints) so
//! `--resume` continues an interrupted run without re-judging
//! completed cases; the failure corpus on disk re-seeds fingerprint
//! deduplication across runs.

use std::collections::BTreeSet;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use seqwm_explore::{fp64, mix64, SplitMix64};
use seqwm_json::escape as json_string;
use seqwm_litmus::gen::{random_context, random_program, GenConfig};

use crate::corpus::{Corpus, FailureRecord};
use crate::oracle::{check_target, CheckVerdict, IncidentCause, OracleBudgets, OracleKind};
use crate::shrink::{case_stmts, shrink};
use crate::target::FuzzTarget;

/// Checkpoint magic line (campaign-level; the engine's state-space
/// checkpoints use their own `SQWM` magic).
const CHECKPOINT_MAGIC: &str = "SQFZ1";

/// A full campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of cases to generate and judge.
    pub cases: usize,
    /// Campaign seed (case `i` uses `mix64(seed ^ i)`).
    pub seed: u64,
    /// Worker threads draining the case queue.
    pub workers: usize,
    /// Program/context generator configuration.
    pub gen: GenConfig,
    /// The transformations under test.
    pub targets: Vec<FuzzTarget>,
    /// Per-case oracle budgets.
    pub budgets: OracleBudgets,
    /// Failure corpus directory.
    pub corpus_dir: PathBuf,
    /// Cases between checkpoint saves (0 disables checkpointing).
    pub checkpoint_every: usize,
    /// Resume from the checkpoint in the corpus directory, if any.
    pub resume: bool,
    /// Stop early after this many *unique* failures (0 = run all).
    pub max_failures: usize,
    /// Oracle evaluation budget per shrink.
    pub shrink_evals: usize,
    /// Percent of cases judged under a generated concurrent context.
    pub ctx_percent: u32,
    /// External stop flag: when set (by another thread — e.g. the
    /// serve daemon canceling a job), workers stop draining cases at
    /// the next boundary and the campaign returns the partial summary.
    /// `None` means the campaign only stops on completion or
    /// `max_failures`.
    pub stop: Option<Arc<AtomicBool>>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 200,
            seed: 0x5EED_F022,
            workers: 1,
            gen: GenConfig {
                max_stmts: 6,
                ..GenConfig::fuzzing()
            },
            targets: FuzzTarget::default_targets(),
            budgets: OracleBudgets::default(),
            corpus_dir: PathBuf::from(".seqwm-fuzz"),
            checkpoint_every: 25,
            resume: false,
            max_failures: 0,
            shrink_evals: 300,
            ctx_percent: 80,
            stop: None,
        }
    }
}

/// One quarantined case in the summary.
#[derive(Clone, Debug)]
pub struct CaseIncident {
    /// Case index within the campaign.
    pub case_index: usize,
    /// The transformation being checked when the incident occurred.
    pub target: FuzzTarget,
    /// The oracle that was running.
    pub oracle: OracleKind,
    /// What tripped.
    pub cause: IncidentCause,
    /// Diagnostic message.
    pub message: String,
}

/// One unique, persisted failure in the summary.
#[derive(Clone, Debug)]
pub struct FailureSummary {
    /// Dedup fingerprint.
    pub fingerprint: u64,
    /// The failing transformation.
    pub target: FuzzTarget,
    /// The refuting oracle (post-shrink).
    pub oracle: OracleKind,
    /// Corpus file the reproducer was written to.
    pub path: PathBuf,
    /// Statement counts before/after shrinking.
    pub original_stmts: usize,
    /// Statement count of the minimized case.
    pub shrunk_stmts: usize,
}

/// Machine-readable campaign outcome.
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    /// Campaign seed.
    pub seed: u64,
    /// Cases judged in this run (excludes resumed-over cases).
    pub cases_run: usize,
    /// Cases skipped because a checkpoint said they were done.
    pub resumed_from: usize,
    /// (case, target) checks where the target changed the program.
    pub optimized: usize,
    /// Checks where all oracles passed.
    pub checks_passed: usize,
    /// Checks where the target left the program unchanged.
    pub unoptimized: usize,
    /// Raw violations observed (before fingerprint dedup).
    pub violations: usize,
    /// New unique failures persisted to the corpus this run.
    pub unique_failures: Vec<FailureSummary>,
    /// Quarantined cases (capped recording; `incident_count` is the
    /// true total).
    pub incidents: Vec<CaseIncident>,
    /// Total incidents including beyond the recording cap.
    pub incident_count: usize,
    /// Engine states explored across all passing checks.
    pub states: usize,
    /// Oracle evaluations spent shrinking.
    pub shrink_evals: usize,
    /// Mean shrunk/original statement ratio over shrunk failures.
    pub mean_shrink_ratio: f64,
    /// Wall-clock duration of this run.
    pub elapsed: Duration,
}

impl CampaignSummary {
    /// Cap on individually recorded incidents.
    pub const MAX_RECORDED_INCIDENTS: usize = 64;

    /// True iff no oracle violation was found (incidents permitted:
    /// they are quarantined unknowns, not failures).
    pub fn clean(&self) -> bool {
        self.violations == 0 && self.unique_failures.is_empty()
    }

    /// Renders the summary as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"seed\":{},", self.seed));
        out.push_str(&format!("\"cases_run\":{},", self.cases_run));
        out.push_str(&format!("\"resumed_from\":{},", self.resumed_from));
        out.push_str(&format!("\"optimized\":{},", self.optimized));
        out.push_str(&format!("\"checks_passed\":{},", self.checks_passed));
        out.push_str(&format!("\"unoptimized\":{},", self.unoptimized));
        out.push_str(&format!("\"violations\":{},", self.violations));
        out.push_str(&format!("\"incident_count\":{},", self.incident_count));
        out.push_str(&format!("\"states\":{},", self.states));
        out.push_str(&format!("\"shrink_evals\":{},", self.shrink_evals));
        out.push_str(&format!(
            "\"mean_shrink_ratio\":{:.4},",
            self.mean_shrink_ratio
        ));
        out.push_str(&format!("\"elapsed_ms\":{},", self.elapsed.as_millis()));
        out.push_str("\"unique_failures\":[");
        for (i, f) in self.unique_failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"fingerprint\":\"{:016x}\",\"target\":\"{}\",\"oracle\":\"{}\",\
                 \"path\":{},\"original_stmts\":{},\"shrunk_stmts\":{}}}",
                f.fingerprint,
                f.target,
                f.oracle,
                json_string(&f.path.display().to_string()),
                f.original_stmts,
                f.shrunk_stmts
            ));
        }
        out.push_str("],\"incidents\":[");
        for (i, inc) in self.incidents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"case\":{},\"target\":\"{}\",\"oracle\":\"{}\",\"cause\":\"{}\",\
                 \"message\":{}}}",
                inc.case_index,
                inc.target,
                inc.oracle,
                inc.cause,
                json_string(&inc.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// A batched progress/failure event emitted by
/// [`run_campaign_with`]'s sink. Progress is batched at checkpoint
/// granularity ([`FuzzConfig::checkpoint_every`]) plus once at the
/// end, so a sink that forwards events over a socket is never in the
/// per-case hot path.
#[derive(Clone, Debug)]
pub enum CampaignEvent {
    /// A batch of cases finished.
    Progress {
        /// Cases completed so far (including resumed-over ones).
        completed: usize,
        /// Total cases in the campaign.
        cases: usize,
        /// Raw oracle violations observed so far.
        violations: usize,
        /// Incidents quarantined so far.
        incidents: usize,
        /// Engine states explored across passing checks so far.
        states: usize,
    },
    /// A new *unique* failure was shrunk and persisted.
    Failure(FailureSummary),
}

/// Shared mutable campaign state behind one mutex.
struct Shared {
    summary: CampaignSummary,
    seen: BTreeSet<u64>,
    completed: usize,
    since_checkpoint: usize,
}

/// Runs a campaign to completion (or early stop). Errors are I/O
/// problems with the corpus/checkpoint; judging problems never error,
/// they quarantine.
pub fn run_campaign(cfg: &FuzzConfig) -> Result<CampaignSummary, String> {
    run_campaign_with(cfg, &|_| {})
}

/// [`run_campaign`] with a progress sink: `sink` receives batched
/// [`CampaignEvent`]s (progress at checkpoint granularity, one event
/// per unique failure). The sink is called outside the campaign's
/// internal lock and may be slow without stalling workers beyond the
/// calling thread's own batch boundary.
///
/// # Errors
///
/// I/O problems with the corpus/checkpoint; judging problems never
/// error, they quarantine.
pub fn run_campaign_with(
    cfg: &FuzzConfig,
    sink: &(dyn Fn(&CampaignEvent) + Sync),
) -> Result<CampaignSummary, String> {
    let start = Instant::now();
    let corpus = Corpus::open(&cfg.corpus_dir).map_err(|e| format!("cannot open corpus: {e}"))?;
    let mut summary = CampaignSummary {
        seed: cfg.seed,
        ..CampaignSummary::default()
    };

    // Seed dedup from what previous runs already persisted.
    let mut seen: BTreeSet<u64> = corpus
        .existing()
        .map_err(|e| format!("cannot scan corpus: {e}"))?
        .into_iter()
        .map(|(fp, _)| fp)
        .collect();
    // Fingerprints recorded by the checkpoint (covers failures found
    // by an interrupted run even if its corpus files were cleaned).
    let mut start_case = 0usize;
    if cfg.resume {
        match load_checkpoint(cfg) {
            Ok(Some((next_case, fps))) => {
                start_case = next_case.min(cfg.cases);
                summary.resumed_from = start_case;
                seen.extend(fps);
            }
            Ok(None) => {}
            Err(e) => eprintln!("warning: ignoring corrupt fuzz checkpoint: {e}"),
        }
    }

    let next = AtomicUsize::new(start_case);
    let stop = AtomicBool::new(false);
    let shared = Mutex::new(Shared {
        summary,
        seen,
        completed: start_case,
        since_checkpoint: 0,
    });
    let workers = cfg.workers.max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // An external cancel latches the shared stop so every
                // worker (and run_case's per-target check) sees it.
                if let Some(ext) = &cfg.stop {
                    if ext.load(Ordering::Relaxed) {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let case = next.fetch_add(1, Ordering::Relaxed);
                if case >= cfg.cases {
                    break;
                }
                run_case(cfg, case, &corpus, &shared, &stop, sink);
                let mut sh = lock(&shared);
                sh.completed += 1;
                sh.since_checkpoint += 1;
                if cfg.checkpoint_every > 0 && sh.since_checkpoint >= cfg.checkpoint_every {
                    sh.since_checkpoint = 0;
                    let done = resumable_floor(&next, cfg);
                    let fps = sh.seen.clone();
                    let progress = progress_event(&sh, cfg);
                    drop(sh);
                    sink(&progress);
                    if let Err(e) = save_checkpoint(cfg, done, &fps) {
                        eprintln!("warning: fuzz checkpoint save failed: {e}");
                    }
                }
            });
        }
    });

    let mut sh = lock(&shared);
    sh.summary.cases_run = sh.completed - start_case;
    sh.summary.elapsed = start.elapsed();
    let shrunk: Vec<&FailureSummary> = sh.summary.unique_failures.iter().collect();
    sh.summary.mean_shrink_ratio = if shrunk.is_empty() {
        1.0
    } else {
        shrunk
            .iter()
            .map(|f| {
                if f.original_stmts == 0 {
                    1.0
                } else {
                    f.shrunk_stmts as f64 / f.original_stmts as f64
                }
            })
            .sum::<f64>()
            / shrunk.len() as f64
    };
    let out = sh.summary.clone();
    let fps = sh.seen.clone();
    let final_progress = progress_event(&sh, cfg);
    drop(sh);
    sink(&final_progress);
    if cfg.checkpoint_every > 0 {
        let done = if stop.load(Ordering::Relaxed) {
            // Early stop: cases beyond the floor may be unjudged.
            resumable_floor(&next, cfg)
        } else {
            cfg.cases
        };
        if let Err(e) = save_checkpoint(cfg, done, &fps) {
            eprintln!("warning: fuzz checkpoint save failed: {e}");
        }
    }
    Ok(out)
}

/// Snapshots the shared state into a [`CampaignEvent::Progress`].
fn progress_event(sh: &Shared, cfg: &FuzzConfig) -> CampaignEvent {
    CampaignEvent::Progress {
        completed: sh.completed,
        cases: cfg.cases,
        violations: sh.summary.violations,
        incidents: sh.summary.incident_count,
        states: sh.summary.states,
    }
}

/// A conservative "every case below this is done" floor for resume:
/// with in-flight workers we cannot know the exact completion set, so
/// back off by the worker count from the queue head.
fn resumable_floor(next: &AtomicUsize, cfg: &FuzzConfig) -> usize {
    next.load(Ordering::Relaxed)
        .min(cfg.cases)
        .saturating_sub(cfg.workers.max(1))
}

fn lock<'a>(shared: &'a Mutex<Shared>) -> std::sync::MutexGuard<'a, Shared> {
    match shared.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Generates and judges one case against every target.
fn run_case(
    cfg: &FuzzConfig,
    case: usize,
    corpus: &Corpus,
    shared: &Mutex<Shared>,
    stop: &AtomicBool,
    sink: &(dyn Fn(&CampaignEvent) + Sync),
) {
    let case_seed = mix64(cfg.seed ^ case as u64);
    let mut rng = SplitMix64::new(case_seed);
    let src = random_program(&mut rng, &cfg.gen);
    let with_ctx = cfg.ctx_percent > 0 && rng.chance(cfg.ctx_percent);
    let ctx = with_ctx.then(|| random_context(&mut rng, &cfg.gen));

    for &target in &cfg.targets {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            check_target(target, &src, ctx.as_ref(), &cfg.budgets)
        }))
        .unwrap_or_else(|payload| CheckVerdict::Incident {
            oracle: OracleKind::Seq,
            cause: IncidentCause::CheckerPanic,
            message: panic_message(&payload),
        });
        match verdict {
            CheckVerdict::Unoptimized => {
                lock(shared).summary.unoptimized += 1;
            }
            CheckVerdict::Passed { states } => {
                let mut sh = lock(shared);
                sh.summary.optimized += 1;
                sh.summary.checks_passed += 1;
                sh.summary.states += states;
            }
            CheckVerdict::Incident {
                oracle,
                cause,
                message,
            } => {
                let mut sh = lock(shared);
                sh.summary.incident_count += 1;
                if sh.summary.incidents.len() < CampaignSummary::MAX_RECORDED_INCIDENTS {
                    sh.summary.incidents.push(CaseIncident {
                        case_index: case,
                        target,
                        oracle,
                        cause,
                        message,
                    });
                }
            }
            CheckVerdict::Violation { oracle, detail } => {
                {
                    let mut sh = lock(shared);
                    sh.summary.optimized += 1;
                    sh.summary.violations += 1;
                }
                let original_stmts = case_stmts(&src, ctx.as_ref());
                let out = shrink(
                    target,
                    &src,
                    ctx.as_ref(),
                    oracle,
                    &detail,
                    &cfg.budgets,
                    cfg.shrink_evals,
                );
                let record = FailureRecord {
                    target,
                    oracle: out.oracle,
                    campaign_seed: cfg.seed,
                    case_index: case,
                    original_stmts,
                    shrunk_stmts: out.shrunk_stmts,
                    detail: out.detail.clone(),
                    src: out.src.clone(),
                    ctx: out.ctx.clone(),
                };
                let fp = record.fingerprint();
                let mut new_failure = None;
                let mut sh = lock(shared);
                sh.summary.shrink_evals += out.evals;
                if sh.seen.insert(fp) {
                    match corpus.save(&record) {
                        Ok(path) => {
                            let failure = FailureSummary {
                                fingerprint: fp,
                                target,
                                oracle: out.oracle,
                                path,
                                original_stmts,
                                shrunk_stmts: out.shrunk_stmts,
                            };
                            sh.summary.unique_failures.push(failure.clone());
                            new_failure = Some(failure);
                            if cfg.max_failures > 0
                                && sh.summary.unique_failures.len() >= cfg.max_failures
                            {
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("warning: corpus save failed: {e}");
                            sh.seen.remove(&fp);
                        }
                    }
                }
                drop(sh);
                if let Some(failure) = new_failure {
                    sink(&CampaignEvent::Failure(failure));
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "checker panicked (non-string payload)".to_string()
    }
}

/// Checkpoint path inside the corpus directory.
fn checkpoint_path(cfg: &FuzzConfig) -> PathBuf {
    cfg.corpus_dir.join("checkpoint.sqfz")
}

/// Serializes the resumable campaign state (atomic tmp+rename, with a
/// trailing content checksum like the engine's checkpoints).
fn save_checkpoint(cfg: &FuzzConfig, next_case: usize, fps: &BTreeSet<u64>) -> Result<(), String> {
    fs::create_dir_all(&cfg.corpus_dir).map_err(|e| e.to_string())?;
    let mut body = String::new();
    body.push_str(CHECKPOINT_MAGIC);
    body.push('\n');
    body.push_str(&format!("seed: {}\n", cfg.seed));
    body.push_str(&format!("cases: {}\n", cfg.cases));
    body.push_str(&format!("next-case: {next_case}\n"));
    let fp_list: Vec<String> = fps.iter().map(|fp| format!("{fp:016x}")).collect();
    body.push_str(&format!("fingerprints: {}\n", fp_list.join(",")));
    body.push_str(&format!("checksum: {:016x}\n", fp64(&body)));
    let path = checkpoint_path(cfg);
    let tmp = cfg
        .corpus_dir
        .join(format!(".checkpoint-{}.tmp", std::process::id()));
    fs::write(&tmp, body).map_err(|e| e.to_string())?;
    fs::rename(&tmp, &path).map_err(|e| e.to_string())?;
    Ok(())
}

/// Loads the checkpoint. `Ok(None)` means "no checkpoint" (fresh
/// start); `Err` means a checkpoint exists but is unusable.
fn load_checkpoint(cfg: &FuzzConfig) -> Result<Option<(usize, Vec<u64>)>, String> {
    let path = checkpoint_path(cfg);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.to_string()),
    };
    let Some((body, checksum_line)) = text.trim_end().rsplit_once('\n') else {
        return Err("truncated checkpoint".to_string());
    };
    let mut body = body.to_string();
    body.push('\n');
    let expected = checksum_line
        .strip_prefix("checksum: ")
        .ok_or("missing checksum line")?;
    let expected = u64::from_str_radix(expected, 16).map_err(|e| format!("bad checksum: {e}"))?;
    let actual = fp64(&body);
    if expected != actual {
        return Err(format!(
            "checksum mismatch ({expected:016x} recorded, {actual:016x} computed)"
        ));
    }
    let mut lines = body.lines();
    if lines.next() != Some(CHECKPOINT_MAGIC) {
        return Err(format!("bad magic (expected {CHECKPOINT_MAGIC})"));
    }
    let mut seed = None;
    let mut cases = None;
    let mut next_case = None;
    let mut fps = Vec::new();
    for line in lines {
        let Some((key, value)) = line.split_once(": ") else {
            continue;
        };
        match key {
            "seed" => seed = value.parse().ok(),
            "cases" => cases = value.parse().ok(),
            "next-case" => next_case = value.parse().ok(),
            "fingerprints" => {
                for part in value.split(',').filter(|p| !p.is_empty()) {
                    fps.push(
                        u64::from_str_radix(part, 16)
                            .map_err(|e| format!("bad fingerprint {part}: {e}"))?,
                    );
                }
            }
            _ => {}
        }
    }
    if seed != Some(cfg.seed) || cases != Some(cfg.cases) {
        return Err(format!(
            "checkpoint is for a different campaign (seed {:?} cases {:?}, this run: seed {} \
             cases {})",
            seed, cases, cfg.seed, cfg.cases
        ));
    }
    let next_case = next_case.ok_or("missing next-case")?;
    Ok(Some((next_case, fps)))
}

/// Replays a persisted failure record: re-runs the oracles on the
/// stored minimized case and reports the verdict.
pub fn replay(record: &FailureRecord, budgets: &OracleBudgets) -> CheckVerdict {
    catch_unwind(AssertUnwindSafe(|| {
        check_target(record.target, &record.src, record.ctx.as_ref(), budgets)
    }))
    .unwrap_or_else(|payload| CheckVerdict::Incident {
        oracle: record.oracle,
        cause: IncidentCause::CheckerPanic,
        message: panic_message(&payload),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::target::BuggyPass;

    fn temp_corpus(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("seqwm-fuzz-campaign-{}-{tag}", std::process::id()))
    }

    fn small_cfg(tag: &str) -> FuzzConfig {
        FuzzConfig {
            cases: 12,
            seed: 0xC0FFEE,
            gen: GenConfig {
                max_stmts: 4,
                ..GenConfig::fuzzing()
            },
            corpus_dir: temp_corpus(tag),
            checkpoint_every: 4,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let dir1 = temp_corpus("det1");
        let dir2 = temp_corpus("det2");
        let _ = fs::remove_dir_all(&dir1);
        let _ = fs::remove_dir_all(&dir2);
        let cfg1 = FuzzConfig {
            corpus_dir: dir1.clone(),
            workers: 1,
            targets: vec![FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown)],
            ..small_cfg("det1")
        };
        let cfg2 = FuzzConfig {
            corpus_dir: dir2.clone(),
            workers: 3,
            targets: vec![FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown)],
            ..small_cfg("det2")
        };
        let s1 = run_campaign(&cfg1).unwrap();
        let s2 = run_campaign(&cfg2).unwrap();
        assert_eq!(s1.violations, s2.violations);
        let fps1: BTreeSet<u64> = s1.unique_failures.iter().map(|f| f.fingerprint).collect();
        let fps2: BTreeSet<u64> = s2.unique_failures.iter().map(|f| f.fingerprint).collect();
        assert_eq!(fps1, fps2);
        let _ = fs::remove_dir_all(&dir1);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn checkpoints_round_trip_and_reject_tampering() {
        let cfg = FuzzConfig {
            corpus_dir: temp_corpus("ckpt"),
            ..small_cfg("ckpt")
        };
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
        fs::create_dir_all(&cfg.corpus_dir).unwrap();
        let fps: BTreeSet<u64> = [1u64, 0xdead_beef].into_iter().collect();
        save_checkpoint(&cfg, 7, &fps).unwrap();
        let (next, loaded) = load_checkpoint(&cfg).unwrap().unwrap();
        assert_eq!(next, 7);
        assert_eq!(loaded, vec![1, 0xdead_beef]);
        // Flip a byte: the checksum must catch it.
        let path = checkpoint_path(&cfg);
        let tampered = fs::read_to_string(&path)
            .unwrap()
            .replace("next-case: 7", "next-case: 9");
        fs::write(&path, tampered).unwrap();
        assert!(load_checkpoint(&cfg).unwrap_err().contains("checksum"));
        // A different campaign's checkpoint is refused.
        save_checkpoint(&cfg, 7, &fps).unwrap();
        let other = FuzzConfig {
            seed: 1,
            ..cfg.clone()
        };
        assert!(load_checkpoint(&other)
            .unwrap_err()
            .contains("different campaign"));
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
    }

    #[test]
    fn resume_skips_completed_cases() {
        let cfg = FuzzConfig {
            corpus_dir: temp_corpus("resume"),
            targets: vec![FuzzTarget::Pipeline],
            ..small_cfg("resume")
        };
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
        let full = run_campaign(&cfg).unwrap();
        assert_eq!(full.cases_run, cfg.cases);
        // The finished checkpoint says everything is done.
        let resumed = run_campaign(&FuzzConfig {
            resume: true,
            ..cfg.clone()
        })
        .unwrap();
        assert_eq!(resumed.resumed_from, cfg.cases);
        assert_eq!(resumed.cases_run, 0);
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
    }

    #[test]
    fn sink_sees_progress_batches_and_every_unique_failure() {
        let cfg = FuzzConfig {
            corpus_dir: temp_corpus("sink"),
            // Enough cases for the planted bug to surface at this seed.
            cases: 80,
            targets: vec![FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown)],
            ..small_cfg("sink")
        };
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
        let events = Mutex::new(Vec::new());
        let summary = run_campaign_with(&cfg, &|e| {
            events.lock().unwrap().push(e.clone());
        })
        .unwrap();
        let events = events.into_inner().unwrap();
        let progresses: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::Progress { completed, .. } => Some(*completed),
                _ => None,
            })
            .collect();
        // checkpoint_every = 4 over 12 cases plus the final event.
        assert!(progresses.len() >= 3, "too few progress events");
        assert_eq!(*progresses.last().unwrap(), cfg.cases);
        let failure_fps: BTreeSet<u64> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::Failure(f) => Some(f.fingerprint),
                _ => None,
            })
            .collect();
        let summary_fps: BTreeSet<u64> = summary
            .unique_failures
            .iter()
            .map(|f| f.fingerprint)
            .collect();
        assert_eq!(failure_fps, summary_fps);
        assert!(!summary_fps.is_empty(), "buggy pass produced no failures");
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
    }

    #[test]
    fn external_stop_flag_halts_the_campaign_early() {
        let stop = Arc::new(AtomicBool::new(true)); // pre-set: stop at once
        let cfg = FuzzConfig {
            corpus_dir: temp_corpus("stop"),
            cases: 10_000,
            targets: vec![FuzzTarget::Pipeline],
            stop: Some(stop),
            ..small_cfg("stop")
        };
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
        let s = run_campaign(&cfg).unwrap();
        assert!(
            s.cases_run < cfg.cases,
            "external stop ignored ({} cases ran)",
            s.cases_run
        );
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
    }

    #[test]
    fn summary_json_is_well_formed_enough() {
        let cfg = FuzzConfig {
            corpus_dir: temp_corpus("json"),
            cases: 4,
            targets: vec![FuzzTarget::Buggy(BuggyPass::ReorderAcquireDown)],
            ..small_cfg("json")
        };
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
        let s = run_campaign(&cfg).unwrap();
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"cases_run\":",
            "\"violations\":",
            "\"incident_count\":",
            "\"unique_failures\":[",
            "\"incidents\":[",
            "\"mean_shrink_ratio\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let _ = fs::remove_dir_all(&cfg.corpus_dir);
    }
}
