//! Pure expressions over registers.
//!
//! Expressions never access shared memory; evaluating them is a *silent*
//! transition of the LTS (§2). Division by zero (the paper's canonical
//! UB-invoking operation, `b := 1/0`) and branching on `undef` surface as
//! [`ValueError`]s which the LTS maps to the error state `⊥`.

use std::collections::BTreeSet;
use std::fmt;

use crate::ident::Reg;
use crate::value::{arith, div, rem, Value, ValueError};

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Multiplication (wrapping).
    Mul,
    /// Division — UB on zero/`undef` divisor.
    Div,
    /// Remainder — UB on zero/`undef` divisor.
    Rem,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Logical and (non-short-circuit, on integer truthiness).
    And,
    /// Logical or (non-short-circuit, on integer truthiness).
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation (on integer truthiness).
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
        }
    }
}

/// A pure expression over constants and registers.
///
/// ```
/// use seqwm_lang::expr::Expr;
/// use seqwm_lang::{Reg, Value};
/// use std::collections::HashMap;
///
/// let e = Expr::bin(seqwm_lang::expr::BinOp::Add, Expr::reg("p"), Expr::int(1));
/// let mut regs = HashMap::new();
/// regs.insert(Reg::new("p"), Value::Int(41));
/// assert_eq!(e.eval(&|r| regs.get(&r).copied().unwrap_or_default()), Ok(Value::Int(42)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A constant value (integers; `undef` expressible for testing).
    Const(Value),
    /// A register read.
    Reg(Reg),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// An integer constant.
    pub fn int(n: i64) -> Expr {
        Expr::Const(Value::Int(n))
    }

    /// The `undef` constant (useful for tests and the App. C examples).
    pub fn undef() -> Expr {
        Expr::Const(Value::Undef)
    }

    /// A register reference.
    pub fn reg(name: &str) -> Expr {
        Expr::Reg(Reg::new(name))
    }

    /// A binary operation node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// A unary operation node.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Un(op, Box::new(e))
    }

    /// Shorthand for `lhs == rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, lhs, rhs)
    }

    /// Shorthand for `lhs != rhs`.
    pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, lhs, rhs)
    }

    /// Evaluates the expression under the register valuation `regs`.
    ///
    /// # Errors
    ///
    /// Returns a [`ValueError`] if evaluation invokes UB (division by
    /// zero/`undef`).
    pub fn eval<F>(&self, regs: &F) -> Result<Value, ValueError>
    where
        F: Fn(Reg) -> Value,
    {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Reg(r) => Ok(regs(*r)),
            Expr::Un(op, e) => {
                let v = e.eval(regs)?;
                Ok(match (op, v) {
                    (_, Value::Undef) => Value::Undef,
                    (UnOp::Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                    (UnOp::Not, Value::Int(n)) => Value::from(n == 0),
                })
            }
            Expr::Bin(op, a, b) => {
                let va = a.eval(regs)?;
                let vb = b.eval(regs)?;
                match op {
                    BinOp::Add => Ok(arith(va, vb, i64::wrapping_add)),
                    BinOp::Sub => Ok(arith(va, vb, i64::wrapping_sub)),
                    BinOp::Mul => Ok(arith(va, vb, i64::wrapping_mul)),
                    BinOp::Div => div(va, vb),
                    BinOp::Rem => rem(va, vb),
                    BinOp::Eq => Ok(arith(va, vb, |x, y| i64::from(x == y))),
                    BinOp::Ne => Ok(arith(va, vb, |x, y| i64::from(x != y))),
                    BinOp::Lt => Ok(arith(va, vb, |x, y| i64::from(x < y))),
                    BinOp::Le => Ok(arith(va, vb, |x, y| i64::from(x <= y))),
                    BinOp::Gt => Ok(arith(va, vb, |x, y| i64::from(x > y))),
                    BinOp::Ge => Ok(arith(va, vb, |x, y| i64::from(x >= y))),
                    BinOp::And => Ok(arith(va, vb, |x, y| i64::from(x != 0 && y != 0))),
                    BinOp::Or => Ok(arith(va, vb, |x, y| i64::from(x != 0 || y != 0))),
                }
            }
        }
    }

    /// The set of registers read by this expression.
    pub fn regs(&self) -> BTreeSet<Reg> {
        let mut out = BTreeSet::new();
        self.collect_regs(&mut out);
        out
    }

    fn collect_regs(&self, out: &mut BTreeSet<Reg>) {
        match self {
            Expr::Const(_) => {}
            Expr::Reg(r) => {
                out.insert(*r);
            }
            Expr::Un(_, e) => e.collect_regs(out),
            Expr::Bin(_, a, b) => {
                a.collect_regs(out);
                b.collect_regs(out);
            }
        }
    }

    /// Does this expression mention register `r`?
    pub fn uses_reg(&self, r: Reg) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Reg(q) => *q == r,
            Expr::Un(_, e) => e.uses_reg(r),
            Expr::Bin(_, a, b) => a.uses_reg(r) || b.uses_reg(r),
        }
    }

    /// Is this expression a constant (no register reads)?
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::Const(_))
    }
}

impl From<i64> for Expr {
    fn from(n: i64) -> Self {
        Expr::int(n)
    }
}

impl From<Reg> for Expr {
    fn from(r: Reg) -> Self {
        Expr::Reg(r)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Reg(r) => write!(f, "{r}"),
            Expr::Un(op, e) => write!(f, "{op}({e})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(pairs: &[(&str, Value)]) -> impl Fn(Reg) -> Value {
        let map: HashMap<Reg, Value> = pairs.iter().map(|(n, v)| (Reg::new(n), *v)).collect();
        move |r| map.get(&r).copied().unwrap_or_default()
    }

    #[test]
    fn constants_and_registers() {
        let e = env(&[("ea", Value::Int(5))]);
        assert_eq!(Expr::int(3).eval(&e), Ok(Value::Int(3)));
        assert_eq!(Expr::reg("ea").eval(&e), Ok(Value::Int(5)));
        assert_eq!(Expr::reg("eb").eval(&e), Ok(Value::Int(0))); // default 0
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = env(&[]);
        assert_eq!(
            Expr::bin(BinOp::Add, Expr::int(2), Expr::int(3)).eval(&e),
            Ok(Value::Int(5))
        );
        assert_eq!(
            Expr::bin(BinOp::Lt, Expr::int(2), Expr::int(3)).eval(&e),
            Ok(Value::Int(1))
        );
        assert_eq!(
            Expr::bin(BinOp::And, Expr::int(1), Expr::int(0)).eval(&e),
            Ok(Value::Int(0))
        );
        assert_eq!(
            Expr::un(UnOp::Not, Expr::int(0)).eval(&e),
            Ok(Value::Int(1))
        );
        assert_eq!(
            Expr::un(UnOp::Neg, Expr::int(4)).eval(&e),
            Ok(Value::Int(-4))
        );
    }

    #[test]
    fn division_by_zero_is_ub() {
        let e = env(&[]);
        assert_eq!(
            Expr::bin(BinOp::Div, Expr::int(1), Expr::int(0)).eval(&e),
            Err(ValueError::DivByZero)
        );
    }

    #[test]
    fn undef_propagation() {
        let e = env(&[("eu", Value::Undef)]);
        assert_eq!(
            Expr::bin(BinOp::Add, Expr::reg("eu"), Expr::int(1)).eval(&e),
            Ok(Value::Undef)
        );
        assert_eq!(
            Expr::eq(Expr::reg("eu"), Expr::int(1)).eval(&e),
            Ok(Value::Undef)
        );
        assert_eq!(
            Expr::un(UnOp::Not, Expr::reg("eu")).eval(&e),
            Ok(Value::Undef)
        );
    }

    #[test]
    fn reg_collection() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::reg("er1"),
            Expr::bin(BinOp::Mul, Expr::reg("er2"), Expr::reg("er1")),
        );
        let regs = e.regs();
        assert_eq!(regs.len(), 2);
        assert!(e.uses_reg(Reg::new("er1")));
        assert!(e.uses_reg(Reg::new("er2")));
        assert!(!e.uses_reg(Reg::new("er3")));
    }

    #[test]
    fn display_round() {
        let e = Expr::bin(BinOp::Add, Expr::reg("ed"), Expr::int(1));
        assert_eq!(e.to_string(), "(ed + 1)");
    }

    #[test]
    fn wrapping_semantics() {
        let e = env(&[]);
        assert_eq!(
            Expr::bin(BinOp::Add, Expr::int(i64::MAX), Expr::int(1)).eval(&e),
            Ok(Value::Int(i64::MIN))
        );
        assert_eq!(
            Expr::un(UnOp::Neg, Expr::int(i64::MIN)).eval(&e),
            Ok(Value::Int(i64::MIN))
        );
    }
}
