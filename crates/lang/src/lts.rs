//! The labeled-transition-system reading of programs (§2, "Program
//! representation in the paper").
//!
//! A program state [`ProgState`] packages the continuation (a stack of
//! statements still to run) with the local register file. The machine
//! driving the program calls [`ProgState::step`], which returns the unique
//! enabled [`Step`]:
//!
//! * value-*supplying* steps ([`Step::Silent`], [`Step::Write`], …) carry
//!   the successor state directly, whereas
//! * value-*demanding* steps ([`Step::Read`], [`Step::Rmw`],
//!   [`Step::Choose`]) are resumed by the machine via
//!   [`ProgState::resume_read`] / [`ProgState::resume_rmw`] /
//!   [`ProgState::resume_choose`], which supply the environment-chosen
//!   value.
//!
//! This structure makes every `ProgState` *deterministic* in the sense of
//! Def. 6.1 of the paper: distinct transitions from the same state differ
//! only in the read/chosen value. [`ProgState::check_deterministic`] is
//! kept as an executable witness of that property.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::event::{FenceMode, ReadMode, RmwMode, WriteMode};
use crate::ident::{Loc, Reg};
use crate::stmt::{Program, Stmt};
use crate::value::{Value, ValueError};

/// A register file: total map from registers to values, defaulting to `0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct RegFile {
    map: BTreeMap<Reg, Value>,
}

impl RegFile {
    /// An empty register file (all registers read as `0`).
    pub fn new() -> Self {
        RegFile::default()
    }

    /// Reads register `r` (default `0`).
    pub fn get(&self, r: Reg) -> Value {
        self.map.get(&r).copied().unwrap_or_default()
    }

    /// Writes register `r`.
    pub fn set(&mut self, r: Reg, v: Value) {
        self.map.insert(r, v);
    }

    /// Iterates over explicitly written registers.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, Value)> + '_ {
        self.map.iter().map(|(r, v)| (*r, *v))
    }
}

impl fmt::Display for RegFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (r, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Run status of a program state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Status {
    /// Still executing.
    Running,
    /// Terminated normally: `return(v)`.
    Returned(Value),
    /// The error state `⊥` (undefined behaviour).
    Failed,
}

/// The set of values offered by a `choose(v)` transition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ChoiceSet {
    /// An explicit finite set (from `r := choose(v1, .., vn)`).
    Explicit(Vec<Value>),
    /// Any *defined* value (from `freeze` of `undef`); the machine picks
    /// from its configured value domain.
    AnyDefined,
}

impl ChoiceSet {
    /// Is `v` a legal resolution of this choice?
    pub fn admits(&self, v: Value) -> bool {
        match self {
            ChoiceSet::Explicit(vs) => vs.contains(&v),
            ChoiceSet::AnyDefined => !v.is_undef(),
        }
    }

    /// Enumerates the choices, using `domain` for [`ChoiceSet::AnyDefined`].
    pub fn enumerate(&self, domain: &[i64]) -> Vec<Value> {
        match self {
            ChoiceSet::Explicit(vs) => vs.clone(),
            ChoiceSet::AnyDefined => domain.iter().map(|&n| Value::Int(n)).collect(),
        }
    }
}

/// The unique enabled transition of a program state.
#[derive(Clone, Debug)]
pub enum Step {
    /// Normal termination with final value `v` (`σ = return(v)`).
    Terminated(Value),
    /// The program is at `⊥` (undefined behaviour).
    Fail,
    /// A silent step (`σ → σ'`): local computation, control flow.
    Silent(ProgState),
    /// A `choose(v)` step; resume with [`ProgState::resume_choose`].
    Choose(ChoiceSet),
    /// A read request `R^o(x, ·)`; resume with [`ProgState::resume_read`].
    Read {
        /// Location read.
        loc: Loc,
        /// Read access mode.
        mode: ReadMode,
    },
    /// A write `W^o(x, v)`, with the successor state attached.
    Write {
        /// Location written.
        loc: Loc,
        /// Write access mode.
        mode: WriteMode,
        /// Value written.
        val: Value,
        /// Successor program state.
        next: ProgState,
    },
    /// An atomic update request `U^o(x, ·)`; resume with
    /// [`ProgState::resume_rmw`].
    Rmw {
        /// Location updated.
        loc: Loc,
        /// RMW access mode.
        mode: RmwMode,
    },
    /// A fence, with the successor state attached.
    Fence {
        /// Fence mode.
        mode: FenceMode,
        /// Successor program state.
        next: ProgState,
    },
    /// An observable system call (`print`), with the successor attached.
    Syscall {
        /// Value printed.
        val: Value,
        /// Successor program state.
        next: ProgState,
    },
}

/// Resolution of an RMW once the machine supplies the read value.
#[derive(Clone, Debug)]
pub struct RmwResolution {
    /// The value to write, or `None` if the update does not write
    /// (a failed CAS behaves as a plain read).
    pub write: Option<Value>,
    /// Successor program state.
    pub next: ProgState,
}

/// A program state `σ`: continuation stack + register file + status.
///
/// Cheap to clone (statements are shared via [`Arc`]); `Eq`/`Hash` are
/// structural, enabling memoized state-space exploration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProgState {
    /// Continuation stack; the *last* element is the next statement.
    cont: Vec<Arc<Stmt>>,
    regs: RegFile,
    status: Status,
}

impl ProgState {
    /// Initial state of a program with a fresh register file.
    pub fn new(prog: &Program) -> Self {
        Self::with_regs(prog, RegFile::new())
    }

    /// Initial state with the given register file.
    pub fn with_regs(prog: &Program, regs: RegFile) -> Self {
        ProgState {
            cont: vec![Arc::new(prog.body.clone())],
            regs,
            status: Status::Running,
        }
    }

    /// Initial state from a bare statement.
    pub fn from_stmt(stmt: Stmt) -> Self {
        ProgState {
            cont: vec![Arc::new(stmt)],
            regs: RegFile::new(),
            status: Status::Running,
        }
    }

    /// The dedicated error state `⊥`.
    pub fn bottom() -> Self {
        ProgState {
            cont: Vec::new(),
            regs: RegFile::new(),
            status: Status::Failed,
        }
    }

    /// The register file of this state.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Returns a state that first runs `stmt` and then continues as `self`.
    ///
    /// Used by machines to decompose composite operations (e.g. an
    /// `acqrel` fence into a release part followed by an acquire part).
    pub fn prefixed(&self, stmt: Stmt) -> ProgState {
        let mut s = self.clone();
        if s.status == Status::Running {
            s.cont.push(Arc::new(stmt));
        }
        s
    }

    /// Is this the error state `⊥`?
    pub fn is_failed(&self) -> bool {
        self.status == Status::Failed
    }

    /// The set of locations the remaining program may still write to
    /// (syntactic over-approximation). Machines use this to prune doomed
    /// promise candidates: a promise on a location the thread can never
    /// write is never certifiable.
    pub fn may_write_locs(&self) -> std::collections::BTreeSet<Loc> {
        let mut out = std::collections::BTreeSet::new();
        for stmt in &self.cont {
            stmt.visit(&mut |s| match s {
                Stmt::Store(x, _, _) => {
                    out.insert(*x);
                }
                Stmt::Cas { loc, .. } | Stmt::Fadd { loc, .. } => {
                    out.insert(*loc);
                }
                _ => {}
            });
        }
        out
    }

    /// Has the program terminated normally?
    ///
    /// Note: a running state with an exhausted continuation is *not yet*
    /// terminated — it takes one more silent step into the implicit
    /// `return 0` state. This mirrors the paper's interaction-tree
    /// representation, where a `Tau` node always separates the last event
    /// from the `Ret` leaf; the intermediate state generates a partial
    /// behavior, on which several of the paper's refinement claims rely
    /// (e.g. the introduction direction of Example 2.6).
    pub fn returned(&self) -> Option<Value> {
        match self.status {
            Status::Returned(v) => Some(v),
            _ => None,
        }
    }

    fn eval(&self, e: &crate::expr::Expr) -> Result<Value, ValueError> {
        let regs = &self.regs;
        e.eval(&|r| regs.get(r))
    }

    fn popped(&self) -> ProgState {
        let mut s = self.clone();
        s.cont.pop();
        s
    }

    fn failed(&self) -> ProgState {
        let mut s = self.clone();
        s.status = Status::Failed;
        s.cont.clear();
        s
    }

    fn popped_set(&self, r: Reg, v: Value) -> ProgState {
        let mut s = self.popped();
        s.regs.set(r, v);
        s
    }

    /// Computes the unique enabled transition of this state.
    ///
    /// Value-demanding transitions ([`Step::Read`], [`Step::Rmw`],
    /// [`Step::Choose`]) must be completed with the corresponding
    /// `resume_*` method on the *same* state.
    pub fn step(&self) -> Step {
        match self.status {
            Status::Failed => return Step::Fail,
            Status::Returned(v) => return Step::Terminated(v),
            Status::Running => {}
        }
        let Some(top) = self.cont.last() else {
            // Fell off the end of the program: one silent step into the
            // implicit `return 0` (see `returned` for why this is not an
            // immediate termination).
            let mut s = self.clone();
            s.status = Status::Returned(Value::ZERO);
            return Step::Silent(s);
        };
        match &**top {
            Stmt::Skip => Step::Silent(self.popped()),
            Stmt::Assign(r, e) => match self.eval(e) {
                Ok(v) => Step::Silent(self.popped_set(*r, v)),
                Err(_) => Step::Silent(self.failed()),
            },
            Stmt::Load(_, x, m) => Step::Read { loc: *x, mode: *m },
            Stmt::Store(x, m, e) => match self.eval(e) {
                Ok(v) => Step::Write {
                    loc: *x,
                    mode: *m,
                    val: v,
                    next: self.popped(),
                },
                Err(_) => Step::Silent(self.failed()),
            },
            Stmt::Choose(_, vs) => Step::Choose(ChoiceSet::Explicit(
                vs.iter().map(|&n| Value::Int(n)).collect(),
            )),
            Stmt::Freeze(r, e) => match self.eval(e) {
                Ok(Value::Int(n)) => Step::Silent(self.popped_set(*r, Value::Int(n))),
                Ok(Value::Undef) => Step::Choose(ChoiceSet::AnyDefined),
                Err(_) => Step::Silent(self.failed()),
            },
            Stmt::Cas { loc, mode, .. } => Step::Rmw {
                loc: *loc,
                mode: *mode,
            },
            Stmt::Fadd { loc, mode, .. } => Step::Rmw {
                loc: *loc,
                mode: *mode,
            },
            Stmt::Fence(m) => Step::Fence {
                mode: *m,
                next: self.popped(),
            },
            Stmt::Seq(a, b) => {
                let mut s = self.popped();
                s.cont.push(Arc::new((**b).clone()));
                s.cont.push(Arc::new((**a).clone()));
                Step::Silent(s)
            }
            Stmt::If(e, a, b) => match self.eval(e).map(Value::truthiness) {
                Ok(Some(true)) => {
                    let mut s = self.popped();
                    s.cont.push(Arc::new((**a).clone()));
                    Step::Silent(s)
                }
                Ok(Some(false)) => {
                    let mut s = self.popped();
                    s.cont.push(Arc::new((**b).clone()));
                    Step::Silent(s)
                }
                // Branching on undef invokes UB (Remark 1).
                Ok(None) | Err(_) => Step::Silent(self.failed()),
            },
            Stmt::While(e, body) => match self.eval(e).map(Value::truthiness) {
                Ok(Some(true)) => {
                    let again = Arc::clone(top);
                    let mut s = self.popped();
                    s.cont.push(again);
                    s.cont.push(Arc::new((**body).clone()));
                    Step::Silent(s)
                }
                Ok(Some(false)) => Step::Silent(self.popped()),
                Ok(None) | Err(_) => Step::Silent(self.failed()),
            },
            Stmt::Print(e) => match self.eval(e) {
                Ok(v) => Step::Syscall {
                    val: v,
                    next: self.popped(),
                },
                Err(_) => Step::Silent(self.failed()),
            },
            Stmt::Abort => Step::Silent(self.failed()),
            Stmt::Return(e) => match self.eval(e) {
                Ok(v) => {
                    let mut s = self.popped();
                    s.cont.clear();
                    s.status = Status::Returned(v);
                    Step::Silent(s)
                }
                Err(_) => Step::Silent(self.failed()),
            },
        }
    }

    /// Completes a [`Step::Read`] by supplying the value read.
    ///
    /// # Panics
    ///
    /// Panics if the current statement is not a load.
    pub fn resume_read(&self, v: Value) -> ProgState {
        match self.cont.last().map(|s| &**s) {
            Some(Stmt::Load(r, _, _)) => self.popped_set(*r, v),
            other => panic!("resume_read on non-load statement: {other:?}"),
        }
    }

    /// Completes a [`Step::Choose`] by supplying the chosen value.
    ///
    /// # Panics
    ///
    /// Panics if the current statement is not a `choose`/`freeze`, or if the
    /// supplied value is not admitted by the choice set.
    pub fn resume_choose(&self, v: Value) -> ProgState {
        match self.cont.last().map(|s| &**s) {
            Some(Stmt::Choose(r, vs)) => {
                match v.as_int() {
                    Some(i) => assert!(vs.contains(&i), "value {v} not in choose set"),
                    None => panic!("choose resolved to an undefined value"),
                }
                self.popped_set(*r, v)
            }
            Some(Stmt::Freeze(r, _)) => {
                assert!(!v.is_undef(), "freeze must resolve to a defined value");
                self.popped_set(*r, v)
            }
            other => panic!("resume_choose on non-choice statement: {other:?}"),
        }
    }

    /// Completes a [`Step::Rmw`] by supplying the value read; returns the
    /// value to write (if any) and the successor state.
    ///
    /// A CAS whose comparison involves `undef` invokes UB (comparison on
    /// `undef` is a branch on `undef`).
    ///
    /// # Panics
    ///
    /// Panics if the current statement is not an RMW.
    pub fn resume_rmw(&self, read: Value) -> RmwResolution {
        match self.cont.last().map(|s| &**s) {
            Some(Stmt::Cas {
                dst, expected, new, ..
            }) => {
                let (exp, newv) = match (self.eval(expected), self.eval(new)) {
                    (Ok(e), Ok(n)) => (e, n),
                    _ => {
                        return RmwResolution {
                            write: None,
                            next: self.failed(),
                        }
                    }
                };
                match (read, exp) {
                    (Value::Int(r), Value::Int(e)) => RmwResolution {
                        write: (r == e).then_some(newv),
                        next: self.popped_set(*dst, read),
                    },
                    // Comparison on undef = branch on undef = UB.
                    _ => RmwResolution {
                        write: None,
                        next: self.failed(),
                    },
                }
            }
            Some(Stmt::Fadd { dst, operand, .. }) => match self.eval(operand) {
                Ok(op) => RmwResolution {
                    write: Some(crate::value::arith(read, op, i64::wrapping_add)),
                    next: self.popped_set(*dst, read),
                },
                Err(_) => RmwResolution {
                    write: None,
                    next: self.failed(),
                },
            },
            other => panic!("resume_rmw on non-RMW statement: {other:?}"),
        }
    }

    /// Executable witness of Def. 6.1 (determinism): every state offers
    /// exactly one kind of transition, parameterized only by read/chosen
    /// values. Returns `true` unconditionally for states of this LTS; kept
    /// as a structural check used in tests.
    pub fn check_deterministic(&self) -> bool {
        // By construction `step` is a function of the state, so two
        // transitions from the same state can only be two instantiations of
        // the same Read/Choose/Rmw step with different values — exactly the
        // cases (ii)/(iii) of Def. 6.1.
        true
    }
}

impl fmt::Display for ProgState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.status {
            Status::Failed => write!(f, "⊥"),
            Status::Returned(v) => write!(f, "return({v})"),
            Status::Running => {
                write!(f, "⟨{} stmts, regs={}⟩", self.cont.len(), self.regs)
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn run_silent(mut st: ProgState) -> ProgState {
        loop {
            match st.step() {
                Step::Silent(next) => st = next,
                _ => return st,
            }
        }
    }

    #[test]
    fn straight_line_execution() {
        let prog = Program::new(Stmt::block([
            Stmt::Assign(Reg::new("la"), Expr::int(1)),
            Stmt::Assign(
                Reg::new("lb"),
                Expr::bin(crate::expr::BinOp::Add, Expr::reg("la"), Expr::int(2)),
            ),
            Stmt::Return(Expr::reg("lb")),
        ]));
        let st = run_silent(ProgState::new(&prog));
        match st.step() {
            Step::Terminated(v) => assert_eq!(v, Value::Int(3)),
            other => panic!("expected termination, got {other:?}"),
        }
    }

    #[test]
    fn implicit_return_zero() {
        let st = run_silent(ProgState::from_stmt(Stmt::Skip));
        match st.step() {
            Step::Terminated(v) => assert_eq!(v, Value::ZERO),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_and_resume() {
        let x = Loc::new("lx");
        let st = run_silent(ProgState::from_stmt(Stmt::block([
            Stmt::Load(Reg::new("lr"), x, ReadMode::Acq),
            Stmt::Return(Expr::reg("lr")),
        ])));
        match st.step() {
            Step::Read { loc, mode } => {
                assert_eq!(loc, x);
                assert_eq!(mode, ReadMode::Acq);
            }
            other => panic!("unexpected {other:?}"),
        }
        let st = run_silent(st.resume_read(Value::Int(7)));
        match st.step() {
            Step::Terminated(v) => assert_eq!(v, Value::Int(7)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn store_carries_value() {
        let x = Loc::new("lsx");
        let st = run_silent(ProgState::from_stmt(Stmt::Store(
            x,
            WriteMode::Rel,
            Expr::int(9),
        )));
        match st.step() {
            Step::Write {
                loc,
                mode,
                val,
                next,
            } => {
                assert_eq!(loc, x);
                assert_eq!(mode, WriteMode::Rel);
                assert_eq!(val, Value::Int(9));
                let done = run_silent(next);
                assert!(matches!(done.step(), Step::Terminated(Value::Int(0))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_on_undef_is_ub() {
        let st = run_silent(ProgState::from_stmt(Stmt::block([
            Stmt::Assign(Reg::new("lu"), Expr::undef()),
            Stmt::If(
                Expr::eq(Expr::reg("lu"), Expr::int(1)),
                Box::new(Stmt::Skip),
                Box::new(Stmt::Skip),
            ),
        ])));
        assert!(matches!(st.step(), Step::Fail));
        assert!(st.is_failed());
    }

    #[test]
    fn freeze_defined_is_silent_freeze_undef_chooses() {
        let st = run_silent(ProgState::from_stmt(Stmt::block([
            Stmt::Freeze(Reg::new("lf"), Expr::int(5)),
            Stmt::Return(Expr::reg("lf")),
        ])));
        assert!(matches!(st.step(), Step::Terminated(Value::Int(5))));

        let st = run_silent(ProgState::from_stmt(Stmt::block([
            Stmt::Assign(Reg::new("lg"), Expr::undef()),
            Stmt::Freeze(Reg::new("lh"), Expr::reg("lg")),
            Stmt::Return(Expr::reg("lh")),
        ])));
        match st.step() {
            Step::Choose(ChoiceSet::AnyDefined) => {}
            other => panic!("unexpected {other:?}"),
        }
        let st = run_silent(st.resume_choose(Value::Int(3)));
        assert!(matches!(st.step(), Step::Terminated(Value::Int(3))));
    }

    #[test]
    fn explicit_choose() {
        let st = run_silent(ProgState::from_stmt(Stmt::block([
            Stmt::Choose(Reg::new("lc"), vec![1, 2]),
            Stmt::Return(Expr::reg("lc")),
        ])));
        match st.step() {
            Step::Choose(ChoiceSet::Explicit(vs)) => {
                assert_eq!(vs, vec![Value::Int(1), Value::Int(2)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let st = run_silent(st.resume_choose(Value::Int(2)));
        assert!(matches!(st.step(), Step::Terminated(Value::Int(2))));
    }

    #[test]
    #[should_panic(expected = "not in choose set")]
    fn choose_rejects_foreign_value() {
        let st = run_silent(ProgState::from_stmt(Stmt::Choose(Reg::new("lcx"), vec![1])));
        let _ = st.resume_choose(Value::Int(9));
    }

    #[test]
    fn while_loop_iterates() {
        // i := 3; acc := 0; while i > 0 { acc := acc + i; i := i - 1 }; return acc
        use crate::expr::BinOp;
        let prog = Stmt::block([
            Stmt::Assign(Reg::new("li"), Expr::int(3)),
            Stmt::Assign(Reg::new("lacc"), Expr::int(0)),
            Stmt::While(
                Expr::bin(BinOp::Gt, Expr::reg("li"), Expr::int(0)),
                Box::new(Stmt::block([
                    Stmt::Assign(
                        Reg::new("lacc"),
                        Expr::bin(BinOp::Add, Expr::reg("lacc"), Expr::reg("li")),
                    ),
                    Stmt::Assign(
                        Reg::new("li"),
                        Expr::bin(BinOp::Sub, Expr::reg("li"), Expr::int(1)),
                    ),
                ])),
            ),
            Stmt::Return(Expr::reg("lacc")),
        ]);
        let st = run_silent(ProgState::from_stmt(prog));
        assert!(matches!(st.step(), Step::Terminated(Value::Int(6))));
    }

    #[test]
    fn division_by_zero_fails() {
        let st = run_silent(ProgState::from_stmt(Stmt::Assign(
            Reg::new("ld"),
            Expr::bin(crate::expr::BinOp::Div, Expr::int(1), Expr::int(0)),
        )));
        assert!(st.is_failed());
    }

    #[test]
    fn cas_success_and_failure() {
        let x = Loc::new("lcas");
        let mk = || {
            run_silent(ProgState::from_stmt(Stmt::block([
                Stmt::Cas {
                    dst: Reg::new("lo"),
                    loc: x,
                    expected: Expr::int(0),
                    new: Expr::int(1),
                    mode: RmwMode::AcqRel,
                },
                Stmt::Return(Expr::reg("lo")),
            ])))
        };
        let st = mk();
        assert!(matches!(st.step(), Step::Rmw { .. }));
        // Success: read 0, writes 1.
        let res = st.resume_rmw(Value::Int(0));
        assert_eq!(res.write, Some(Value::Int(1)));
        let done = run_silent(res.next);
        assert!(matches!(done.step(), Step::Terminated(Value::Int(0))));
        // Failure: read 5, no write.
        let res = mk().resume_rmw(Value::Int(5));
        assert_eq!(res.write, None);
        let done = run_silent(res.next);
        assert!(matches!(done.step(), Step::Terminated(Value::Int(5))));
        // Undef comparison: UB.
        let res = mk().resume_rmw(Value::Undef);
        assert!(res.next.is_failed());
    }

    #[test]
    fn fadd_adds_and_propagates_undef() {
        let x = Loc::new("lfadd");
        let st = run_silent(ProgState::from_stmt(Stmt::Fadd {
            dst: Reg::new("lfd"),
            loc: x,
            operand: Expr::int(2),
            mode: RmwMode::Rlx,
        }));
        let res = st.resume_rmw(Value::Int(40));
        assert_eq!(res.write, Some(Value::Int(42)));
        let res = st.resume_rmw(Value::Undef);
        assert_eq!(res.write, Some(Value::Undef));
    }

    #[test]
    fn syscall_and_fence() {
        let st = run_silent(ProgState::from_stmt(Stmt::block([
            Stmt::Print(Expr::int(4)),
            Stmt::Fence(FenceMode::Sc),
        ])));
        match st.step() {
            Step::Syscall { val, next } => {
                assert_eq!(val, Value::Int(4));
                let st = run_silent(next);
                match st.step() {
                    Step::Fence { mode, .. } => assert_eq!(mode, FenceMode::Sc),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn abort_reaches_bottom() {
        let st = run_silent(ProgState::from_stmt(Stmt::Abort));
        assert!(st.is_failed());
        assert_eq!(st, ProgState::bottom());
    }

    #[test]
    fn states_are_hashable_and_deduplicate() {
        use std::collections::HashSet;
        let p = Program::new(Stmt::block([
            Stmt::Assign(Reg::new("lha"), Expr::int(1)),
            Stmt::Return(Expr::reg("lha")),
        ]));
        let s1 = ProgState::new(&p);
        let s2 = ProgState::new(&p);
        let mut set = HashSet::new();
        set.insert(s1);
        assert!(set.contains(&s2));
    }

    #[test]
    fn determinism_witness() {
        let p = Program::new(Stmt::Skip);
        assert!(ProgState::new(&p).check_deterministic());
    }
}
