//! A hand-written lexer and recursive-descent parser for the `WHILE`
//! concrete syntax.
//!
//! The syntax is designed to be unambiguous about the register/location
//! distinction: shared-memory accesses always go through the
//! `load[mode](x)` / `store[mode](x, e)` / `cas[mode](x, e, e)` /
//! `fadd[mode](x, e)` forms, everything else is register-level.
//!
//! ```
//! use seqwm_lang::parser::parse_program;
//! let prog = parse_program(
//!     "store[na](x, 42);
//!      l := load[acq](y);
//!      if (l == 0) { a := load[na](x); } else { skip; }
//!      store[rel](y, 1);
//!      b := load[na](x);
//!      return b;",
//! )?;
//! assert_eq!(prog.locs().len(), 2);
//! # Ok::<(), seqwm_lang::parser::ParseError>(())
//! ```
//!
//! The pretty-printer ([`crate::stmt::Stmt`]'s `Display`) emits exactly this
//! syntax, and round-tripping is tested.

use std::fmt;

use crate::event::{FenceMode, ReadMode, RmwMode, WriteMode};
use crate::expr::{BinOp, Expr, UnOp};
use crate::ident::{Loc, Reg};
use crate::stmt::{Program, Stmt};
use crate::value::Value;

/// A parse error with 1-based line/column information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Assign, // :=
    Semi,
    Comma,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    EqEq,
    NotEq,
    Le,
    Ge,
    Lt,
    Gt,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // Line comments: `//`
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Spanned {
                    tok: Tok::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let tok = match c {
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'{' => {
                    self.bump();
                    Tok::LBrace
                }
                b'}' => {
                    self.bump();
                    Tok::RBrace
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b'+' => {
                    self.bump();
                    Tok::Plus
                }
                b'-' => {
                    self.bump();
                    Tok::Minus
                }
                b'*' => {
                    self.bump();
                    Tok::Star
                }
                b'/' => {
                    self.bump();
                    Tok::Slash
                }
                b'%' => {
                    self.bump();
                    Tok::Percent
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Assign
                    } else {
                        return Err(self.err("expected `=` after `:`"));
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::EqEq
                    } else {
                        return Err(self.err("expected `==` (use `:=` for assignment)"));
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::NotEq
                    } else {
                        Tok::Bang
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        Tok::AndAnd
                    } else {
                        return Err(self.err("expected `&&`"));
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        Tok::OrOr
                    } else {
                        return Err(self.err("expected `||`"));
                    }
                }
                b'0'..=b'9' => {
                    let mut n: i64 = 0;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            n = n
                                .checked_mul(10)
                                .and_then(|n| n.checked_add(i64::from(d - b'0')))
                                .ok_or_else(|| self.err("integer literal overflows i64"))?;
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Int(n)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let start = self.pos;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    // The scanned bytes are ASCII by construction, so
                    // a lossy conversion is exact (and infallible).
                    let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    Tok::Ident(s)
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Spanned { tok, line, col });
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let sp = &self.toks[self.pos];
        ParseError {
            message: message.into(),
            line: sp.line,
            col: sp.col,
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected identifier, found {other}"))),
        }
    }

    fn read_mode(&mut self) -> Result<ReadMode, ParseError> {
        self.expect(&Tok::LBracket)?;
        let name = self.eat_ident()?;
        let mode = match name.as_str() {
            "na" => ReadMode::Na,
            "rlx" => ReadMode::Rlx,
            "acq" => ReadMode::Acq,
            other => return Err(self.err_here(format!("unknown read mode `{other}`"))),
        };
        self.expect(&Tok::RBracket)?;
        Ok(mode)
    }

    fn write_mode(&mut self) -> Result<WriteMode, ParseError> {
        self.expect(&Tok::LBracket)?;
        let name = self.eat_ident()?;
        let mode = match name.as_str() {
            "na" => WriteMode::Na,
            "rlx" => WriteMode::Rlx,
            "rel" => WriteMode::Rel,
            other => return Err(self.err_here(format!("unknown write mode `{other}`"))),
        };
        self.expect(&Tok::RBracket)?;
        Ok(mode)
    }

    fn rmw_mode(&mut self) -> Result<RmwMode, ParseError> {
        self.expect(&Tok::LBracket)?;
        let name = self.eat_ident()?;
        let mode = match name.as_str() {
            "rlx" => RmwMode::Rlx,
            "acq" => RmwMode::Acq,
            "rel" => RmwMode::Rel,
            "acqrel" => RmwMode::AcqRel,
            other => return Err(self.err_here(format!("unknown RMW mode `{other}`"))),
        };
        self.expect(&Tok::RBracket)?;
        Ok(mode)
    }

    fn fence_mode(&mut self) -> Result<FenceMode, ParseError> {
        self.expect(&Tok::LBracket)?;
        let name = self.eat_ident()?;
        let mode = match name.as_str() {
            "acq" => FenceMode::Acq,
            "rel" => FenceMode::Rel,
            "acqrel" => FenceMode::AcqRel,
            "sc" => FenceMode::Sc,
            other => return Err(self.err_here(format!("unknown fence mode `{other}`"))),
        };
        self.expect(&Tok::RBracket)?;
        Ok(mode)
    }

    fn block(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Stmt::block(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Ident(kw) => match kw.as_str() {
                "skip" => {
                    self.bump();
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Skip)
                }
                "abort" => {
                    self.bump();
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Abort)
                }
                "return" => {
                    self.bump();
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Return(e))
                }
                "print" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let e = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Print(e))
                }
                "fence" => {
                    self.bump();
                    let m = self.fence_mode()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Fence(m))
                }
                "store" => {
                    self.bump();
                    let m = self.write_mode()?;
                    self.expect(&Tok::LParen)?;
                    let loc = Loc::new(&self.eat_ident()?);
                    self.expect(&Tok::Comma)?;
                    let e = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Store(loc, m, e))
                }
                "if" => {
                    self.bump();
                    let cond = self.expr()?;
                    let then = self.block()?;
                    let els = if matches!(self.peek(), Tok::Ident(s) if s == "else") {
                        self.bump();
                        self.block()?
                    } else {
                        Stmt::Skip
                    };
                    Ok(Stmt::If(cond, Box::new(then), Box::new(els)))
                }
                "while" => {
                    self.bump();
                    let cond = self.expr()?;
                    let body = self.block()?;
                    Ok(Stmt::While(cond, Box::new(body)))
                }
                _ => {
                    // Register assignment forms: `r := rhs ;`
                    let reg = Reg::new(&self.eat_ident()?);
                    self.expect(&Tok::Assign)?;
                    let s = self.assign_rhs(reg)?;
                    self.expect(&Tok::Semi)?;
                    Ok(s)
                }
            },
            other => Err(self.err_here(format!("expected a statement, found {other}"))),
        }
    }

    fn assign_rhs(&mut self, reg: Reg) -> Result<Stmt, ParseError> {
        if let Tok::Ident(kw) = self.peek().clone() {
            match kw.as_str() {
                "load" => {
                    self.bump();
                    let m = self.read_mode()?;
                    self.expect(&Tok::LParen)?;
                    let loc = Loc::new(&self.eat_ident()?);
                    self.expect(&Tok::RParen)?;
                    return Ok(Stmt::Load(reg, loc, m));
                }
                "cas" => {
                    self.bump();
                    let m = self.rmw_mode()?;
                    self.expect(&Tok::LParen)?;
                    let loc = Loc::new(&self.eat_ident()?);
                    self.expect(&Tok::Comma)?;
                    let expected = self.expr()?;
                    self.expect(&Tok::Comma)?;
                    let new = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Stmt::Cas {
                        dst: reg,
                        loc,
                        expected,
                        new,
                        mode: m,
                    });
                }
                "fadd" => {
                    self.bump();
                    let m = self.rmw_mode()?;
                    self.expect(&Tok::LParen)?;
                    let loc = Loc::new(&self.eat_ident()?);
                    self.expect(&Tok::Comma)?;
                    let operand = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Stmt::Fadd {
                        dst: reg,
                        loc,
                        operand,
                        mode: m,
                    });
                }
                "choose" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let mut vals = Vec::new();
                    loop {
                        let neg = if self.peek() == &Tok::Minus {
                            self.bump();
                            true
                        } else {
                            false
                        };
                        match self.bump() {
                            Tok::Int(n) => vals.push(if neg { -n } else { n }),
                            other => {
                                return Err(self.err_here(format!(
                                    "expected integer in choose, found {other}"
                                )))
                            }
                        }
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    return Ok(Stmt::Choose(reg, vals));
                }
                "freeze" => {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let e = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Stmt::Freeze(reg, e));
                }
                _ => {}
            }
        }
        Ok(Stmt::Assign(reg, self.expr()?))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            e = Expr::bin(BinOp::Or, e, self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            e = Expr::bin(BinOp::And, e, self.cmp_expr()?);
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(e),
        };
        self.bump();
        Ok(Expr::bin(op, e, self.add_expr()?))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(e),
            };
            self.bump();
            e = Expr::bin(op, e, self.mul_expr()?);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(e),
            };
            self.bump();
            e = Expr::bin(op, e, self.unary_expr()?);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::un(UnOp::Neg, self.unary_expr()?))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::un(UnOp::Not, self.unary_expr()?))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::int(n))
            }
            Tok::Ident(s) if s == "undef" => {
                self.bump();
                Ok(Expr::Const(Value::Undef))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Expr::reg(&s))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err_here(format!("expected an expression, found {other}"))),
        }
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// Returns a [`ParseError`] (with line/column) on malformed input.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while p.peek() != &Tok::Eof {
        stmts.push(p.stmt()?);
    }
    Ok(Program::new(Stmt::block(stmts)))
}

/// Parses a single statement (or `;`-separated sequence).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_stmt(src: &str) -> Result<Stmt, ParseError> {
    parse_program(src).map(|p| p.body)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_style_program() {
        let p = parse_program(
            "store[na](x, 42);
             l := load[acq](y);
             if (l == 0) { a := load[na](x); }
             store[rel](y, 1);
             b := load[na](x);
             return b;",
        )
        .unwrap();
        assert!(p.locs().contains(&Loc::new("x")));
        assert!(p.locs().contains(&Loc::new("y")));
    }

    #[test]
    fn round_trip_pretty_print() {
        let src = "store[na](x, 1);
             a := load[rlx](y);
             c := choose(1, 2, 3);
             f := freeze(a);
             d := cas[acqrel](z, 0, 1);
             e := fadd[rel](z, 2);
             fence[sc];
             while (a != 0) { a := (a - 1); }
             if (c > 1) { print(c); } else { abort; }
             return (a + c);";
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "pretty-printed program must re-parse identically");
    }

    #[test]
    fn comments_and_whitespace() {
        let p = parse_program(
            "// setup
             skip; // trailing
             return 0;",
        )
        .unwrap();
        assert_eq!(p.body, Stmt::seq(Stmt::Skip, Stmt::Return(Expr::int(0))));
    }

    #[test]
    fn operator_precedence() {
        let p = parse_stmt("r := 1 + 2 * 3;").unwrap();
        match p {
            Stmt::Assign(_, e) => {
                let v = e.eval(&|_| Value::ZERO).unwrap();
                assert_eq!(v, Value::Int(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = parse_stmt("r := (1 + 2) * 3;").unwrap();
        match p {
            Stmt::Assign(_, e) => {
                assert_eq!(e.eval(&|_| Value::ZERO).unwrap(), Value::Int(9));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undef_literal() {
        let p = parse_stmt("r := undef;").unwrap();
        assert_eq!(p, Stmt::Assign(Reg::new("r"), Expr::undef()));
    }

    #[test]
    fn negative_choose_values() {
        let p = parse_stmt("r := choose(-1, 2);").unwrap();
        assert_eq!(p, Stmt::Choose(Reg::new("r"), vec![-1, 2]));
    }

    #[test]
    fn all_modes_parse() {
        for m in ["na", "rlx", "acq"] {
            parse_stmt(&format!("r := load[{m}](x);")).unwrap();
        }
        for m in ["na", "rlx", "rel"] {
            parse_stmt(&format!("store[{m}](x, 0);")).unwrap();
        }
        for m in ["rlx", "acq", "rel", "acqrel"] {
            parse_stmt(&format!("r := cas[{m}](x, 0, 1);")).unwrap();
            parse_stmt(&format!("r := fadd[{m}](x, 1);")).unwrap();
        }
        for m in ["acq", "rel", "acqrel", "sc"] {
            parse_stmt(&format!("fence[{m}];")).unwrap();
        }
    }

    #[test]
    fn error_positions() {
        let err = parse_program("store[na](x, 1)\nstore[na](y, 2);").unwrap_err();
        assert_eq!(err.line, 2, "missing semicolon detected on line 2: {err}");
        let err = parse_program("r := load[foo](x);").unwrap_err();
        assert!(err.message.contains("unknown read mode"));
        let err = parse_program("r = 1;").unwrap_err();
        assert!(err.message.contains(":="));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("???").is_err());
        assert!(parse_program("if { }").is_err());
        assert!(parse_program("r := choose();").is_err());
        assert!(parse_program("r := load[na];").is_err());
        assert!(parse_program("99999999999999999999 := 1;").is_err());
    }

    #[test]
    fn else_branch_defaults_to_skip() {
        let p = parse_stmt("if 1 { skip; }").unwrap();
        match p {
            Stmt::If(_, _, els) => assert_eq!(*els, Stmt::Skip),
            other => panic!("unexpected {other:?}"),
        }
    }
}
