//! Values, including the distinguished *undefined value* `undef`.
//!
//! The paper assumes a parametric set `Val` containing a distinguished
//! element `undef` used as the result of racy non-atomic reads (§2,
//! "Values"). The partial order `⊑` is defined by
//! `v ⊑ v' ⇔ v = v' ∨ v' = undef`, i.e. `undef` is the *top* element:
//! a target behaviour may commit to any defined value where the source was
//! only able to produce `undef`.
//!
//! Following LLVM (Remark 1), *branching* on `undef` invokes undefined
//! behaviour, while `freeze` non-deterministically resolves `undef` to a
//! defined value (surfaced as a `choose(v)` transition in the LTS).

use std::fmt;

/// A runtime value: a 64-bit integer or the undefined value `undef`.
///
/// ```
/// use seqwm_lang::Value;
/// assert!(Value::Int(3).refines(Value::Undef));   // 3 ⊑ undef
/// assert!(!Value::Undef.refines(Value::Int(3)));  // undef ⋢ 3
/// assert!(Value::Int(3).refines(Value::Int(3)));  // reflexive
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// A defined integer value.
    Int(i64),
    /// The undefined value, produced by racy non-atomic reads.
    Undef,
}

impl Value {
    /// The unit/default value `0`, used to initialize memory and registers.
    pub const ZERO: Value = Value::Int(0);

    /// Returns the integer if this value is defined.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(n),
            Value::Undef => None,
        }
    }

    /// Is this the undefined value?
    pub fn is_undef(self) -> bool {
        matches!(self, Value::Undef)
    }

    /// The refinement order `⊑` on values (Def. 2.3 of the paper):
    /// `v ⊑ v' ⇔ v = v' ∨ v' = undef`.
    ///
    /// Intuitively `self` (the target's value) is allowed where the source
    /// produced `other`.
    pub fn refines(self, other: Value) -> bool {
        self == other || other == Value::Undef
    }

    /// Truthiness for branching. Returns `None` for `undef` — per Remark 1,
    /// branching on `undef` invokes UB, which the LTS maps to `⊥`.
    pub fn truthiness(self) -> Option<bool> {
        self.as_int().map(|n| n != 0)
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::ZERO
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Int(i64::from(b))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Undef => write!(f, "undef"),
        }
    }
}

/// Errors raised by value-level operations that invoke undefined behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValueError {
    /// Division or remainder by zero.
    DivByZero,
    /// Division or remainder by `undef` (which *may be* zero, hence UB,
    /// mirroring LLVM).
    DivByUndef,
    /// A branch condition evaluated to `undef` (Remark 1).
    BranchOnUndef,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::DivByZero => write!(f, "division by zero"),
            ValueError::DivByUndef => write!(f, "division by undef"),
            ValueError::BranchOnUndef => write!(f, "branch on undef"),
        }
    }
}

impl std::error::Error for ValueError {}

/// Binary arithmetic with `undef` propagation (LLVM-style poison-free
/// `undef` semantics): any operation on `undef` yields `undef`, except
/// division/remainder *by* `undef` or by zero, which are UB.
pub fn arith<F>(a: Value, b: Value, f: F) -> Value
where
    F: FnOnce(i64, i64) -> i64,
{
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(f(x, y)),
        _ => Value::Undef,
    }
}

/// Division, with UB on zero or `undef` divisor.
pub fn div(a: Value, b: Value) -> Result<Value, ValueError> {
    match b {
        Value::Undef => Err(ValueError::DivByUndef),
        Value::Int(0) => Err(ValueError::DivByZero),
        Value::Int(d) => Ok(match a {
            Value::Int(n) => Value::Int(n.wrapping_div(d)),
            Value::Undef => Value::Undef,
        }),
    }
}

/// Remainder, with UB on zero or `undef` divisor.
pub fn rem(a: Value, b: Value) -> Result<Value, ValueError> {
    match b {
        Value::Undef => Err(ValueError::DivByUndef),
        Value::Int(0) => Err(ValueError::DivByZero),
        Value::Int(d) => Ok(match a {
            Value::Int(n) => Value::Int(n.wrapping_rem(d)),
            Value::Undef => Value::Undef,
        }),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn refinement_is_a_partial_order() {
        let vals = [Value::Int(0), Value::Int(1), Value::Int(-7), Value::Undef];
        // Reflexivity.
        for v in vals {
            assert!(v.refines(v));
        }
        // Antisymmetry.
        for a in vals {
            for b in vals {
                if a.refines(b) && b.refines(a) {
                    assert_eq!(a, b);
                }
            }
        }
        // Transitivity.
        for a in vals {
            for b in vals {
                for c in vals {
                    if a.refines(b) && b.refines(c) {
                        assert!(a.refines(c));
                    }
                }
            }
        }
    }

    #[test]
    fn undef_is_top() {
        assert!(Value::Int(42).refines(Value::Undef));
        assert!(Value::Undef.refines(Value::Undef));
        assert!(!Value::Undef.refines(Value::Int(42)));
    }

    #[test]
    fn arith_propagates_undef() {
        assert_eq!(
            arith(Value::Undef, Value::Int(1), |a, b| a + b),
            Value::Undef
        );
        assert_eq!(
            arith(Value::Int(1), Value::Undef, |a, b| a + b),
            Value::Undef
        );
        assert_eq!(
            arith(Value::Int(2), Value::Int(3), |a, b| a * b),
            Value::Int(6)
        );
    }

    #[test]
    fn division_ub_cases() {
        assert_eq!(
            div(Value::Int(1), Value::Int(0)),
            Err(ValueError::DivByZero)
        );
        assert_eq!(
            div(Value::Int(1), Value::Undef),
            Err(ValueError::DivByUndef)
        );
        assert_eq!(div(Value::Undef, Value::Int(2)), Ok(Value::Undef));
        assert_eq!(div(Value::Int(7), Value::Int(2)), Ok(Value::Int(3)));
        assert_eq!(rem(Value::Int(7), Value::Int(2)), Ok(Value::Int(1)));
        assert_eq!(
            rem(Value::Int(7), Value::Int(0)),
            Err(ValueError::DivByZero)
        );
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Int(0).truthiness(), Some(false));
        assert_eq!(Value::Int(5).truthiness(), Some(true));
        assert_eq!(Value::Undef.truthiness(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Undef.to_string(), "undef");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(9), Value::Int(9));
        assert_eq!(Value::from(true), Value::Int(1));
        assert_eq!(Value::from(false), Value::Int(0));
        assert_eq!(Value::default(), Value::ZERO);
    }
}
