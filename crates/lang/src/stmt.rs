//! Statements and whole programs of the `WHILE` language (§4 of the paper).
//!
//! The statement forms cover everything the paper's examples use: register
//! assignments, loads/stores with access modes, `choose`/`freeze` for
//! internal non-determinism, conditionals, loops, `print` system calls,
//! UB-invoking `abort`, and `return`. RMWs and fences follow the Coq
//! development's extension of the paper fragment.

use std::collections::BTreeSet;
use std::fmt;

use crate::event::{FenceMode, ReadMode, RmwMode, WriteMode};
use crate::expr::Expr;
use crate::ident::{Loc, Reg};

/// A statement.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// `skip` — no-op.
    Skip,
    /// `r := e` — register assignment (silent).
    Assign(Reg, Expr),
    /// `r := load[o](x)` — memory load with mode `o`.
    Load(Reg, Loc, ReadMode),
    /// `store[o](x, e)` — memory store with mode `o`.
    Store(Loc, WriteMode, Expr),
    /// `r := choose(v1, .., vn)` — non-deterministic finite choice,
    /// surfaced as a `choose(v)` transition.
    Choose(Reg, Vec<i64>),
    /// `r := freeze(e)` — LLVM-style freeze: if `e` is defined this is a
    /// silent assignment, if `e` is `undef` it resolves to an arbitrary
    /// defined value via a `choose(v)` transition (Remark 1).
    Freeze(Reg, Expr),
    /// `r := cas[o](x, e_old, e_new)` — compare-and-swap; `r` receives the
    /// read value. The swap happens iff the read value equals `e_old`.
    Cas {
        /// Destination register for the value read.
        dst: Reg,
        /// Location operated on.
        loc: Loc,
        /// Expected (compare) value.
        expected: Expr,
        /// Replacement value if the comparison succeeds.
        new: Expr,
        /// Access mode.
        mode: RmwMode,
    },
    /// `r := fadd[o](x, e)` — atomic fetch-and-add; `r` receives the value
    /// read, `x` receives `read + e`.
    Fadd {
        /// Destination register for the value read.
        dst: Reg,
        /// Location operated on.
        loc: Loc,
        /// Addend.
        operand: Expr,
        /// Access mode.
        mode: RmwMode,
    },
    /// `fence[o]` — a memory fence.
    Fence(FenceMode),
    /// Sequential composition. Programs are right-nested sequences.
    Seq(Box<Stmt>, Box<Stmt>),
    /// `if e { s1 } else { s2 }` — branching on `undef` invokes UB.
    If(Expr, Box<Stmt>, Box<Stmt>),
    /// `while e { s }` — branching on `undef` invokes UB.
    While(Expr, Box<Stmt>),
    /// `print(e)` — an externally observable system call.
    Print(Expr),
    /// `abort` — invokes UB directly (the error state `⊥`).
    Abort,
    /// `return e` — normal termination with final value `e`.
    Return(Expr),
}

impl Stmt {
    /// Sequences two statements, flattening trivial `skip`s.
    pub fn seq(a: Stmt, b: Stmt) -> Stmt {
        match (a, b) {
            (Stmt::Skip, b) => b,
            (a, Stmt::Skip) => a,
            (a, b) => Stmt::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Sequences an iterator of statements. Nested `Seq` spines in the
    /// items are flattened first, so the result is always right-nested —
    /// structurally identical to what the parser produces when it
    /// re-reads the block's own rendering.
    pub fn block<I: IntoIterator<Item = Stmt>>(stmts: I) -> Stmt {
        fn flatten(s: Stmt, out: &mut Vec<Stmt>) {
            match s {
                Stmt::Seq(a, b) => {
                    flatten(*a, out);
                    flatten(*b, out);
                }
                other => out.push(other),
            }
        }
        let mut items = Vec::new();
        for s in stmts {
            flatten(s, &mut items);
        }
        let Some(mut acc) = items.pop() else {
            return Stmt::Skip;
        };
        while let Some(s) = items.pop() {
            acc = Stmt::seq(s, acc);
        }
        acc
    }

    /// All shared locations syntactically occurring in this statement.
    pub fn locs(&self) -> BTreeSet<Loc> {
        let mut out = BTreeSet::new();
        self.visit(&mut |s| {
            match s {
                Stmt::Load(_, x, _) | Stmt::Store(x, _, _) => {
                    out.insert(*x);
                }
                Stmt::Cas { loc, .. } | Stmt::Fadd { loc, .. } => {
                    out.insert(*loc);
                }
                _ => {}
            };
        });
        out
    }

    /// Shared locations accessed *non-atomically* somewhere in this statement.
    pub fn na_locs(&self) -> BTreeSet<Loc> {
        let mut out = BTreeSet::new();
        self.visit(&mut |s| match s {
            Stmt::Load(_, x, ReadMode::Na) | Stmt::Store(x, WriteMode::Na, _) => {
                out.insert(*x);
            }
            _ => {}
        });
        out
    }

    /// Shared locations accessed *atomically* somewhere in this statement.
    pub fn atomic_locs(&self) -> BTreeSet<Loc> {
        let mut out = BTreeSet::new();
        self.visit(&mut |s| match s {
            Stmt::Load(_, x, m) if m.is_atomic() => {
                out.insert(*x);
            }
            Stmt::Store(x, m, _) if m.is_atomic() => {
                out.insert(*x);
            }
            Stmt::Cas { loc, .. } | Stmt::Fadd { loc, .. } => {
                out.insert(*loc);
            }
            _ => {}
        });
        out
    }

    /// All registers syntactically occurring in this statement.
    pub fn regs(&self) -> BTreeSet<Reg> {
        let mut out = BTreeSet::new();
        self.visit(&mut |s| {
            match s {
                Stmt::Assign(r, e) | Stmt::Freeze(r, e) => {
                    out.insert(*r);
                    out.extend(e.regs());
                }
                Stmt::Load(r, _, _) => {
                    out.insert(*r);
                }
                Stmt::Store(_, _, e) | Stmt::Print(e) | Stmt::Return(e) => out.extend(e.regs()),
                Stmt::Choose(r, _) => {
                    out.insert(*r);
                }
                Stmt::Cas {
                    dst, expected, new, ..
                } => {
                    out.insert(*dst);
                    out.extend(expected.regs());
                    out.extend(new.regs());
                }
                Stmt::Fadd { dst, operand, .. } => {
                    out.insert(*dst);
                    out.extend(operand.regs());
                }
                Stmt::If(e, _, _) | Stmt::While(e, _) => out.extend(e.regs()),
                Stmt::Skip | Stmt::Fence(_) | Stmt::Seq(_, _) | Stmt::Abort => {}
            };
        });
        out
    }

    /// All integer constants syntactically occurring (used by checkers to
    /// seed finite value domains).
    pub fn constants(&self) -> BTreeSet<i64> {
        let mut out = BTreeSet::new();
        fn expr_consts(e: &Expr, out: &mut BTreeSet<i64>) {
            match e {
                Expr::Const(v) => {
                    if let Some(n) = v.as_int() {
                        out.insert(n);
                    }
                }
                Expr::Reg(_) => {}
                Expr::Un(_, a) => expr_consts(a, out),
                Expr::Bin(_, a, b) => {
                    expr_consts(a, out);
                    expr_consts(b, out);
                }
            }
        }
        self.visit(&mut |s| match s {
            Stmt::Assign(_, e)
            | Stmt::Freeze(_, e)
            | Stmt::Store(_, _, e)
            | Stmt::Print(e)
            | Stmt::Return(e)
            | Stmt::If(e, _, _)
            | Stmt::While(e, _) => expr_consts(e, &mut out),
            Stmt::Choose(_, vs) => out.extend(vs.iter().copied()),
            Stmt::Cas { expected, new, .. } => {
                expr_consts(expected, &mut out);
                expr_consts(new, &mut out);
            }
            Stmt::Fadd { operand, .. } => expr_consts(operand, &mut out),
            _ => {}
        });
        out
    }

    /// Number of executable statement nodes, excluding `skip` and the
    /// `Seq` sequencing skeleton (an `if`/`while` counts as one node
    /// plus its nested statements). This is the size measure reported
    /// by the fuzzer's shrinker.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0usize;
        self.visit(&mut |s| {
            if !matches!(s, Stmt::Seq(_, _) | Stmt::Skip) {
                n += 1;
            }
        });
        n
    }

    /// The canonical right-nested form of this statement — structurally
    /// identical to what the parser produces when it re-reads the
    /// statement's own rendering. Optimizer passes that splice a block
    /// into the middle of an existing `Seq` spine (hoisting a preheader,
    /// inserting a write-back before a `return`) use this to restore the
    /// invariant, so canonical-text fingerprints and structural equality
    /// agree across a parse–print–parse round trip.
    pub fn normalized(&self) -> Stmt {
        match self {
            Stmt::Seq(a, b) => Stmt::block([a.normalized(), b.normalized()]),
            Stmt::If(c, a, b) => Stmt::If(
                c.clone(),
                Box::new(a.normalized()),
                Box::new(b.normalized()),
            ),
            Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(b.normalized())),
            leaf => leaf.clone(),
        }
    }

    /// Does this statement (recursively) contain a loop?
    pub fn has_loop(&self) -> bool {
        let mut found = false;
        self.visit(&mut |s| {
            if matches!(s, Stmt::While(_, _)) {
                found = true;
            }
        });
        found
    }

    /// Visits every statement node (pre-order).
    pub fn visit<F: FnMut(&Stmt)>(&self, f: &mut F) {
        f(self);
        match self {
            Stmt::Seq(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Stmt::If(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Stmt::While(_, s) => s.visit(f),
            _ => {}
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "    ".repeat(indent);
        match self {
            Stmt::Skip => writeln!(f, "{pad}skip;"),
            Stmt::Assign(r, e) => writeln!(f, "{pad}{r} := {e};"),
            Stmt::Load(r, x, m) => writeln!(f, "{pad}{r} := load[{m}]({x});"),
            Stmt::Store(x, m, e) => writeln!(f, "{pad}store[{m}]({x}, {e});"),
            Stmt::Choose(r, vs) => {
                let list = vs
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                writeln!(f, "{pad}{r} := choose({list});")
            }
            Stmt::Freeze(r, e) => writeln!(f, "{pad}{r} := freeze({e});"),
            Stmt::Cas {
                dst,
                loc,
                expected,
                new,
                mode,
            } => writeln!(f, "{pad}{dst} := cas[{mode}]({loc}, {expected}, {new});"),
            Stmt::Fadd {
                dst,
                loc,
                operand,
                mode,
            } => writeln!(f, "{pad}{dst} := fadd[{mode}]({loc}, {operand});"),
            Stmt::Fence(m) => writeln!(f, "{pad}fence[{m}];"),
            Stmt::Seq(a, b) => {
                a.fmt_indented(f, indent)?;
                b.fmt_indented(f, indent)
            }
            Stmt::If(e, a, b) => {
                writeln!(f, "{pad}if {e} {{")?;
                a.fmt_indented(f, indent + 1)?;
                if **b == Stmt::Skip {
                    writeln!(f, "{pad}}}")
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    b.fmt_indented(f, indent + 1)?;
                    writeln!(f, "{pad}}}")
                }
            }
            Stmt::While(e, s) => {
                writeln!(f, "{pad}while {e} {{")?;
                s.fmt_indented(f, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::Print(e) => writeln!(f, "{pad}print({e});"),
            Stmt::Abort => writeln!(f, "{pad}abort;"),
            Stmt::Return(e) => writeln!(f, "{pad}return {e};"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// A whole (single-thread) program: a statement, implicitly followed by
/// `return 0` if the statement falls through.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Program {
    /// The program body.
    pub body: Stmt,
}

impl Program {
    /// Wraps a statement as a program.
    pub fn new(body: Stmt) -> Self {
        Program { body }
    }

    /// All shared locations occurring in the program.
    pub fn locs(&self) -> BTreeSet<Loc> {
        self.body.locs()
    }

    /// Locations accessed non-atomically.
    pub fn na_locs(&self) -> BTreeSet<Loc> {
        self.body.na_locs()
    }

    /// Locations accessed atomically.
    pub fn atomic_locs(&self) -> BTreeSet<Loc> {
        self.body.atomic_locs()
    }

    /// All integer constants occurring in the program.
    pub fn constants(&self) -> BTreeSet<i64> {
        self.body.constants()
    }

    /// Number of executable statement nodes (see [`Stmt::stmt_count`]).
    pub fn stmt_count(&self) -> usize {
        self.body.stmt_count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)
    }
}

impl From<Stmt> for Program {
    fn from(body: Stmt) -> Self {
        Program::new(body)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Stmt {
        Stmt::block([
            Stmt::Store(Loc::new("sx"), WriteMode::Na, Expr::int(1)),
            Stmt::Load(Reg::new("sa"), Loc::new("sy"), ReadMode::Acq),
            Stmt::If(
                Expr::eq(Expr::reg("sa"), Expr::int(0)),
                Box::new(Stmt::Load(Reg::new("sb"), Loc::new("sx"), ReadMode::Na)),
                Box::new(Stmt::Skip),
            ),
            Stmt::Return(Expr::reg("sb")),
        ])
    }

    #[test]
    fn seq_flattens_skip() {
        assert_eq!(Stmt::seq(Stmt::Skip, Stmt::Abort), Stmt::Abort);
        assert_eq!(Stmt::seq(Stmt::Abort, Stmt::Skip), Stmt::Abort);
        assert_eq!(Stmt::block([]), Stmt::Skip);
    }

    #[test]
    fn footprints() {
        let s = sample();
        let locs = s.locs();
        assert!(locs.contains(&Loc::new("sx")));
        assert!(locs.contains(&Loc::new("sy")));
        assert_eq!(locs.len(), 2);
        assert_eq!(s.na_locs().len(), 1);
        assert!(s.na_locs().contains(&Loc::new("sx")));
        assert!(s.atomic_locs().contains(&Loc::new("sy")));
        let regs = s.regs();
        assert!(regs.contains(&Reg::new("sa")));
        assert!(regs.contains(&Reg::new("sb")));
    }

    #[test]
    fn constants_collection() {
        let s = sample();
        let cs = s.constants();
        assert!(cs.contains(&0));
        assert!(cs.contains(&1));
        let c = Stmt::Choose(Reg::new("sc"), vec![5, 9]);
        assert!(c.constants().contains(&5));
        assert!(c.constants().contains(&9));
    }

    #[test]
    fn stmt_count_ignores_skeleton() {
        assert_eq!(sample().stmt_count(), 5); // store, load, if, inner load, return
        assert_eq!(Stmt::Skip.stmt_count(), 0);
        assert_eq!(Stmt::block([]).stmt_count(), 0);
        let w = Stmt::While(Expr::int(1), Box::new(Stmt::Abort));
        assert_eq!(w.stmt_count(), 2);
    }

    #[test]
    fn has_loop_detection() {
        assert!(!sample().has_loop());
        let w = Stmt::While(Expr::int(1), Box::new(Stmt::Skip));
        assert!(w.has_loop());
        let nested = Stmt::If(Expr::int(1), Box::new(w), Box::new(Stmt::Skip));
        assert!(nested.has_loop());
    }

    #[test]
    fn display_produces_parseable_text() {
        // Round-trip checked in parser tests; here we just sanity check shape.
        let out = sample().to_string();
        assert!(out.contains("store[na](sx, 1);"));
        assert!(out.contains("sa := load[acq](sy);"));
        assert!(out.contains("if (sa == 0) {"));
        assert!(out.contains("return sb;"));
    }

    #[test]
    fn rmw_display() {
        let s = Stmt::Cas {
            dst: Reg::new("sd"),
            loc: Loc::new("sl"),
            expected: Expr::int(0),
            new: Expr::int(1),
            mode: RmwMode::AcqRel,
        };
        assert_eq!(s.to_string(), "sd := cas[acqrel](sl, 0, 1);\n");
        let s = Stmt::Fadd {
            dst: Reg::new("sd"),
            loc: Loc::new("sl"),
            operand: Expr::int(2),
            mode: RmwMode::Rlx,
        };
        assert_eq!(s.to_string(), "sd := fadd[rlx](sl, 2);\n");
    }

    #[test]
    fn program_wrappers() {
        let p = Program::new(sample());
        assert_eq!(p.locs(), p.body.locs());
        assert_eq!(p.constants(), p.body.constants());
        let _ = Value::ZERO; // silence unused import in some cfgs
    }
}
