#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # seqwm-lang
//!
//! The `WHILE` toy concurrent language of *Sequential Reasoning for Optimizing
//! Compilers under Weak Memory Concurrency* (Cho, Lee, Lee, Hur, Lahav;
//! PLDI 2022), together with its reading as a labeled transition system (LTS).
//!
//! The paper (§2, "Program representation") deliberately abstracts the
//! programming language as an LTS whose transitions are labelled with the
//! action performed:
//!
//! * silent transitions (conditionals, register assignments),
//! * `choose(v)` transitions resolving internal non-determinism,
//! * `R^o(x, v)` reads with mode `o ∈ {na, rlx, acq}`,
//! * `W^o(x, v)` writes with mode `o ∈ {na, rlx, rel}`,
//!
//! terminating either in `return(v)` or in the error state `⊥` (undefined
//! behaviour). This crate provides a concrete such language — abstract syntax
//! ([`stmt::Stmt`], [`expr::Expr`]), a hand-written parser ([`parser`]), a
//! pretty-printer, and the LTS itself ([`lts::ProgState`]) — used by every
//! other crate in the workspace:
//!
//! * `seqwm-seq` runs programs on the sequential permission machine **SEQ**,
//! * `seqwm-promising` runs them on the promising semantics **PS^na**,
//! * `seqwm-opt` analyses and transforms them.
//!
//! Values ([`value::Value`]) include the distinguished `undef` used for racy
//! non-atomic reads; branching on `undef` invokes UB (Remark 1 of the paper),
//! and `freeze` resolves `undef` to a non-deterministically chosen defined
//! value, surfaced as a `choose(v)` transition.
//!
//! ## Example
//!
//! ```
//! use seqwm_lang::parser::parse_program;
//! use seqwm_lang::lts::{ProgState, Step};
//!
//! let prog = parse_program("store[na](x, 1); r := load[na](x); return r;")?;
//! let mut st = ProgState::new(&prog);
//! // After administrative silent steps, the first visible action is a
//! // non-atomic write of 1 to x:
//! loop {
//!     match st.step() {
//!         Step::Silent(next) => st = next,
//!         Step::Write { val, .. } => break assert_eq!(val.as_int(), Some(1)),
//!         other => panic!("unexpected step {other:?}"),
//!     }
//! }
//! # Ok::<(), seqwm_lang::parser::ParseError>(())
//! ```

pub mod event;
pub mod expr;
pub mod ident;
pub mod lts;
pub mod parser;
pub mod stmt;
pub mod value;

pub use event::{Event, FenceMode, ReadMode, RmwMode, WriteMode};
pub use expr::Expr;
pub use ident::{Loc, Reg};
pub use lts::{ChoiceSet, ProgState, RegFile, RmwResolution, Step};
pub use stmt::{Program, Stmt};
pub use value::Value;
