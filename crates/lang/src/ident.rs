//! Interned identifiers for shared-memory locations ([`Loc`]) and
//! thread-local registers ([`Reg`]).
//!
//! Both are thin `u32` newtypes backed by a global string interner, so that
//! comparing, hashing, and copying identifiers is free while diagnostics can
//! still print the original names. The paper additionally partitions shared
//! locations into *atomic* and *non-atomic* ones (`Loc^at` / `Loc^na`, §2,
//! "Concurrency constructs"); we keep that classification per *access* (via
//! the access mode) and enforce the no-mixing discipline at the SEQ level,
//! where it matters (see `seqwm-seq`).

use std::fmt;
use std::sync::{Mutex, OnceLock, PoisonError};

/// A global, append-only string interner shared by [`Loc`] and [`Reg`].
#[derive(Default)]
struct Interner {
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(ix) = self.names.iter().position(|n| n == name) {
            ix as u32
        } else {
            self.names.push(name.to_owned());
            (self.names.len() - 1) as u32
        }
    }

    fn name(&self, ix: u32) -> String {
        self.names
            .get(ix as usize)
            .cloned()
            .unwrap_or_else(|| format!("<id{ix}>"))
    }
}

/// Locks an interner, recovering from poisoning: the interner's state
/// is always consistent (a panic cannot interleave its two pushes
/// observably), and the exploration engine's panic isolation must not
/// turn one caught panic into a permanently unusable name table.
fn relock(m: &'static Mutex<Interner>) -> std::sync::MutexGuard<'static, Interner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn loc_interner() -> &'static Mutex<Interner> {
    static I: OnceLock<Mutex<Interner>> = OnceLock::new();
    I.get_or_init(|| Mutex::new(Interner::default()))
}

fn reg_interner() -> &'static Mutex<Interner> {
    static I: OnceLock<Mutex<Interner>> = OnceLock::new();
    I.get_or_init(|| Mutex::new(Interner::default()))
}

/// A shared-memory location (`x`, `y`, … in the paper).
///
/// ```
/// use seqwm_lang::Loc;
/// let x = Loc::new("x");
/// assert_eq!(x, Loc::new("x"));
/// assert_ne!(x, Loc::new("y"));
/// assert_eq!(x.name(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(u32);

impl Loc {
    /// Interns `name` and returns the corresponding location.
    pub fn new(name: &str) -> Self {
        Loc(relock(loc_interner()).intern(name))
    }

    /// The raw interner index (stable for the lifetime of the process).
    pub fn index(self) -> u32 {
        self.0
    }

    /// The original source name of this location.
    pub fn name(self) -> String {
        relock(loc_interner()).name(self.0)
    }
}

impl fmt::Debug for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Loc({})", self.name())
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Loc {
    fn from(name: &str) -> Self {
        Loc::new(name)
    }
}

/// A thread-local register (`a`, `b`, `r`, … in the paper).
///
/// ```
/// use seqwm_lang::Reg;
/// let a = Reg::new("a");
/// assert_eq!(a, Reg::new("a"));
/// assert_eq!(a.name(), "a");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u32);

impl Reg {
    /// Interns `name` and returns the corresponding register.
    pub fn new(name: &str) -> Self {
        Reg(relock(reg_interner()).intern(name))
    }

    /// The raw interner index (stable for the lifetime of the process).
    pub fn index(self) -> u32 {
        self.0
    }

    /// The original source name of this register.
    pub fn name(self) -> String {
        relock(reg_interner()).name(self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({})", self.name())
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Reg {
    fn from(name: &str) -> Self {
        Reg::new(name)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn loc_interning_is_stable() {
        let a = Loc::new("alpha");
        let b = Loc::new("beta");
        let a2 = Loc::new("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), a2.index());
        assert_eq!(a.name(), "alpha");
        assert_eq!(b.name(), "beta");
    }

    #[test]
    fn reg_and_loc_namespaces_are_independent() {
        let l = Loc::new("zz_shared");
        let r = Reg::new("zz_shared");
        // Identical names in distinct namespaces must not interfere.
        assert_eq!(l.name(), r.name());
    }

    #[test]
    fn display_matches_name() {
        let l = Loc::new("flag");
        assert_eq!(format!("{l}"), "flag");
        let r = Reg::new("tmp");
        assert_eq!(format!("{r}"), "tmp");
    }

    #[test]
    fn debug_is_nonempty_and_tagged() {
        assert_eq!(format!("{:?}", Loc::new("d1")), "Loc(d1)");
        assert_eq!(format!("{:?}", Reg::new("d2")), "Reg(d2)");
    }

    #[test]
    fn from_str_conversions() {
        let l: Loc = "convloc".into();
        assert_eq!(l, Loc::new("convloc"));
        let r: Reg = "convreg".into();
        assert_eq!(r, Reg::new("convreg"));
    }
}
