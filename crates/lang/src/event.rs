//! Access modes and program-level transition labels (events).
//!
//! The paper's LTS transitions are labelled with
//! `choose(v)`, `R^{o_R}(x, v)` for `o_R ∈ {na, rlx, acq}`, and
//! `W^{o_W}(x, v)` for `o_W ∈ {na, rlx, rel}` (§2, "Program representation").
//! Our Coq-development-inspired extensions add atomic read-modify-writes
//! (RMWs), fences, and system calls, which the paper elides from its
//! presentation but includes in the artifact.

use std::fmt;

use crate::ident::Loc;
use crate::value::Value;

/// Read access modes `o_R ∈ {na, rlx, acq}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ReadMode {
    /// Non-atomic read: racy reads return `undef`.
    Na,
    /// Relaxed atomic read.
    Rlx,
    /// Acquire atomic read: synchronizes (gains permissions in SEQ,
    /// joins the message view in PS^na).
    Acq,
}

impl ReadMode {
    /// Is this an atomic mode (i.e. not `na`)?
    pub fn is_atomic(self) -> bool {
        !matches!(self, ReadMode::Na)
    }
}

impl fmt::Display for ReadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadMode::Na => write!(f, "na"),
            ReadMode::Rlx => write!(f, "rlx"),
            ReadMode::Acq => write!(f, "acq"),
        }
    }
}

/// Write access modes `o_W ∈ {na, rlx, rel}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum WriteMode {
    /// Non-atomic write: racy writes invoke UB.
    Na,
    /// Relaxed atomic write.
    Rlx,
    /// Release atomic write: synchronizes (loses permissions in SEQ,
    /// publishes the thread view in PS^na).
    Rel,
}

impl WriteMode {
    /// Is this an atomic mode (i.e. not `na`)?
    pub fn is_atomic(self) -> bool {
        !matches!(self, WriteMode::Na)
    }
}

impl fmt::Display for WriteMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteMode::Na => write!(f, "na"),
            WriteMode::Rlx => write!(f, "rlx"),
            WriteMode::Rel => write!(f, "rel"),
        }
    }
}

/// Modes for atomic read-modify-write operations.
///
/// An RMW both reads and writes; its mode determines the synchronization on
/// each side. These are included in the paper's Coq development ("atomic
/// read-modify-writes (RMWs)") though elided from the paper's presentation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RmwMode {
    /// Relaxed on both sides.
    Rlx,
    /// Acquire read side, relaxed write side.
    Acq,
    /// Relaxed read side, release write side.
    Rel,
    /// Acquire read side and release write side.
    AcqRel,
}

impl RmwMode {
    /// The read-side mode of this RMW.
    pub fn read_mode(self) -> ReadMode {
        match self {
            RmwMode::Rlx | RmwMode::Rel => ReadMode::Rlx,
            RmwMode::Acq | RmwMode::AcqRel => ReadMode::Acq,
        }
    }

    /// The write-side mode of this RMW.
    pub fn write_mode(self) -> WriteMode {
        match self {
            RmwMode::Rlx | RmwMode::Acq => WriteMode::Rlx,
            RmwMode::Rel | RmwMode::AcqRel => WriteMode::Rel,
        }
    }
}

impl fmt::Display for RmwMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmwMode::Rlx => write!(f, "rlx"),
            RmwMode::Acq => write!(f, "acq"),
            RmwMode::Rel => write!(f, "rel"),
            RmwMode::AcqRel => write!(f, "acqrel"),
        }
    }
}

/// Fence modes (Coq-development extension; the paper's artifact includes
/// fences "including sequentially consistent fences").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FenceMode {
    /// Acquire fence.
    Acq,
    /// Release fence.
    Rel,
    /// Combined acquire-release fence.
    AcqRel,
    /// Sequentially consistent fence.
    Sc,
}

impl FenceMode {
    /// Does this fence have acquire semantics?
    pub fn is_acquire(self) -> bool {
        matches!(self, FenceMode::Acq | FenceMode::AcqRel | FenceMode::Sc)
    }

    /// Does this fence have release semantics?
    pub fn is_release(self) -> bool {
        matches!(self, FenceMode::Rel | FenceMode::AcqRel | FenceMode::Sc)
    }
}

impl fmt::Display for FenceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FenceMode::Acq => write!(f, "acq"),
            FenceMode::Rel => write!(f, "rel"),
            FenceMode::AcqRel => write!(f, "acqrel"),
            FenceMode::Sc => write!(f, "sc"),
        }
    }
}

/// A program-level transition label.
///
/// These are the labels of the *program* LTS; the SEQ machine enriches
/// acquire/release labels with permission and memory information (see
/// `seqwm_seq::trace`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Event {
    /// `choose(v)`: resolution of an internal non-deterministic choice.
    Choose(Value),
    /// `R^o(x, v)`: a read of `v` from `x` with mode `o`.
    Read(Loc, ReadMode, Value),
    /// `W^o(x, v)`: a write of `v` to `x` with mode `o`.
    Write(Loc, WriteMode, Value),
    /// `U^o(x, v_r, v_w)`: an atomic update reading `v_r` and writing `v_w`.
    Rmw(Loc, RmwMode, Value, Value),
    /// `F^o`: a fence.
    Fence(FenceMode),
    /// A system call observable by the environment (e.g. `print(v)`).
    Syscall(Value),
}

impl Event {
    /// The location this event accesses, if any.
    pub fn loc(self) -> Option<Loc> {
        match self {
            Event::Read(x, _, _) | Event::Write(x, _, _) | Event::Rmw(x, _, _, _) => Some(x),
            _ => None,
        }
    }

    /// Does this event have acquire semantics (acquire read/RMW/fence)?
    pub fn is_acquire(self) -> bool {
        match self {
            Event::Read(_, m, _) => m == ReadMode::Acq,
            Event::Rmw(_, m, _, _) => m.read_mode() == ReadMode::Acq,
            Event::Fence(m) => m.is_acquire(),
            _ => false,
        }
    }

    /// Does this event have release semantics (release write/RMW/fence)?
    pub fn is_release(self) -> bool {
        match self {
            Event::Write(_, m, _) => m == WriteMode::Rel,
            Event::Rmw(_, m, _, _) => m.write_mode() == WriteMode::Rel,
            Event::Fence(m) => m.is_release(),
            _ => false,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Choose(v) => write!(f, "choose({v})"),
            Event::Read(x, m, v) => write!(f, "R{m}({x},{v})"),
            Event::Write(x, m, v) => write!(f, "W{m}({x},{v})"),
            Event::Rmw(x, m, r, w) => write!(f, "U{m}({x},{r},{w})"),
            Event::Fence(m) => write!(f, "F{m}"),
            Event::Syscall(v) => write!(f, "sys({v})"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn rmw_mode_decomposition() {
        assert_eq!(RmwMode::Rlx.read_mode(), ReadMode::Rlx);
        assert_eq!(RmwMode::Rlx.write_mode(), WriteMode::Rlx);
        assert_eq!(RmwMode::Acq.read_mode(), ReadMode::Acq);
        assert_eq!(RmwMode::Acq.write_mode(), WriteMode::Rlx);
        assert_eq!(RmwMode::Rel.read_mode(), ReadMode::Rlx);
        assert_eq!(RmwMode::Rel.write_mode(), WriteMode::Rel);
        assert_eq!(RmwMode::AcqRel.read_mode(), ReadMode::Acq);
        assert_eq!(RmwMode::AcqRel.write_mode(), WriteMode::Rel);
    }

    #[test]
    fn fence_polarity() {
        assert!(FenceMode::Acq.is_acquire() && !FenceMode::Acq.is_release());
        assert!(!FenceMode::Rel.is_acquire() && FenceMode::Rel.is_release());
        assert!(FenceMode::AcqRel.is_acquire() && FenceMode::AcqRel.is_release());
        assert!(FenceMode::Sc.is_acquire() && FenceMode::Sc.is_release());
    }

    #[test]
    fn atomicity() {
        assert!(!ReadMode::Na.is_atomic());
        assert!(ReadMode::Rlx.is_atomic());
        assert!(ReadMode::Acq.is_atomic());
        assert!(!WriteMode::Na.is_atomic());
        assert!(WriteMode::Rlx.is_atomic());
        assert!(WriteMode::Rel.is_atomic());
    }

    #[test]
    fn event_classification() {
        let x = Loc::new("ev_x");
        let acq = Event::Read(x, ReadMode::Acq, Value::Int(1));
        let rel = Event::Write(x, WriteMode::Rel, Value::Int(1));
        let rlx = Event::Read(x, ReadMode::Rlx, Value::Int(1));
        assert!(acq.is_acquire() && !acq.is_release());
        assert!(rel.is_release() && !rel.is_acquire());
        assert!(!rlx.is_acquire() && !rlx.is_release());
        assert_eq!(acq.loc(), Some(x));
        assert_eq!(Event::Choose(Value::Int(0)).loc(), None);
        assert!(Event::Rmw(x, RmwMode::AcqRel, Value::Int(0), Value::Int(1)).is_acquire());
        assert!(Event::Rmw(x, RmwMode::AcqRel, Value::Int(0), Value::Int(1)).is_release());
    }

    #[test]
    fn display_formats() {
        let x = Loc::new("ev_disp");
        assert_eq!(
            Event::Read(x, ReadMode::Na, Value::Undef).to_string(),
            "Rna(ev_disp,undef)"
        );
        assert_eq!(
            Event::Write(x, WriteMode::Rel, Value::Int(2)).to_string(),
            "Wrel(ev_disp,2)"
        );
        assert_eq!(Event::Fence(FenceMode::Sc).to_string(), "Fsc");
        assert_eq!(Event::Syscall(Value::Int(7)).to_string(), "sys(7)");
    }
}
