//! Shared synthetic workload generators for the benchmark suite (see
//! EXPERIMENTS.md for the experiment index).

use seqwm_lang::expr::Expr;
use seqwm_lang::{Loc, Program, ReadMode, Reg, Stmt, WriteMode};

/// A synthetic straight-line program with `n` statements exhibiting the
/// patterns the optimizer targets: constant stores, repeated loads of the
/// same locations, interleaved relaxed atomics, and periodic
/// release/acquire synchronization.
///
/// Used by the pass-throughput experiments (E4/E5): the fraction of
/// forwardable loads and dead stores is roughly constant in `n`, so
/// rewrites should scale linearly.
pub fn synthetic_program(n: usize) -> Program {
    let locs: Vec<Loc> = (0..4).map(|i| Loc::new(&format!("bw{i}"))).collect();
    let flag = Loc::new("bflag");
    let regs: Vec<Reg> = (0..4).map(|i| Reg::new(&format!("br{i}"))).collect();
    let mut stmts = Vec::with_capacity(n + 1);
    for i in 0..n {
        let x = locs[i % locs.len()];
        let r = regs[i % regs.len()];
        match i % 7 {
            0 => stmts.push(Stmt::Store(x, WriteMode::Na, Expr::int((i % 5) as i64))),
            1 | 4 => stmts.push(Stmt::Load(r, x, ReadMode::Na)),
            2 => stmts.push(Stmt::Assign(
                r,
                Expr::bin(
                    seqwm_lang::expr::BinOp::Add,
                    Expr::Reg(regs[(i + 1) % regs.len()]),
                    Expr::int(1),
                ),
            )),
            3 => stmts.push(Stmt::Store(x, WriteMode::Na, Expr::int(9))),
            5 => stmts.push(Stmt::Load(r, flag, ReadMode::Rlx)),
            _ => {
                if i % 21 == 6 {
                    stmts.push(Stmt::Store(flag, WriteMode::Rel, Expr::int(1)));
                } else {
                    stmts.push(Stmt::Load(r, x, ReadMode::Na));
                }
            }
        }
    }
    stmts.push(Stmt::Return(Expr::Reg(regs[0])));
    Program::new(Stmt::block(stmts))
}

/// A synthetic loop-heavy program with `loops` sequential loops, each with
/// an invariant load (the LICM workload).
pub fn loopy_program(loops: usize) -> Program {
    let mut stmts = Vec::new();
    for i in 0..loops {
        let x = Loc::new(&format!("blx{}", i % 3));
        let iv = Reg::new(&format!("bli{i}"));
        let a = Reg::new("bla");
        stmts.push(Stmt::Assign(iv, Expr::int(0)));
        stmts.push(Stmt::While(
            Expr::bin(seqwm_lang::expr::BinOp::Lt, Expr::Reg(iv), Expr::int(3)),
            Box::new(Stmt::block([
                Stmt::Load(a, x, ReadMode::Na),
                Stmt::Assign(
                    iv,
                    Expr::bin(seqwm_lang::expr::BinOp::Add, Expr::Reg(iv), Expr::int(1)),
                ),
            ])),
        ));
    }
    stmts.push(Stmt::Return(Expr::reg("bla")));
    Program::new(Stmt::block(stmts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_program_scales() {
        // Pretty-printing a 1000-statement right-nested sequence recurses
        // ~1000 frames; run on a thread with a roomy stack (the default
        // 2 MiB test-thread stack is marginal in debug builds).
        std::thread::Builder::new()
            .stack_size(32 * 1024 * 1024)
            .spawn(|| {
                for n in [10, 100, 1000] {
                    let p = synthetic_program(n);
                    let lines = p.to_string().lines().count();
                    assert!(lines >= n, "expected ≥ {n} lines, got {lines}");
                }
            })
            .expect("spawn")
            .join()
            .expect("join");
    }

    #[test]
    fn loopy_program_has_loops() {
        assert!(loopy_program(3).body.has_loop());
    }

    #[test]
    fn synthetic_program_is_optimizable() {
        std::thread::Builder::new()
            .stack_size(32 * 1024 * 1024)
            .spawn(|| {
                let p = synthetic_program(100);
                let out = seqwm_opt::pipeline::Pipeline::default().optimize(&p);
                assert!(out.total_rewrites() > 10, "got {}", out.total_rewrites());
            })
            .expect("spawn")
            .join()
            .expect("join");
    }
}
