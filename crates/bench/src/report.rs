//! Schema-versioned benchmark reports: JSON emission, parsing, and
//! baseline comparison (the regression gate).
//!
//! The workspace has no serde; reports are written with the same
//! hand-rolled emission style as the fuzz campaign summary and read
//! back with the shared [`seqwm_json`] recursive-descent parser
//! (objects, arrays, strings, numbers, booleans, null — everything a
//! report can contain). The parser is only as lenient as
//! round-tripping our own output requires; it rejects anything
//! structurally malformed.

use std::fmt;

use seqwm_explore::CounterSnapshot;
use seqwm_json::{escape as json_string, get, Json};

use crate::harness::Timing;

/// The report schema identifier. Bump the suffix on any breaking
/// change to the JSON shape; `--compare` refuses mismatched schemas.
pub const SCHEMA: &str = "seqwm-bench/1";

/// The environment a report was measured in. Recorded for human
/// triage; `--compare` only warns (never fails) on mismatches, except
/// for `debug_assertions`, where comparing a debug run against a
/// release baseline would be meaningless.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism at measurement time.
    pub cpus: usize,
    /// The highest worker count the scaling group was allowed to
    /// measure (`SuiteConfig::max_workers`, 0 when the report predates
    /// this field or was not produced by the suite).
    pub worker_cap: usize,
    /// Whether the harness itself was compiled with debug assertions.
    pub debug_assertions: bool,
    /// `CARGO_PKG_VERSION` of the bench crate.
    pub pkg_version: String,
}

impl EnvFingerprint {
    /// Captures the current process environment.
    pub fn gather() -> Self {
        EnvFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            worker_cap: 0,
            debug_assertions: cfg!(debug_assertions),
            pkg_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

/// One benchmark's measured result.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Bench group (`explore`, `scaling`, `refine`, `optimize`, `fuzz`).
    pub group: String,
    /// Bench name within the group.
    pub name: String,
    /// Timed iterations.
    pub iters: usize,
    /// Untimed warmup iterations.
    pub warmup: usize,
    /// Robust timing summary of `samples_ns`.
    pub timing: Timing,
    /// Raw per-iteration samples, nanoseconds.
    pub samples_ns: Vec<u64>,
    /// Global perf-counter growth across the timed iterations
    /// (cumulative over all `iters`), in [`CounterSnapshot::entries`]
    /// order.
    pub counters: Vec<(String, u64)>,
    /// Workload-reported metadata (state counts, worker counts, …).
    pub meta: Vec<(String, u64)>,
}

impl BenchResult {
    /// `group/name`, the identifier `--filter` and `--compare` match on.
    pub fn id(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }

    /// Builds the counter list from a snapshot delta, dropping zero
    /// entries (they carry no information and bloat the report).
    pub fn counters_from(delta: &CounterSnapshot) -> Vec<(String, u64)> {
        delta
            .entries()
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }
}

/// A full benchmark report: schema, environment, results.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Always [`SCHEMA`] for reports this crate writes.
    pub schema: String,
    /// Measurement environment.
    pub env: EnvFingerprint,
    /// One entry per bench, in suite order.
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    /// A new empty report for the current environment.
    pub fn new() -> Self {
        BenchReport {
            schema: SCHEMA.to_string(),
            env: EnvFingerprint::gather(),
            results: Vec::new(),
        }
    }

    /// Looks up a result by `group/name` id.
    pub fn find(&self, id: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.id() == id)
    }

    /// Renders the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"schema\":{},", json_string(&self.schema)));
        out.push_str(&format!(
            "\"env\":{{\"os\":{},\"arch\":{},\"cpus\":{},\"worker_cap\":{},\"debug_assertions\":{},\"pkg_version\":{}}},",
            json_string(&self.env.os),
            json_string(&self.env.arch),
            self.env.cpus,
            self.env.worker_cap,
            self.env.debug_assertions,
            json_string(&self.env.pkg_version),
        ));
        out.push_str("\"results\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"group\":{},", json_string(&r.group)));
            out.push_str(&format!("\"name\":{},", json_string(&r.name)));
            out.push_str(&format!("\"iters\":{},", r.iters));
            out.push_str(&format!("\"warmup\":{},", r.warmup));
            out.push_str(&format!(
                "\"timing\":{{\"median_ns\":{},\"mad_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"rejected\":{}}},",
                r.timing.median_ns,
                r.timing.mad_ns,
                r.timing.mean_ns,
                r.timing.min_ns,
                r.timing.max_ns,
                r.timing.rejected,
            ));
            out.push_str("\"samples_ns\":[");
            for (j, s) in r.samples_ns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&s.to_string());
            }
            out.push_str("],");
            push_pairs(&mut out, "counters", &r.counters);
            out.push(',');
            push_pairs(&mut out, "meta", &r.meta);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a report previously written by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on malformed JSON, a missing field, or a
    /// schema identifier this version does not understand.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let obj = v.as_obj("report")?;
        let schema = get(obj, "schema")?.as_str("schema")?.to_string();
        if schema != SCHEMA {
            return Err(format!(
                "unsupported report schema {schema:?} (this build reads {SCHEMA:?})"
            ));
        }
        let envo = get(obj, "env")?.as_obj("env")?;
        let env = EnvFingerprint {
            os: get(envo, "os")?.as_str("env.os")?.to_string(),
            arch: get(envo, "arch")?.as_str("env.arch")?.to_string(),
            cpus: get(envo, "cpus")?.as_u64("env.cpus")? as usize,
            // Optional: reports written before the field existed stay
            // readable (schema unchanged), parsing as "not recorded".
            worker_cap: match get(envo, "worker_cap") {
                Ok(v) => v.as_u64("env.worker_cap")? as usize,
                Err(_) => 0,
            },
            debug_assertions: get(envo, "debug_assertions")?.as_bool("env.debug_assertions")?,
            pkg_version: get(envo, "pkg_version")?
                .as_str("env.pkg_version")?
                .to_string(),
        };
        let mut results = Vec::new();
        for (i, rv) in get(obj, "results")?.as_arr("results")?.iter().enumerate() {
            let ro = rv.as_obj("result")?;
            let ctx = |f: &str| format!("results[{i}].{f}");
            let t = get(ro, "timing")?.as_obj("timing")?;
            let timing = Timing {
                median_ns: get(t, "median_ns")?.as_u64(&ctx("timing.median_ns"))?,
                mad_ns: get(t, "mad_ns")?.as_u64(&ctx("timing.mad_ns"))?,
                mean_ns: get(t, "mean_ns")?.as_u64(&ctx("timing.mean_ns"))?,
                min_ns: get(t, "min_ns")?.as_u64(&ctx("timing.min_ns"))?,
                max_ns: get(t, "max_ns")?.as_u64(&ctx("timing.max_ns"))?,
                rejected: get(t, "rejected")?.as_u64(&ctx("timing.rejected"))? as usize,
            };
            let samples_ns = get(ro, "samples_ns")?
                .as_arr("samples_ns")?
                .iter()
                .map(|s| s.as_u64(&ctx("samples_ns[]")))
                .collect::<Result<Vec<u64>, String>>()?;
            results.push(BenchResult {
                group: get(ro, "group")?.as_str(&ctx("group"))?.to_string(),
                name: get(ro, "name")?.as_str(&ctx("name"))?.to_string(),
                iters: get(ro, "iters")?.as_u64(&ctx("iters"))? as usize,
                warmup: get(ro, "warmup")?.as_u64(&ctx("warmup"))? as usize,
                timing,
                samples_ns,
                counters: parse_pairs(get(ro, "counters")?, &ctx("counters"))?,
                meta: parse_pairs(get(ro, "meta")?, &ctx("meta"))?,
            });
        }
        Ok(BenchReport {
            schema,
            env,
            results,
        })
    }
}

impl Default for BenchReport {
    fn default() -> Self {
        Self::new()
    }
}

fn push_pairs(out: &mut String, key: &str, pairs: &[(String, u64)]) {
    out.push_str(&format!("\"{key}\":{{"));
    for (j, (k, v)) in pairs.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_string(k), v));
    }
    out.push('}');
}

fn parse_pairs(v: &Json, ctx: &str) -> Result<Vec<(String, u64)>, String> {
    v.as_obj(ctx)?
        .iter()
        .map(|(k, v)| Ok((k.clone(), v.as_u64(&format!("{ctx}.{k}"))?)))
        .collect()
}

// --- comparison / regression gate ---

/// Thresholds for [`compare`].
#[derive(Clone, Debug)]
pub struct CompareConfig {
    /// A bench regresses when its median slows by more than this
    /// percentage over the baseline.
    pub threshold_pct: f64,
    /// …and by more than this absolute floor (guards microsecond-scale
    /// benches, where a fixed percentage is all noise).
    pub min_delta_ns: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            threshold_pct: 25.0,
            min_delta_ns: 200_000,
        }
    }
}

/// One bench's baseline-vs-current delta.
#[derive(Clone, Debug)]
pub struct Delta {
    /// `group/name` id.
    pub id: String,
    /// Baseline median, nanoseconds.
    pub base_ns: u64,
    /// Current median, nanoseconds.
    pub cur_ns: u64,
    /// Signed change in percent (positive = slower).
    pub pct: f64,
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3}ms -> {:.3}ms ({:+.1}%)",
            self.id,
            self.base_ns as f64 / 1e6,
            self.cur_ns as f64 / 1e6,
            self.pct
        )
    }
}

/// The outcome of comparing a current report against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Benches beyond the regression threshold (slower). Non-empty ⇒
    /// the gate fails.
    pub regressions: Vec<Delta>,
    /// Benches beyond the threshold in the other direction (faster).
    pub improvements: Vec<Delta>,
    /// Baseline benches absent from the current report (warn only —
    /// suites evolve).
    pub missing: Vec<String>,
    /// Current benches absent from the baseline (warn only).
    pub added: Vec<String>,
    /// Environment caveats (debug/release mismatch, cpu count change).
    pub warnings: Vec<String>,
}

impl Comparison {
    /// Does the regression gate pass?
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` against `baseline` under `cfg` thresholds.
pub fn compare(baseline: &BenchReport, current: &BenchReport, cfg: &CompareConfig) -> Comparison {
    let mut out = Comparison::default();
    if baseline.env.debug_assertions != current.env.debug_assertions {
        out.warnings.push(format!(
            "debug_assertions differ (baseline {}, current {}): timings are not comparable",
            baseline.env.debug_assertions, current.env.debug_assertions
        ));
    }
    if baseline.env.cpus != current.env.cpus {
        out.warnings.push(format!(
            "WARNING: logical core count differs (baseline {}, current {}): \
             scaling and multi-worker benches are NOT comparable across core \
             counts — regenerate the baseline on this machine before trusting \
             the gate",
            baseline.env.cpus, current.env.cpus
        ));
    }
    if baseline.env.worker_cap != current.env.worker_cap {
        out.warnings.push(format!(
            "WARNING: scaling worker cap differs (baseline {}, current {}; \
             0 = not recorded): the scaling group measured different \
             parallelism",
            baseline.env.worker_cap, current.env.worker_cap
        ));
    }
    for b in &baseline.results {
        let id = b.id();
        let Some(c) = current.find(&id) else {
            out.missing.push(id);
            continue;
        };
        let (base, cur) = (b.timing.median_ns, c.timing.median_ns);
        if base == 0 {
            continue;
        }
        let pct = (cur as f64 - base as f64) / base as f64 * 100.0;
        let delta = Delta {
            id,
            base_ns: base,
            cur_ns: cur,
            pct,
        };
        if pct > cfg.threshold_pct && cur.saturating_sub(base) > cfg.min_delta_ns {
            out.regressions.push(delta);
        } else if pct < -cfg.threshold_pct && base.saturating_sub(cur) > cfg.min_delta_ns {
            out.improvements.push(delta);
        }
    }
    for c in &current.results {
        if baseline.find(&c.id()).is_none() {
            out.added.push(c.id());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(group: &str, name: &str, median_ns: u64) -> BenchResult {
        BenchResult {
            group: group.into(),
            name: name.into(),
            iters: 3,
            warmup: 1,
            timing: Timing {
                median_ns,
                mad_ns: 1,
                mean_ns: median_ns,
                min_ns: median_ns,
                max_ns: median_ns,
                rejected: 0,
            },
            samples_ns: vec![median_ns; 3],
            counters: vec![("states".into(), 42)],
            meta: vec![("workers".into(), 1)],
        }
    }

    fn report(results: Vec<BenchResult>) -> BenchReport {
        BenchReport {
            results,
            ..BenchReport::new()
        }
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let r = report(vec![
            result("explore", "sb-rlx", 1_000_000),
            result("refine", "simple \"quoted\"\n", 2_500_000),
        ]);
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        let mut r = report(vec![]);
        r.schema = "seqwm-bench/99".into();
        let err = BenchReport::from_json(&r.to_json()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(BenchReport::from_json("").is_err());
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("{\"schema\":\"seqwm-bench/1\"}").is_err());
        assert!(BenchReport::from_json("{} trailing").is_err());
    }

    #[test]
    fn reports_without_worker_cap_still_parse() {
        let mut r = report(vec![]);
        r.env.worker_cap = 8;
        let text = r.to_json().replace("\"worker_cap\":8,", "");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(
            parsed.env.worker_cap, 0,
            "absent field reads as not-recorded, same schema"
        );
    }

    #[test]
    fn core_count_and_worker_cap_mismatches_warn_loudly() {
        let mut base = report(vec![]);
        base.env.cpus = 1;
        base.env.worker_cap = 1;
        let mut cur = report(vec![]);
        cur.env.cpus = 8;
        cur.env.worker_cap = 8;
        let cmp = compare(&base, &cur, &CompareConfig::default());
        assert!(cmp.passed(), "environment mismatches warn, never fail");
        let loud: Vec<_> = cmp
            .warnings
            .iter()
            .filter(|w| w.starts_with("WARNING:"))
            .collect();
        assert_eq!(loud.len(), 2, "{:?}", cmp.warnings);
        assert!(loud[0].contains("core count"));
        assert!(loud[1].contains("worker cap"));
    }

    #[test]
    fn compare_flags_slowdowns_beyond_both_thresholds() {
        let base = report(vec![
            result("explore", "a", 1_000_000),
            result("explore", "tiny", 1_000),
        ]);
        let cur = report(vec![
            result("explore", "a", 1_400_000),
            result("explore", "tiny", 2_000), // +100% but under the floor
        ]);
        let cmp = compare(&base, &cur, &CompareConfig::default());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].id, "explore/a");
        assert!(!cmp.passed());
    }

    #[test]
    fn compare_identical_reports_passes() {
        let base = report(vec![result("explore", "a", 1_000_000)]);
        let cmp = compare(&base, &base.clone(), &CompareConfig::default());
        assert!(cmp.passed());
        assert!(cmp.improvements.is_empty());
        assert!(cmp.missing.is_empty() && cmp.added.is_empty());
    }

    #[test]
    fn compare_tracks_missing_added_and_improvements() {
        let base = report(vec![
            result("explore", "gone", 5_000_000),
            result("explore", "fast", 10_000_000),
        ]);
        let cur = report(vec![
            result("explore", "fast", 4_000_000),
            result("explore", "new", 1_000_000),
        ]);
        let cmp = compare(&base, &cur, &CompareConfig::default());
        assert!(
            cmp.passed(),
            "missing/added/improvements never fail the gate"
        );
        assert_eq!(cmp.missing, vec!["explore/gone"]);
        assert_eq!(cmp.added, vec!["explore/new"]);
        assert_eq!(cmp.improvements.len(), 1);
    }

    #[test]
    fn delta_display_is_readable() {
        let d = Delta {
            id: "explore/a".into(),
            base_ns: 1_000_000,
            cur_ns: 1_500_000,
            pct: 50.0,
        };
        assert_eq!(d.to_string(), "explore/a: 1.000ms -> 1.500ms (+50.0%)");
    }
}
