#![warn(missing_docs)]

//! # seqwm-bench
//!
//! Zero-dependency, deterministic benchmarking and perf observability
//! for the workspace's hot paths: PS^na exploration, SEQ refinement,
//! the optimizer pipeline, and a fuzz-campaign slice.
//!
//! * [`harness`] — monotonic-clock measurement with warmup and robust
//!   median/MAD statistics (outlier rejection, no RNG, no wall-clock
//!   dates).
//! * [`suite`] — the bench registry: which workloads run at which
//!   sizes, including the parametric [`seqwm_litmus::scaling`]
//!   families across worker counts.
//! * [`report`] — schema-versioned JSON reports
//!   (`BENCH_<name>.json`), plus the `--compare` regression gate.
//! * [`workloads`] — synthetic program generators shared by the
//!   optimizer benches.
//!
//! Unlike a sampling profiler, attribution comes from the
//! always-compiled global counters in [`seqwm_explore::counters`]:
//! each bench samples a [`seqwm_explore::CounterSnapshot`] before and
//! after its timed iterations and reports the delta (states pushed,
//! dedup hits, reduction grants, refinement fuel, checkpoint bytes)
//! alongside the timings.
//!
//! ## Example
//!
//! ```
//! use seqwm_bench::suite::{run_suite, SuiteConfig};
//!
//! let report = run_suite(&SuiteConfig {
//!     quick: true,
//!     filter: Some("optimize/".into()),
//!     iters: 1,
//!     warmup: 0,
//!     ..SuiteConfig::default()
//! });
//! assert!(report.results.iter().all(|r| r.group == "optimize"));
//! let json = report.to_json();
//! let parsed = seqwm_bench::report::BenchReport::from_json(&json).unwrap();
//! assert_eq!(parsed, report);
//! ```

pub mod harness;
pub mod report;
pub mod suite;
pub mod workloads;

pub use harness::{black_box, measure, Timing};
pub use report::{compare, BenchReport, BenchResult, CompareConfig, Comparison, EnvFingerprint};
pub use suite::{list_suite, run_suite, SuiteConfig};
pub use workloads::{loopy_program, synthetic_program};
