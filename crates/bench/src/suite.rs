//! The benchmark suite: which workloads run, at which sizes, under
//! which engine knobs.
//!
//! Five groups, covering every hot path the workspace ships:
//!
//! * `explore` — PS^na engine exploration of fixed corpus cases.
//! * `scaling` — the parametric [`seqwm_litmus::scaling`] families
//!   across thread counts `N` and worker counts, plus a
//!   reduction-on/off pair on the NA-disjoint family (the before/after
//!   measurement for the NA-write commutation rule).
//! * `refine` — the simple and advanced SEQ refinement checkers over
//!   the paper's transformation corpus.
//! * `optimize` — the optimizer pipeline on synthetic straight-line
//!   and loop-heavy programs.
//! * `opt` — the *validated* batch optimizer (programs/sec through the
//!   extended pipeline with per-stage translation validation), cold
//!   versus warm memo cache.
//! * `fuzz` — a small deterministic fuzz-campaign slice (fixed seed,
//!   one worker, throwaway corpus directory).
//!
//! Every workload is deterministic given its configuration, so the
//! perf counters sampled around a bench are identical run to run for
//! single-worker benches — `tests/bench_smoke.rs` locks that in.

use std::sync::atomic::{AtomicU64, Ordering};

use seqwm_explore::{CounterSnapshot, ExploreConfig, SpillSpec};
use seqwm_fuzz::{run_batch, run_campaign, BatchConfig, FuzzConfig};
use seqwm_litmus::concurrent::find_concurrent;
use seqwm_litmus::scaling::{mp_chain, na_disjoint, sb_ring};
use seqwm_litmus::transform::{transform_corpus, Expectation};
use seqwm_models::{plan_explore, ModelChoice, ModelKind, ModelOpts};
use seqwm_opt::pipeline::Pipeline;
use seqwm_promising::search::engine_config;
use seqwm_seq::advanced::refines_advanced;
use seqwm_seq::refine::{refines_simple, RefineConfig};

use crate::harness::{measure, Timing};
use crate::report::{BenchReport, BenchResult};
use crate::workloads::{loopy_program, synthetic_program};

/// What to run and how hard to measure it.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Smaller workloads, fewer worker counts — the CI smoke setting.
    pub quick: bool,
    /// Only run benches whose `group/name` id contains this substring.
    pub filter: Option<String>,
    /// Timed iterations per bench.
    pub iters: usize,
    /// Untimed warmup iterations per bench.
    pub warmup: usize,
    /// Highest worker count the scaling group measures (clamped to
    /// powers of two: 1, 2, 4, 8).
    pub max_workers: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            quick: false,
            filter: None,
            iters: 5,
            warmup: 1,
            max_workers: 8,
        }
    }
}

impl SuiteConfig {
    fn matches(&self, group: &str, name: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => format!("{group}/{name}").contains(f.as_str()),
        }
    }

    /// The scaling group's effective worker cap (quick halves the
    /// ladder), recorded in the report's environment fingerprint.
    fn effective_worker_cap(&self) -> usize {
        if self.quick {
            2
        } else {
            self.max_workers.max(1)
        }
    }

    fn worker_counts(&self) -> Vec<usize> {
        let cap = self.effective_worker_cap();
        [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&w| w <= cap)
            .collect()
    }
}

/// Lists every bench id the suite would run under `cfg` (respecting
/// `quick` sizing but ignoring the filter) without running anything.
pub fn list_suite(cfg: &SuiteConfig) -> Vec<String> {
    let mut ids = Vec::new();
    run_suite_inner(cfg, Some(&mut ids));
    ids
}

/// Runs the suite and returns the report.
///
/// The whole suite executes on a dedicated 64 MiB-stack thread: the
/// optimizer and pretty-printer recurse one frame per statement on the
/// synthetic workloads, which overflows default test-thread stacks in
/// debug builds.
pub fn run_suite(cfg: &SuiteConfig) -> BenchReport {
    let cfg = cfg.clone();
    std::thread::Builder::new()
        .name("seqwm-bench-suite".into())
        .stack_size(64 * 1024 * 1024)
        .spawn(move || run_suite_inner(&cfg, None))
        .expect("spawn bench suite thread")
        .join()
        .expect("bench suite thread panicked")
}

/// One registered bench: either measured into the report, or (when
/// `ids` is given or the filter excludes it) merely recorded/skipped.
struct Registrar<'a> {
    cfg: &'a SuiteConfig,
    report: BenchReport,
    ids: Option<&'a mut Vec<String>>,
}

impl Registrar<'_> {
    /// Registers and (filter permitting) measures one bench. `f` runs
    /// the workload once and returns metadata for the report; the
    /// metadata of the last timed iteration wins.
    fn bench<F: FnMut() -> Vec<(String, u64)>>(&mut self, group: &str, name: &str, mut f: F) {
        if let Some(ids) = self.ids.as_deref_mut() {
            ids.push(format!("{group}/{name}"));
            return;
        }
        if !self.cfg.matches(group, name) {
            return;
        }
        let mut meta = Vec::new();
        let before = CounterSnapshot::capture();
        let samples = measure(self.cfg.warmup, self.cfg.iters, || {
            meta = f();
            meta.len()
        });
        let delta = CounterSnapshot::capture().since(&before);
        self.report.results.push(BenchResult {
            group: group.to_string(),
            name: name.to_string(),
            iters: self.cfg.iters,
            warmup: self.cfg.warmup,
            timing: Timing::of(&samples),
            samples_ns: samples,
            counters: BenchResult::counters_from(&delta),
            meta,
        });
    }
}

fn run_suite_inner(cfg: &SuiteConfig, ids: Option<&mut Vec<String>>) -> BenchReport {
    let mut reg = Registrar {
        cfg,
        report: BenchReport::new(),
        ids,
    };
    reg.report.env.worker_cap = cfg.effective_worker_cap();
    bench_explore(&mut reg);
    bench_scaling(&mut reg);
    bench_refine(&mut reg);
    bench_optimize(&mut reg);
    bench_opt_batch(&mut reg);
    bench_fuzz(&mut reg);
    reg.report
}

// --- group: explore ---

fn bench_explore(reg: &mut Registrar<'_>) {
    let names: &[&str] = if reg.cfg.quick {
        &["sb-rlx"]
    } else {
        &["sb-rlx", "2+2w-rlx", "mp-chain-4"]
    };
    for name in names {
        let case = find_concurrent(name).expect("corpus case exists");
        let progs = case.programs();
        let pcfg = case.config();
        let ecfg = engine_config(&pcfg);
        reg.bench("explore", name, || {
            let e = seqwm_promising::search::explore_engine(&progs, &pcfg, &ecfg);
            vec![
                ("states".into(), e.stats.states as u64),
                ("behaviors".into(), e.behaviors.len() as u64),
                ("workers".into(), 1),
            ]
        });
    }
}

// --- group: scaling ---

fn bench_scaling(reg: &mut Registrar<'_>) {
    // mp-chain across N and worker counts: the headline scaling curve.
    let chain_ns: &[usize] = if reg.cfg.quick { &[3] } else { &[3, 4] };
    for &n in chain_ns {
        let case = mp_chain(n);
        let base = engine_config(&case.config());
        for workers in reg.cfg.worker_counts() {
            let ecfg = ExploreConfig {
                workers,
                ..base.clone()
            };
            let name = format!("{}/w{workers}", case.name);
            let case = case.clone();
            reg.bench("scaling", &name, move || {
                let e = case.explore(&ecfg);
                vec![
                    ("n".into(), case.n as u64),
                    ("workers".into(), workers as u64),
                    ("states".into(), e.stats.states as u64),
                ]
            });
        }
    }

    // sb-ring at a fixed size, single worker: a pure-interleaving load.
    let ring = sb_ring(3);
    let ring_cfg = engine_config(&ring.config());
    {
        let ring = ring.clone();
        reg.bench("scaling", &ring.name.clone(), move || {
            let e = ring.explore(&ring_cfg);
            vec![
                ("n".into(), ring.n as u64),
                ("workers".into(), 1),
                ("states".into(), e.stats.states as u64),
            ]
        });
    }

    // sb-ring with the visited set forced out to disk (spill budget
    // 0) against the in-RAM run above: the overhead price of
    // out-of-core exploration on a pure-interleaving load. The `spill`
    // counters in the result prove the disk path actually ran; states
    // must match the in-RAM case exactly (spilling is lossless).
    {
        let ring = ring.clone();
        let dir = std::env::temp_dir().join(format!("seqwm-bench-spill-{}", std::process::id()));
        let ecfg = ExploreConfig {
            spill: Some(SpillSpec::new(&dir).budget_bytes(0)),
            ..engine_config(&ring.config())
        };
        let name = format!("{}/spill", ring.name);
        reg.bench("scaling", &name, move || {
            let e = ring.explore(&ecfg);
            let _ = std::fs::remove_dir_all(&dir);
            vec![
                ("n".into(), ring.n as u64),
                ("workers".into(), 1),
                ("states".into(), e.stats.states as u64),
                ("spill_shards".into(), e.stats.spill_shards),
                ("spill_bytes".into(), e.stats.spill_bytes),
                ("spill_probes".into(), e.stats.spill_probes),
            ]
        });
    }

    // sb-ring through the canonical adapter, reduction off/on: the
    // before/after measurement for the atomic-write commutation rule
    // and the timestamp-rank dedup. `atomic_commutes`/`read_commutes`
    // in the reduced run's counters show the new rules fired on an
    // atomic-heavy family the NA rule cannot touch.
    let ring_base = engine_config(&ring.config());
    for (tag, reduction) in [("full", false), ("canon-reduced", true)] {
        let ring = ring.clone();
        let ecfg = ExploreConfig {
            reduction,
            ..ring_base.clone()
        };
        let name = format!("{}/{tag}", ring.name);
        reg.bench("scaling", &name, move || {
            let e = if reduction {
                ring.explore_canonical(&ecfg)
            } else {
                ring.explore(&ecfg)
            };
            vec![
                ("n".into(), ring.n as u64),
                ("workers".into(), 1),
                ("states".into(), e.stats.states as u64),
                ("transitions".into(), e.stats.transitions as u64),
                ("atomic_commutes".into(), e.stats.atomic_commutes as u64),
                ("read_commutes".into(), e.stats.read_commutes as u64),
            ]
        });
    }

    // na-disjoint with reduction off/on: the before/after measurement
    // for the NA-write commutation rule. States stay comparable (the
    // rule prunes transitions/re-visits, ample handles states);
    // `na_commutes` in the reduced run's counters shows the rule fired.
    let nd = na_disjoint(3);
    let nd_base = engine_config(&nd.config());
    for (tag, reduction) in [("full", false), ("reduced", true)] {
        let nd = nd.clone();
        let ecfg = ExploreConfig {
            reduction,
            ..nd_base.clone()
        };
        let name = format!("{}/{tag}", nd.name);
        reg.bench("scaling", &name, move || {
            let e = nd.explore(&ecfg);
            vec![
                ("n".into(), nd.n as u64),
                ("workers".into(), 1),
                ("states".into(), e.stats.states as u64),
                ("transitions".into(), e.stats.transitions as u64),
                ("na_commutes".into(), e.stats.na_commutes as u64),
            ]
        });
    }

    // DRF-gated planner vs full PS^na on the race-free na-disjoint
    // family: the `--model auto` ladder proves LDRF-SC on the SC scan
    // and keeps its enumeration (~1.3k states, complete), while full
    // PS^na promise synthesis cannot even finish the family inside a
    // 10k-state budget — the psna leg is state-capped so the pair stays
    // benchable, and its `truncated` meta records that the cap was the
    // stopping rule. The state counts in `meta` are the measured
    // evidence for the EXPERIMENTS.md entry;
    // `tests/model_differential.rs` asserts the strict inequality.
    let gated = na_disjoint(4);
    let gated_progs = gated.programs();
    for (tag, choice, ps_cap) in [
        ("psna", ModelChoice::Fixed(ModelKind::PsNa), Some(10_000)),
        ("drf-gated", ModelChoice::Auto, None),
    ] {
        let progs = gated_progs.clone();
        let name = format!("{}/{tag}", gated.name);
        let mut opts = ModelOpts::default();
        if let Some(cap) = ps_cap {
            opts.ps.max_states = cap;
        }
        reg.bench("scaling", &name, move || {
            let r = plan_explore(&progs, choice, &opts);
            vec![
                ("n".into(), 4),
                ("workers".into(), 1),
                ("states".into(), r.exploration.states as u64),
                ("checker_states".into(), r.checker_states as u64),
                ("total_states".into(), r.total_states() as u64),
                ("behaviors".into(), r.exploration.behaviors.len() as u64),
                ("truncated".into(), u64::from(r.exploration.truncated)),
            ]
        });
    }
}

// --- group: refine ---

fn bench_refine(reg: &mut Registrar<'_>) {
    let cfg = RefineConfig::default();
    let corpus = transform_corpus();
    {
        let cfg = cfg.clone();
        let corpus = corpus.clone();
        reg.bench("refine", "simple-full-corpus", move || {
            let mut holds = 0u64;
            for case in &corpus {
                if refines_simple(&case.src_program(), &case.tgt_program(), &cfg)
                    .map(|o| o.holds)
                    .unwrap_or(false)
                {
                    holds += 1;
                }
            }
            vec![
                ("holds".into(), holds),
                ("cases".into(), corpus.len() as u64),
            ]
        });
    }
    let advanced: Vec<_> = corpus
        .into_iter()
        .filter(|c| c.expectation == Expectation::AdvancedOnly)
        .collect();
    reg.bench("refine", "advanced-cases", move || {
        let mut holds = 0u64;
        for case in &advanced {
            if refines_advanced(&case.src_program(), &case.tgt_program(), &cfg)
                .map(|o| o.holds)
                .unwrap_or(false)
            {
                holds += 1;
            }
        }
        vec![
            ("holds".into(), holds),
            ("cases".into(), advanced.len() as u64),
        ]
    });
}

// --- group: optimize ---

fn bench_optimize(reg: &mut Registrar<'_>) {
    let (straight_n, loops_n) = if reg.cfg.quick { (60, 6) } else { (200, 20) };
    let straight = synthetic_program(straight_n);
    reg.bench(
        "optimize",
        &format!("pipeline-straight-{straight_n}"),
        move || {
            let out = Pipeline::default().optimize(&straight);
            vec![("rewrites".into(), out.total_rewrites() as u64)]
        },
    );
    let loopy = loopy_program(loops_n);
    reg.bench(
        "optimize",
        &format!("pipeline-loopy-{loops_n}"),
        move || {
            let out = Pipeline::default().optimize(&loopy);
            vec![("rewrites".into(), out.total_rewrites() as u64)]
        },
    );
}

// --- group: opt ---

/// Distinguishes throwaway memo-cache dirs across benches and runs in
/// the same process.
static OPT_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn opt_cache_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "seqwm-bench-opt-{}-{}",
        std::process::id(),
        OPT_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Validated batch-optimizer throughput (programs/sec): the full
/// extended pipeline plus per-stage translation validation over a
/// fixed-seed generated corpus, cold (every iteration discharges each
/// obligation fresh) versus warm (every iteration answers from a memo
/// store the previous one filled). The programs/sec figure is the
/// `programs` meta over the timing sample.
fn bench_opt_batch(reg: &mut Registrar<'_>) {
    let programs = if reg.cfg.quick { 3 } else { 6 };
    let batch = |cache_dir: Option<std::path::PathBuf>| BatchConfig {
        programs,
        seed: 21,
        cache_dir,
        ..BatchConfig::default()
    };

    let cold = batch(None);
    reg.bench(
        "opt",
        &format!("batch-validated-cold-{programs}"),
        move || {
            // A fresh throwaway store each iteration: every stage verdict
            // is discharged from scratch (the dir is created and torn down
            // inside the timed region, a fixed small cost).
            let dir = opt_cache_dir();
            let cfg = BatchConfig {
                cache_dir: Some(dir.clone()),
                ..cold.clone()
            };
            let sum = run_batch(&cfg).expect("cold batch runs");
            let _ = std::fs::remove_dir_all(&dir);
            assert!(
                sum.clean(),
                "bench corpus must validate: {:?}",
                sum.failures
            );
            vec![
                ("programs".into(), sum.programs as u64),
                ("stages_validated".into(), sum.stages_validated as u64),
                ("stages_cached".into(), sum.stages_cached as u64),
                ("rewrites".into(), sum.rewrites as u64),
            ]
        },
    );

    let warm_dir = opt_cache_dir();
    let warm = batch(Some(warm_dir.clone()));
    let warm_name = format!("batch-validated-warm-{programs}");
    // Fill the store before timing starts — the warm bench must measure
    // cache replay even under `--warmup 0`. Skipped when the bench
    // itself won't run (`--list`, or a filter that excludes it).
    if reg.ids.is_none() && reg.cfg.matches("opt", &warm_name) {
        let prefill = run_batch(&warm).expect("warm prefill runs");
        assert!(
            prefill.clean(),
            "bench corpus must validate: {:?}",
            prefill.failures
        );
    }
    reg.bench("opt", &warm_name, move || {
        // Every iteration replays the identical corpus out of the
        // pre-filled store.
        let sum = run_batch(&warm).expect("warm batch runs");
        assert!(
            sum.clean(),
            "bench corpus must validate: {:?}",
            sum.failures
        );
        vec![
            ("programs".into(), sum.programs as u64),
            ("stages_validated".into(), sum.stages_validated as u64),
            ("stages_cached".into(), sum.stages_cached as u64),
            ("rewrites".into(), sum.rewrites as u64),
        ]
    });
    let _ = std::fs::remove_dir_all(&warm_dir);
}

// --- group: fuzz ---

/// Distinguishes throwaway fuzz corpus dirs across benches and runs in
/// the same process (two suite runs in one test binary must not share
/// a corpus: persisted failures would change the second run's dedup).
static FUZZ_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn bench_fuzz(reg: &mut Registrar<'_>) {
    let cases = if reg.cfg.quick { 4 } else { 8 };
    reg.bench("fuzz", &format!("campaign-slice-{cases}"), move || {
        let dir = std::env::temp_dir().join(format!(
            "seqwm-bench-fuzz-{}-{}",
            std::process::id(),
            FUZZ_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let cfg = FuzzConfig {
            cases,
            workers: 1,
            corpus_dir: dir.clone(),
            checkpoint_every: 0,
            ..FuzzConfig::default()
        };
        let summary = run_campaign(&cfg).expect("fuzz slice runs");
        let _ = std::fs::remove_dir_all(&dir);
        vec![
            ("cases_run".into(), summary.cases_run as u64),
            ("violations".into(), summary.violations as u64),
        ]
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_covers_every_group_without_running() {
        let ids = list_suite(&SuiteConfig::default());
        for group in [
            "explore/",
            "scaling/",
            "refine/",
            "optimize/",
            "opt/",
            "fuzz/",
        ] {
            assert!(
                ids.iter().any(|id| id.starts_with(group)),
                "no {group} benches in {ids:?}"
            );
        }
        assert!(ids.iter().any(|id| id.contains("mp-chain-4/w2")));
        // Listing is instantaneous; a measured suite would take seconds.
    }

    #[test]
    fn quick_list_is_a_subset_with_fewer_workers() {
        let quick = list_suite(&SuiteConfig {
            quick: true,
            ..SuiteConfig::default()
        });
        assert!(quick.iter().any(|id| id.contains("mp-chain-3/w2")));
        assert!(!quick.iter().any(|id| id.contains("/w4")));
    }

    #[test]
    fn filter_limits_the_run() {
        let cfg = SuiteConfig {
            quick: true,
            filter: Some("optimize/".into()),
            iters: 1,
            warmup: 0,
            ..SuiteConfig::default()
        };
        let report = run_suite(&cfg);
        assert!(!report.results.is_empty());
        assert!(report.results.iter().all(|r| r.group == "optimize"));
        for r in &report.results {
            assert_eq!(r.samples_ns.len(), 1);
            assert!(r.meta.iter().any(|(k, _)| k == "rewrites"));
        }
    }
}
