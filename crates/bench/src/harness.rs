//! The measurement core: monotonic-clock timing with warmup,
//! per-iteration samples, and robust (median/MAD) statistics.
//!
//! Everything here is deliberately boring: `std::time::Instant` for
//! timing, `std::hint::black_box` to defeat dead-code elimination, and
//! integer nanoseconds throughout. No wall-clock dates, no RNG — two
//! runs of the same workload differ only in the timings themselves.

use std::time::Instant;

/// Re-export of the optimizer barrier used around workload results.
pub use std::hint::black_box;

/// Robust summary statistics over a set of per-iteration samples.
///
/// The median and the MAD (median absolute deviation) are insensitive
/// to the long right tail that scheduler noise produces; samples
/// farther than `5 × MAD` from the median are counted in `rejected`
/// and excluded from `mean_ns`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timing {
    /// Median of all samples, nanoseconds.
    pub median_ns: u64,
    /// Median absolute deviation from the median, nanoseconds.
    pub mad_ns: u64,
    /// Mean of the samples that survived outlier rejection.
    pub mean_ns: u64,
    /// Smallest sample.
    pub min_ns: u64,
    /// Largest sample (outliers included — it documents the noise).
    pub max_ns: u64,
    /// Samples rejected as outliers (`|x − median| > 5 × MAD`).
    pub rejected: usize,
}

fn median_of(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

impl Timing {
    /// Computes the summary of `samples_ns` (empty input ⇒ all zeros).
    pub fn of(samples_ns: &[u64]) -> Timing {
        if samples_ns.is_empty() {
            return Timing::default();
        }
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        let median = median_of(&sorted);
        let mut devs: Vec<u64> = sorted.iter().map(|&x| x.abs_diff(median)).collect();
        devs.sort_unstable();
        let mad = median_of(&devs);
        // With MAD = 0 (e.g. < 3 samples, or a perfectly flat run) the
        // rejection band collapses to the median itself; treat every
        // sample as inlying rather than rejecting all noise.
        let cutoff = mad.saturating_mul(5);
        let (mut kept_sum, mut kept) = (0u128, 0usize);
        for &x in &sorted {
            if mad == 0 || x.abs_diff(median) <= cutoff {
                kept_sum += x as u128;
                kept += 1;
            }
        }
        Timing {
            median_ns: median,
            mad_ns: mad,
            mean_ns: if kept == 0 {
                0
            } else {
                (kept_sum / kept as u128) as u64
            },
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            rejected: sorted.len() - kept,
        }
    }
}

/// Runs `f` for `warmup` untimed iterations, then `iters` timed ones,
/// returning one nanosecond sample per timed iteration. The closure's
/// return value is passed through [`black_box`] so the compiler cannot
/// discard the benched work.
pub fn measure<T, F: FnMut() -> T>(warmup: usize, iters: usize, mut f: F) -> Vec<u64> {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        samples.push(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_of_odd_and_even_sample_counts() {
        let t = Timing::of(&[30, 10, 20]);
        assert_eq!(t.median_ns, 20);
        assert_eq!(t.min_ns, 10);
        assert_eq!(t.max_ns, 30);
        let t = Timing::of(&[10, 20, 30, 40]);
        assert_eq!(t.median_ns, 25);
    }

    #[test]
    fn timing_rejects_far_outliers_only() {
        // median 100, MAD 10 → cutoff 50; the 10_000 sample is out.
        let t = Timing::of(&[90, 100, 100, 110, 10_000]);
        assert_eq!(t.median_ns, 100);
        assert_eq!(t.rejected, 1);
        assert_eq!(t.max_ns, 10_000, "max documents the outlier");
        assert!(t.mean_ns <= 110);
    }

    #[test]
    fn timing_survives_flat_samples() {
        let t = Timing::of(&[50, 50, 50]);
        assert_eq!(t.mad_ns, 0);
        assert_eq!(t.rejected, 0);
        assert_eq!(t.mean_ns, 50);
    }

    #[test]
    fn measure_produces_one_sample_per_iter() {
        let mut calls = 0;
        let samples = measure(2, 5, || {
            calls += 1;
            calls
        });
        assert_eq!(samples.len(), 5);
        assert_eq!(calls, 7, "warmup + timed iterations");
    }
}
