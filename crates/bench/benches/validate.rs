//! E6 — the "certified optimizer" claim as translation validation:
//! optimize + validate (SEQ only) end to end, split by the refinement
//! notion the validation needs.
//!
//! Expected shape: validation dominates optimization by orders of
//! magnitude (it explores SEQ configuration spaces), and advanced
//! validation (the simulation game) is costlier than the simple
//! behavior-set check on the same pair.

use criterion::{criterion_group, criterion_main, Criterion};
use seqwm_lang::parser::parse_program;
use seqwm_opt::pipeline::{Pipeline, PipelineConfig};
use seqwm_opt::validate::optimize_validated;
use seqwm_seq::advanced::refines_advanced;
use seqwm_seq::refine::{refines_simple, RefineConfig};

fn fig4() -> seqwm_lang::Program {
    parse_program(
        "store[na](x, 42);
         l := load[acq](y);
         if (l == 0) { a := load[na](x); }
         store[rel](y, 1);
         b := load[na](x);
         return b;",
    )
    .unwrap()
}

fn bench_optimize_only(c: &mut Criterion) {
    let prog = fig4();
    c.bench_function("E6/optimize-only", |b| {
        b.iter(|| Pipeline::default().optimize(&prog).total_rewrites())
    });
}

fn bench_optimize_and_validate(c: &mut Criterion) {
    let prog = fig4();
    c.bench_function("E6/optimize-and-validate", |b| {
        b.iter(|| {
            optimize_validated(&prog, PipelineConfig::default(), &RefineConfig::default())
                .unwrap()
                .result
                .total_rewrites()
        })
    });
}

fn bench_simple_vs_advanced_on_same_pair(c: &mut Criterion) {
    // The Example 3.5 pair: refuted by simple, validated by advanced.
    let src = parse_program("store[na](x, 1); store[rel](y, 5); store[na](x, 2);").unwrap();
    let tgt = parse_program("store[rel](y, 5); store[na](x, 2);").unwrap();
    let cfg = RefineConfig::default();
    let mut group = c.benchmark_group("E6/notion-cost");
    group.bench_function("simple(refutes)", |b| {
        b.iter(|| refines_simple(&src, &tgt, &cfg).unwrap().holds)
    });
    group.bench_function("advanced(validates)", |b| {
        b.iter(|| refines_advanced(&src, &tgt, &cfg).unwrap().holds)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_optimize_only, bench_optimize_and_validate, bench_simple_vs_advanced_on_same_pair
}
criterion_main!(benches);
