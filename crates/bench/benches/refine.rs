//! E2/E3 — the refinement checkers on the paper-example corpus.
//!
//! E2 benches the *simple* checker (Def. 2.4, behavior-set inclusion) on
//! the whole corpus; E3 benches the *advanced* checker (Def. 3.3, the
//! simulation game of Fig. 6) on the §3 cases that need it. An ablation
//! compares the default initial-`F` quantification against the full
//! subset quantification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqwm_litmus::transform::{transform_corpus, Expectation};
use seqwm_seq::advanced::refines_advanced;
use seqwm_seq::refine::{refines_simple, RefineConfig, WrittenQuant};

fn bench_simple_corpus(c: &mut Criterion) {
    let cfg = RefineConfig::default();
    let corpus = transform_corpus();
    c.bench_function("E2/simple-checker-full-corpus", |b| {
        b.iter(|| {
            let mut holds = 0;
            for case in &corpus {
                if refines_simple(&case.src_program(), &case.tgt_program(), &cfg)
                    .map(|o| o.holds)
                    .unwrap_or(false)
                {
                    holds += 1;
                }
            }
            holds
        })
    });
}

fn bench_advanced_cases(c: &mut Criterion) {
    let cfg = RefineConfig::default();
    let mut group = c.benchmark_group("E3/advanced-checker");
    for case in transform_corpus() {
        if case.expectation != Expectation::AdvancedOnly {
            continue;
        }
        let src = case.src_program();
        let tgt = case.tgt_program();
        group.bench_with_input(BenchmarkId::from_parameter(case.name), &case, |b, _| {
            b.iter(|| refines_advanced(&src, &tgt, &cfg).unwrap().holds)
        });
    }
    group.finish();
}

fn bench_written_quant_ablation(c: &mut Criterion) {
    let case = seqwm_litmus::transform::find_case("slf-across-rel-write").unwrap();
    let src = case.src_program();
    let tgt = case.tgt_program();
    let mut group = c.benchmark_group("E2/ablation-initial-written-quantification");
    for (name, quant) in [
        ("empty", WrittenQuant::Empty),
        ("empty+full", WrittenQuant::EmptyAndFull),
        ("all-subsets", WrittenQuant::AllSubsets),
    ] {
        let cfg = RefineConfig {
            written_quant: quant,
            ..RefineConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| refines_simple(&src, &tgt, &cfg).unwrap().holds)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simple_corpus, bench_advanced_cases, bench_written_quant_ablation
}
criterion_main!(benches);
