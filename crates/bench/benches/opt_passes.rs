//! E4/E5 — optimizer pass throughput: each pass and the whole pipeline on
//! synthetic programs of growing size, plus the Fig. 4 program and the
//! LICM loop workload.
//!
//! Expected shape: every pass is (near-)linear in program size; LICM's
//! cost is dominated by the LLF stage it runs internally.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seqwm_bench::{loopy_program, synthetic_program};
use seqwm_lang::parser::parse_program;
use seqwm_opt::pipeline::{PassKind, Pipeline, PipelineConfig};

fn bench_passes_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4-E5/pass-throughput");
    for n in [10usize, 100, 1000] {
        let prog = synthetic_program(n);
        group.throughput(Throughput::Elements(n as u64));
        for pass in PassKind::all() {
            group.bench_with_input(
                BenchmarkId::new(pass.to_string(), n),
                &prog,
                |b, prog| b.iter(|| pass.run(prog).1.rewrites),
            );
        }
        group.bench_with_input(BenchmarkId::new("pipeline", n), &prog, |b, prog| {
            b.iter(|| Pipeline::default().optimize(prog).total_rewrites())
        });
    }
    group.finish();
}

fn bench_figure_4(c: &mut Criterion) {
    let prog = parse_program(
        "store[na](x, 42);
         l := load[acq](y);
         if (l == 0) { a := load[na](x); }
         store[rel](y, 1);
         b := load[na](x);
         return b;",
    )
    .unwrap();
    c.bench_function("E4/figure-4-slf", |b| {
        b.iter(|| PassKind::Slf.run(&prog).1.rewrites)
    });
}

fn bench_licm_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5/licm-loops");
    for loops in [1usize, 8, 32] {
        let prog = loopy_program(loops);
        group.bench_with_input(BenchmarkId::from_parameter(loops), &prog, |b, prog| {
            b.iter(|| PassKind::Licm.run(prog).1.rewrites)
        });
    }
    group.finish();
}

fn bench_pipeline_rounds(c: &mut Criterion) {
    // Ablation: one round vs two rounds (rewrites enabling rewrites).
    let prog = synthetic_program(200);
    let mut group = c.benchmark_group("E5/ablation-pipeline-rounds");
    for rounds in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &r| {
            let cfg = PipelineConfig {
                rounds: r,
                ..PipelineConfig::default()
            };
            b.iter(|| Pipeline::new(cfg.clone()).optimize(&prog).total_rewrites())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_passes_scaling, bench_figure_4, bench_licm_loops, bench_pipeline_rounds
}
criterion_main!(benches);
