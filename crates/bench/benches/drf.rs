//! E9 — the DRF experiments: exploration cost of the three machines
//! (SC ⊂ RA ⊂ PS^na) on race-free and racy programs, reproducing the
//! model-comparison rows of EXPERIMENTS.md.
//!
//! Expected shape: SC ≪ RA (views add per-thread state) ≪ PS^na with
//! promises (certified speculation multiplies branching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_promising::drf::drf_check;
use seqwm_promising::machine::explore;
use seqwm_promising::sc::{explore_sc, ScConfig};
use seqwm_promising::thread::PsConfig;

fn mp() -> Vec<Program> {
    vec![
        parse_program("store[na](dbd, 1); store[rel](dbf, 1); return 0;").unwrap(),
        parse_program(
            "a := load[acq](dbf); if (a == 1) { b := load[na](dbd); } return a;",
        )
        .unwrap(),
    ]
}

fn bench_three_machines(c: &mut Criterion) {
    let progs = mp();
    let mut group = c.benchmark_group("E9/machines-on-MP");
    group.bench_function("SC", |b| {
        b.iter(|| explore_sc(&progs, &ScConfig::default()).states)
    });
    group.bench_function("RA(promise-free)", |b| {
        b.iter(|| explore(&progs, &PsConfig::default()).states)
    });
    group.bench_function("PSna(promises)", |b| {
        let refs: Vec<&Program> = progs.iter().collect();
        let cfg = PsConfig::with_promises(&refs);
        b.iter(|| explore(&progs, &cfg).states)
    });
    group.finish();
}

fn bench_drf_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9/drf-check");
    group.sample_size(10);
    let cases: Vec<(&str, Vec<Program>)> = vec![
        ("MP-race-free", mp()),
        (
            "WW-racy",
            vec![
                parse_program("store[na](dwx, 1); return 0;").unwrap(),
                parse_program("store[na](dwx, 2); return 0;").unwrap(),
            ],
        ),
    ];
    for (name, progs) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), progs, |b, progs| {
            b.iter(|| {
                let r = drf_check(progs, false);
                (r.racy, r.ps_equals_ra, r.ra_equals_sc)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_three_machines, bench_drf_check
}
criterion_main!(benches);
