//! E7/E10 — PS^na bounded-exhaustive exploration on the litmus classics,
//! with ablations: promise budget 0/1/2 and non-atomic race markers
//! on/off.
//!
//! Expected shape: promise budget dominates cost (each budget unit
//! multiplies the branching by promise sites × values × views); markers
//! roughly double non-atomic write branching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_promising::machine::explore;
use seqwm_promising::thread::PsConfig;

fn threads(srcs: &[&str]) -> Vec<Program> {
    srcs.iter().map(|s| parse_program(s).unwrap()).collect()
}

fn bench_classics(c: &mut Criterion) {
    let cases: Vec<(&str, Vec<Program>)> = vec![
        (
            "SB",
            threads(&[
                "store[rlx](px, 1); a := load[rlx](py); return a;",
                "store[rlx](py, 1); b := load[rlx](px); return b;",
            ]),
        ),
        (
            "MP",
            threads(&[
                "store[na](pd, 1); store[rel](pf, 1); return 0;",
                "a := load[acq](pf); if (a == 1) { b := load[na](pd); } return a;",
            ]),
        ),
        (
            "CoRR",
            threads(&[
                "store[rlx](pc, 1); return 0;",
                "a := load[rlx](pc); b := load[rlx](pc); return a + b;",
            ]),
        ),
    ];
    let cfg = PsConfig::default();
    let mut group = c.benchmark_group("E7/classics-promise-free");
    for (name, progs) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), progs, |b, progs| {
            b.iter(|| explore(progs, &cfg).states)
        });
    }
    group.finish();
}

fn bench_promise_budget_ablation(c: &mut Criterion) {
    let progs = threads(&[
        "a := load[rlx](pbx); store[rlx](pby, 1); return a;",
        "b := load[rlx](pby); store[rlx](pbx, 1); return b;",
    ]);
    let refs: Vec<&Program> = progs.iter().collect();
    let mut group = c.benchmark_group("E7/ablation-promise-budget");
    group.sample_size(10);
    for budget in [0u32, 1, 2] {
        let mut cfg = PsConfig::with_promises(&refs);
        cfg.allow_promises = budget > 0;
        cfg.max_promises_per_thread = budget;
        // Equal state cap across budgets: the measurement is wall-time to
        // exhaust the (capped) state space.
        cfg.max_states = 30_000;
        group.bench_with_input(BenchmarkId::from_parameter(budget), &cfg, |b, cfg| {
            b.iter(|| explore(&progs, cfg).states)
        });
    }
    group.finish();
}

fn bench_marker_ablation(c: &mut Criterion) {
    let progs = threads(&[
        "store[na](pmx, 1); store[na](pmy, 1); return 0;",
        "a := load[rlx](pmz); store[rlx](pmz, 1); return a;",
    ]);
    let mut group = c.benchmark_group("E7/ablation-na-race-markers");
    for markers in [false, true] {
        let cfg = PsConfig {
            na_race_markers: markers,
            ..PsConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(markers), &cfg, |b, cfg| {
            b.iter(|| explore(&progs, cfg).states)
        });
    }
    group.finish();
}

fn bench_appendix_c(c: &mut Criterion) {
    // E10: the App. C counterexample target (the expensive promise case).
    let progs = threads(&[
        "a := load[rlx](qcx); store[rlx](qcy, a); return 0;",
        "store[rel](qcx, 0);
         b := choose(0, 1);
         if (b == 1) {
             c := load[rlx](qcy);
             if (c == 1) { store[rlx](qcx, 1); print(1); }
         } else { store[rlx](qcx, 1); }
         return 0;",
    ]);
    let refs: Vec<&Program> = progs.iter().collect();
    let mut cfg = PsConfig::with_promises(&refs);
    cfg.max_states = 30_000;
    let mut group = c.benchmark_group("E10/appendix-c");
    group.sample_size(10);
    group.bench_function("target-with-promises", |b| {
        b.iter(|| explore(&progs, &cfg).states)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classics, bench_promise_budget_ablation, bench_marker_ablation, bench_appendix_c
}
criterion_main!(benches);
