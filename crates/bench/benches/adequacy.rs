//! E8 — the adequacy differential harness: the cost of one full round
//! (generate → optimize → SEQ-check → PS^na contextual differential).

use criterion::{criterion_group, criterion_main, Criterion};
use seqwm_explore::SplitMix64;
use seqwm_litmus::gen::{random_context, random_program, GenConfig};
use seqwm_opt::pipeline::Pipeline;
use seqwm_promising::machine::{explore, ps_behaviors_refine};
use seqwm_promising::thread::PsConfig;
use seqwm_seq::refine::{refines_advanced_or_simple_config, RefineConfig};

fn bench_one_round(c: &mut Criterion) {
    let gen_cfg = GenConfig {
        max_stmts: 4,
        ..GenConfig::default()
    };
    let refine_cfg = RefineConfig {
        max_steps: 48,
        ..RefineConfig::default()
    };
    let ps_cfg = PsConfig::default();
    let pipeline = Pipeline::default();
    let mut group = c.benchmark_group("E8/adequacy-round");
    group.sample_size(10);
    group.bench_function("generate+optimize+seq+psna", |b| {
        let mut rng = SplitMix64::new(0xE8);
        b.iter(|| {
            let src = random_program(&mut rng, &gen_cfg);
            let out = pipeline.optimize(&src);
            let seq_ok =
                refines_advanced_or_simple_config(&src, &out.program, &refine_cfg).is_ok();
            let ctx = random_context(&mut rng, &gen_cfg);
            let sb = explore(&[src, ctx.clone()], &ps_cfg);
            let tb = explore(&[out.program, ctx], &ps_cfg);
            let ps_ok = ps_behaviors_refine(&tb.behaviors, &sb.behaviors).is_ok();
            assert!(seq_ok && ps_ok, "adequacy violated in bench!");
            sb.states + tb.states
        })
    });
    group.finish();
}

criterion_group!(benches, bench_one_round);
criterion_main!(benches);
