//! E1 — the SEQ machine (Fig. 1): transition enumeration and behavior-set
//! enumeration cost as the footprint and value domain grow.
//!
//! Expected shape: behavior enumeration is exponential in the number of
//! acquire/release operations (environment choices) and polynomial in
//! straight-line non-atomic code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqwm_lang::parser::parse_program;
use seqwm_seq::behavior::enumerate_behaviors;
use seqwm_seq::machine::{EnumDomain, Memory, SeqState};

fn na_program(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        s.push_str(&format!("store[na](sqx{}, 1); a := load[na](sqx{});\n", i % 2, i % 2));
    }
    s.push_str("return a;");
    s
}

fn sync_program(n: usize) -> String {
    let mut s = String::from("store[na](sqd, 1);\n");
    for _ in 0..n {
        s.push_str("f := load[acq](sqf); store[rel](sqf, 1);\n");
    }
    s.push_str("b := load[na](sqd); return b;");
    s
}

fn bench_behavior_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1/seq-behaviors");
    for n in [2usize, 8, 32] {
        let prog = parse_program(&na_program(n)).unwrap();
        let dom = EnumDomain::for_program(&prog);
        let perm = dom.na_locs.iter().copied().collect();
        let st = SeqState::new(&prog, perm, Default::default(), Memory::new());
        group.bench_with_input(BenchmarkId::new("straight-line-na", n), &n, |b, _| {
            b.iter(|| enumerate_behaviors(&st, &dom).len())
        });
    }
    for n in [1usize, 2, 3] {
        let prog = parse_program(&sync_program(n)).unwrap();
        let dom = EnumDomain::for_program(&prog);
        let perm = dom.na_locs.iter().copied().collect();
        let st = SeqState::new(&prog, perm, Default::default(), Memory::new());
        group.bench_with_input(BenchmarkId::new("acq-rel-pairs", n), &n, |b, _| {
            b.iter(|| enumerate_behaviors(&st, &dom).len())
        });
    }
    group.finish();
}

fn bench_transitions(c: &mut Criterion) {
    let prog = parse_program("a := load[acq](tqf); b := load[na](tqd); return b;").unwrap();
    let dom = EnumDomain::for_program(&prog);
    let st = SeqState::new(&prog, Default::default(), Default::default(), Memory::new());
    let at_acq = st.unlabeled_path(&dom).last().unwrap().clone();
    c.bench_function("E1/acq-transition-enumeration", |b| {
        b.iter(|| at_acq.transitions(&dom).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_behavior_enumeration, bench_transitions
}
criterion_main!(benches);
