//! E11 — the `seqwm-explore` engine: cost of exploring representative
//! litmus state spaces across engine configurations (reduction on/off,
//! worker counts, visited-set modes).
//!
//! Expected shape: the interleaving reduction shrinks the raw state
//! count super-linearly in the number of independent threads
//! (`mp-chain-4` collapses ~18×); fingerprint dedup beats the exact
//! visited set on memory without changing behavior sets; workers help
//! once per-state work dominates queue contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqwm_explore::{ExploreConfig, VisitedMode};
use seqwm_litmus::concurrent::find_concurrent;
use seqwm_promising::search::{engine_config, explore_engine};

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11/reduction");
    group.sample_size(10);
    for name in ["sb-rlx", "2+2w-rlx", "mp-chain-4"] {
        let case = find_concurrent(name).expect("corpus case");
        let progs = case.programs();
        let cfg = case.config();
        for reduction in [false, true] {
            let ecfg = ExploreConfig {
                reduction,
                ..engine_config(&cfg)
            };
            group.bench_with_input(
                BenchmarkId::new(name, if reduction { "reduced" } else { "full" }),
                &ecfg,
                |b, ecfg| b.iter(|| explore_engine(&progs, &cfg, ecfg).stats.states),
            );
        }
    }
    group.finish();
}

fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11/workers");
    group.sample_size(10);
    let case = find_concurrent("mp-chain-4").expect("corpus case");
    let progs = case.programs();
    let cfg = case.config();
    for workers in [1usize, 2, 4] {
        let ecfg = ExploreConfig {
            workers,
            ..engine_config(&cfg)
        };
        group.bench_with_input(BenchmarkId::from_parameter(workers), &ecfg, |b, ecfg| {
            b.iter(|| explore_engine(&progs, &cfg, ecfg).stats.states)
        });
    }
    group.finish();
}

fn bench_visited_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11/visited");
    group.sample_size(10);
    let case = find_concurrent("2+2w-rlx").expect("corpus case");
    let progs = case.programs();
    let cfg = case.config();
    for (label, mode) in [
        ("fp64", VisitedMode::Fp64),
        ("fp128", VisitedMode::Fp128),
        ("exact", VisitedMode::Exact),
    ] {
        let ecfg = ExploreConfig {
            visited: mode,
            ..engine_config(&cfg)
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &ecfg, |b, ecfg| {
            b.iter(|| explore_engine(&progs, &cfg, ecfg).stats.states)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction, bench_workers, bench_visited_modes);
criterion_main!(benches);
