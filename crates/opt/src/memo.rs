//! The validation memo cache: fingerprint-keyed, CRC-enveloped,
//! disk-backed.
//!
//! Discharging a PS^na obligation costs model-checker explorations;
//! revalidating a source/target pair the validator has already judged
//! should cost a hash lookup. Every entry is one file,
//! `{fp:016x}.json`, holding a versioned `{v, crc, payload}` envelope
//! (the same convention as the serve daemon's persistent state — this
//! crate sits below `seqwm-serve` in the dependency order, so the
//! envelope is implemented here rather than imported). The payload
//! stores the *full* key text alongside the verdict, so a fingerprint
//! collision degrades to a miss instead of a wrong verdict.
//!
//! Corrupt entries are never trusted and never deleted in place: they
//! are moved into `quarantine/` (numbered on name collision) for
//! post-mortem, exactly like the serve cache. Capacity pressure evicts
//! the least-recently-used entry, file included. Both *validated* and
//! *refuted* verdicts are cached — the determinism contract is that a
//! cached verdict and a fresh one agree, whichever way they point.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use seqwm_explore::counters::{OPT_CACHE_HITS, OPT_CACHE_MISSES};
use seqwm_explore::fp64;
use seqwm_json::Json;

/// Envelope version for memo records.
pub const MEMO_VERSION: u64 = 1;

fn payload_crc(payload: &Json) -> String {
    format!("{:016x}", fp64(&payload.to_string()))
}

/// Wraps a payload in the versioned, checksummed envelope.
fn wrap(payload: &Json) -> Json {
    Json::obj(vec![
        ("v", Json::num(MEMO_VERSION)),
        ("crc", Json::str(payload_crc(payload))),
        ("payload", payload.clone()),
    ])
}

/// Validates an envelope and returns its payload.
fn unwrap(text: &str) -> Result<Json, String> {
    let doc = Json::parse(text)?;
    let v = doc
        .get("v")
        .and_then(|v| v.as_u64("v").ok())
        .ok_or_else(|| "missing version field".to_string())?;
    if v != MEMO_VERSION {
        return Err(format!("unsupported memo version {v}"));
    }
    let recorded = doc
        .get("crc")
        .and_then(|c| c.as_str("crc").ok())
        .ok_or_else(|| "missing crc field".to_string())?
        .to_string();
    let payload = doc
        .get("payload")
        .ok_or_else(|| "missing payload field".to_string())?;
    let actual = payload_crc(payload);
    if actual != recorded {
        return Err(format!(
            "checksum mismatch: recorded {recorded}, actual {actual}"
        ));
    }
    Ok(payload.clone())
}

/// Atomically writes an enveloped payload (temp file + rename in the
/// same directory). Best-effort: returns whether the write landed.
fn write_record(path: &Path, payload: &Json) -> bool {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("record");
    let tmp = dir.join(format!(".{stem}-{}.tmp", std::process::id()));
    let ok = fs::write(&tmp, wrap(payload).to_string())
        .and_then(|()| fs::rename(&tmp, path))
        .is_ok();
    if !ok {
        let _ = fs::remove_file(&tmp);
    }
    ok
}

/// A memoized validation verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CachedVerdict {
    /// Did the rewrite validate?
    pub ok: bool,
    /// `"simple"`, `"advanced"`, or `"ps-na"` when `ok`; the refutation
    /// detail otherwise.
    pub info: String,
}

struct Entry {
    key: String,
    verdict: CachedVerdict,
    last_used: u64,
}

/// Point-in-time cache accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to be discharged fresh.
    pub misses: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
    /// Corrupt records moved to quarantine at open.
    pub quarantined: u64,
}

/// The disk-backed validation memo cache.
pub struct ValidationCache {
    dir: PathBuf,
    capacity: usize,
    inner: Mutex<HashMap<u64, Entry>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
}

impl ValidationCache {
    /// Opens (or creates) a cache rooted at `dir`, scanning existing
    /// `{fp}.json` records. Corrupt records are quarantined into
    /// `dir/quarantine/`; if the directory holds more valid entries
    /// than `capacity`, the excess is evicted immediately.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failure.
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> std::io::Result<ValidationCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let cache = ValidationCache {
            dir: dir.clone(),
            capacity: capacity.max(1),
            inner: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        };
        let mut names: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)?.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(hex) = name.strip_suffix(".json") else {
                continue;
            };
            let Ok(fp) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            names.push((fp, path));
        }
        names.sort();
        {
            let mut map = cache.lock();
            for (fp, path) in names {
                match fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|t| unwrap(&t))
                    .and_then(|p| parse_payload(&p))
                {
                    Ok((key, verdict)) => {
                        let tick = cache.clock.fetch_add(1, Ordering::Relaxed);
                        map.insert(
                            fp,
                            Entry {
                                key,
                                verdict,
                                last_used: tick,
                            },
                        );
                    }
                    Err(_) => {
                        cache.quarantine(&path);
                    }
                }
            }
            while map.len() > cache.capacity {
                cache.evict_one(&mut map);
            }
        }
        Ok(cache)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Entry>> {
        // A panic while holding the lock leaves plain data; recover.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn quarantine(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let qdir = self.dir.join("quarantine");
        if fs::create_dir_all(&qdir).is_err() {
            let _ = fs::remove_file(path);
            return;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("corrupt")
            .to_string();
        let mut dest = qdir.join(&name);
        let mut n = 0u32;
        while dest.exists() && n < 32 {
            n += 1;
            dest = qdir.join(format!("{name}.{n}"));
        }
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }

    fn entry_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.json"))
    }

    fn evict_one(&self, map: &mut HashMap<u64, Entry>) {
        let Some(victim) = map
            .iter()
            .min_by_key(|(fp, e)| (e.last_used, **fp))
            .map(|(fp, _)| *fp)
        else {
            return;
        };
        map.remove(&victim);
        let _ = fs::remove_file(self.entry_path(victim));
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a verdict by fingerprint, guarding against collisions
    /// with the full key. A hit refreshes recency.
    pub fn get(&self, fp: u64, key: &str) -> Option<CachedVerdict> {
        let mut map = self.lock();
        let hit = match map.get_mut(&fp) {
            Some(e) if e.key == key => {
                e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                Some(e.verdict.clone())
            }
            _ => None,
        };
        drop(map);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            OPT_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            OPT_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records a verdict, persisting it and evicting under capacity
    /// pressure.
    pub fn put(&self, fp: u64, key: &str, verdict: &CachedVerdict) {
        let payload = Json::obj(vec![
            ("key", Json::str(key)),
            ("ok", Json::Bool(verdict.ok)),
            ("info", Json::str(verdict.info.clone())),
        ]);
        write_record(&self.entry_path(fp), &payload);
        let mut map = self.lock();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        map.insert(
            fp,
            Entry {
                key: key.to_string(),
                verdict: verdict.clone(),
                last_used: tick,
            },
        );
        while map.len() > self.capacity {
            self.evict_one(&mut map);
        }
    }

    /// Current accounting.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.lock().len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn parse_payload(p: &Json) -> Result<(String, CachedVerdict), String> {
    let key = p
        .get("key")
        .ok_or("missing key")?
        .as_str("key")?
        .to_string();
    let ok = p.get("ok").ok_or("missing ok")?.as_bool("ok")?;
    let info = p
        .get("info")
        .ok_or("missing info")?
        .as_str("info")?
        .to_string();
    Ok((key, CachedVerdict { ok, info }))
}

/// The stable fingerprint of a full memo key: the envelope files are
/// named by this.
pub fn key_fingerprint(key: &str) -> u64 {
    fp64(key)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seqwm-opt-memo-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn v(ok: bool, info: &str) -> CachedVerdict {
        CachedVerdict {
            ok,
            info: info.to_string(),
        }
    }

    #[test]
    fn hit_after_put_and_miss_before() {
        let dir = temp_dir("hit");
        let cache = ValidationCache::open(&dir, 8).unwrap();
        let fp = key_fingerprint("k1");
        assert_eq!(cache.get(fp, "k1"), None);
        cache.put(fp, "k1", &v(true, "simple"));
        assert_eq!(cache.get(fp, "k1"), Some(v(true, "simple")));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn collision_with_different_key_is_a_miss() {
        let dir = temp_dir("coll");
        let cache = ValidationCache::open(&dir, 8).unwrap();
        cache.put(7, "the-real-key", &v(true, "ps-na"));
        assert_eq!(cache.get(7, "an-impostor"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let cache = ValidationCache::open(&dir, 8).unwrap();
            cache.put(1, "a", &v(true, "advanced"));
            cache.put(2, "b", &v(false, "unmatched behavior"));
        }
        let cache = ValidationCache::open(&dir, 8).unwrap();
        assert_eq!(cache.get(1, "a"), Some(v(true, "advanced")));
        assert_eq!(cache.get(2, "b"), Some(v(false, "unmatched behavior")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_removes_files_and_counts() {
        let dir = temp_dir("lru");
        let cache = ValidationCache::open(&dir, 2).unwrap();
        cache.put(1, "a", &v(true, "simple"));
        cache.put(2, "b", &v(true, "simple"));
        assert!(cache.get(1, "a").is_some()); // refresh 1: victim is 2
        cache.put(3, "c", &v(true, "simple"));
        assert_eq!(cache.stats().evictions, 1);
        assert!(!cache.entry_path(2).exists());
        assert!(cache.entry_path(1).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_shrinks_to_capacity() {
        let dir = temp_dir("shrink");
        {
            let cache = ValidationCache::open(&dir, 8).unwrap();
            for fp in 0..6u64 {
                cache.put(fp, &format!("k{fp}"), &v(true, "simple"));
            }
        }
        let cache = ValidationCache::open(&dir, 2).unwrap();
        assert_eq!(cache.stats().entries, 2);
        let remaining = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count();
        assert_eq!(remaining, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_quarantine_on_open() {
        let dir = temp_dir("quarantine");
        {
            let cache = ValidationCache::open(&dir, 8).unwrap();
            cache.put(1, "good", &v(true, "simple"));
            cache.put(2, "bad", &v(true, "simple"));
        }
        // Flip the middle of record 2: the envelope parses but the CRC
        // no longer matches.
        let victim = dir.join(format!("{:016x}.json", 2u64));
        let mut text = fs::read_to_string(&victim).unwrap();
        text = text.replace("good", "go0d").replace("bad", "b4d");
        fs::write(&victim, text).unwrap();
        let cache = ValidationCache::open(&dir, 8).unwrap();
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.get(key_fingerprint("x"), "x").is_none());
        assert!(!victim.exists());
        assert!(dir
            .join("quarantine")
            .join(format!("{:016x}.json", 2u64))
            .exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn envelope_round_trips() {
        let p = Json::obj(vec![("key", Json::str("k")), ("ok", Json::Bool(true))]);
        let text = wrap(&p).to_string();
        assert_eq!(unwrap(&text).unwrap(), p);
        assert!(unwrap("not json").is_err());
        assert!(unwrap("{\"v\": 99}").is_err());
    }
}
