//! Loop-invariant code motion (LICM) — App. D.
//!
//! Implemented in two stages, exactly as the paper describes:
//!
//! 1. **Load introduction**: for each loop, hoist a load of every
//!    candidate location into a fresh register before the loop. Candidates
//!    are non-atomic locations read in the body, not written in the body,
//!    with no acquire in the body. Introducing an *irrelevant* load is
//!    unconditionally sound in SEQ (Example 2.8) — this is exactly the
//!    transformation that catch-fire models forbid (Example 1.3) and this
//!    paper's model validates.
//! 2. **Forwarding**: run load-to-load forwarding, which replaces the
//!    in-body loads by the hoisted register.
//! 3. **Dead-hoist pruning**: a hoisted register the forwarding stage
//!    never managed to route a read through is useless — drop its
//!    defining statement again. Without this the pass re-hoists the
//!    same location every run (the dangling `licm_k := …` grows the
//!    program unboundedly); with it the pass is idempotent, and
//!    `rewrites` counts only hoists that actually stuck.
//!
//! Stage 1's candidate analysis affects only *profitability*, never
//! soundness.

use std::collections::BTreeSet;

use seqwm_lang::{Loc, Program, ReadMode, Reg, Stmt, WriteMode};

use crate::llf::LoadToLoadForwarding;
use crate::pipeline::PassStats;
use crate::rmw::map_leaves;
use crate::slf::is_acquire;

/// The LICM pass.
pub struct LoopInvariantCodeMotion;

impl LoopInvariantCodeMotion {
    /// Runs the pass (hoisting + LLF + pruning) on a whole program.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new("licm");
        let used: BTreeSet<String> = prog.body.regs().iter().map(|r| r.name()).collect();
        let mut fresh = 0usize;
        let mut hoisted_regs = Vec::new();
        let hoisted = hoist(&prog.body, &mut fresh, &used, &mut hoisted_regs);
        // Stage 2: forward the hoisted loads into the loop bodies.
        let (forwarded, llf_stats) = LoadToLoadForwarding::run(&Program::new(hoisted));
        stats.note_iterations(llf_stats.max_fixpoint_iterations);
        // Stage 3: drop hoists nothing reads. One removal can orphan
        // another (an inner hoist read only by a dead outer one), so
        // iterate to a fixpoint.
        let mut body = forwarded.body;
        let mut live: Vec<Reg> = hoisted_regs;
        loop {
            let reads = read_regs(&body);
            let (kept, dead): (Vec<Reg>, Vec<Reg>) =
                live.into_iter().partition(|r| reads.contains(r));
            if dead.is_empty() {
                live = kept;
                break;
            }
            let dead: BTreeSet<Reg> = dead.into_iter().collect();
            body = map_leaves(&body, &mut |s| match s {
                Stmt::Load(r, _, _) | Stmt::Assign(r, _) if dead.contains(r) => Some(Stmt::Skip),
                _ => None,
            });
            live = kept;
        }
        stats.rewrites = live.len();
        // Hoisting splices blocks into the middle of `Seq` spines;
        // restore the parser's canonical right-nesting.
        (Program::new(body.normalized()), stats)
    }
}

/// Registers *read* anywhere in `s` — i.e. occurring in an expression
/// (as opposed to being a load/assign destination).
fn read_regs(s: &Stmt) -> BTreeSet<Reg> {
    let mut out = BTreeSet::new();
    s.visit(&mut |n| match n {
        Stmt::Assign(_, e)
        | Stmt::Store(_, _, e)
        | Stmt::Freeze(_, e)
        | Stmt::Print(e)
        | Stmt::Return(e)
        | Stmt::If(e, _, _)
        | Stmt::While(e, _) => out.extend(e.regs()),
        Stmt::Cas { expected, new, .. } => {
            out.extend(expected.regs());
            out.extend(new.regs());
        }
        Stmt::Fadd { operand, .. } => out.extend(operand.regs()),
        _ => {}
    });
    out
}

/// Locations loaded non-atomically anywhere in `s`.
fn na_reads(s: &Stmt) -> BTreeSet<Loc> {
    let mut out = BTreeSet::new();
    s.visit(&mut |n| {
        if let Stmt::Load(_, x, ReadMode::Na) = n {
            out.insert(*x);
        }
    });
    out
}

/// Locations written (by any write, na or atomic, or RMW) anywhere in `s`.
fn writes(s: &Stmt) -> BTreeSet<Loc> {
    let mut out = BTreeSet::new();
    s.visit(&mut |n| match n {
        Stmt::Store(x, _, _) => {
            out.insert(*x);
        }
        Stmt::Cas { loc, .. } | Stmt::Fadd { loc, .. } => {
            out.insert(*loc);
        }
        _ => {}
    });
    out
}

/// Does `s` contain an acquire anywhere?
fn contains_acquire(s: &Stmt) -> bool {
    let mut found = false;
    s.visit(&mut |n| {
        if is_acquire(n) {
            found = true;
        }
    });
    found
}

fn hoist(s: &Stmt, fresh: &mut usize, used: &BTreeSet<String>, regs: &mut Vec<Reg>) -> Stmt {
    match s {
        Stmt::Seq(a, b) => Stmt::seq(hoist(a, fresh, used, regs), hoist(b, fresh, used, regs)),
        Stmt::If(c, a, b) => Stmt::If(
            c.clone(),
            Box::new(hoist(a, fresh, used, regs)),
            Box::new(hoist(b, fresh, used, regs)),
        ),
        Stmt::While(c, body) => {
            // Inner loops first.
            let body = hoist(body, fresh, used, regs);
            let candidates: Vec<Loc> = if contains_acquire(&body) {
                Vec::new()
            } else {
                let ws = writes(&body);
                na_reads(&body)
                    .into_iter()
                    .filter(|x| !ws.contains(x))
                    .collect()
            };
            let mut prefix = Vec::new();
            for x in candidates {
                let mut name = format!("licm_{}", *fresh);
                *fresh += 1;
                while used.contains(&name) {
                    name = format!("licm_{}", *fresh);
                    *fresh += 1;
                }
                let r = Reg::new(&name);
                regs.push(r);
                prefix.push(Stmt::Load(r, x, ReadMode::Na));
            }
            prefix.push(Stmt::While(c.clone(), Box::new(body)));
            Stmt::block(prefix)
        }
        leaf => leaf.clone(),
    }
}

/// Exposes the candidate analysis for tests and diagnostics.
pub fn loop_candidates(body: &Stmt) -> BTreeSet<Loc> {
    if contains_acquire(body) {
        return BTreeSet::new();
    }
    let ws = writes(body);
    na_reads(body)
        .into_iter()
        .filter(|x| !ws.contains(x))
        .collect()
}

// Re-used by the pipeline to keep `WriteMode` imported meaningfully.
#[allow(dead_code)]
fn is_na_store(s: &Stmt) -> bool {
    matches!(s, Stmt::Store(_, WriteMode::Na, _))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn run(src: &str) -> (String, PassStats) {
        let p = parse_program(src).unwrap();
        let (out, stats) = LoopInvariantCodeMotion::run(&p);
        (out.to_string(), stats)
    }

    #[test]
    fn example_1_3_hoists_invariant_load() {
        // while B { α ; a := x_na ; β }  {  c := x_na ; while B { α ; a := c ; β }
        let (out, stats) = run("while (i < 3) { a := load[na](li1x); i := i + a; }
             return a;");
        assert!(out.contains("licm_"), "fresh hoisted register: {out}");
        assert!(
            out.starts_with("licm_"),
            "load hoisted before the loop: {out}"
        );
        assert!(out.contains("a := licm_"), "in-body load forwarded: {out}");
        assert_eq!(stats.rewrites, 1);
    }

    #[test]
    fn written_location_not_hoisted() {
        let (out, stats) =
            run("while (i < 3) { a := load[na](li2x); store[na](li2x, a + 1); i := i + 1; }");
        assert_eq!(stats.rewrites, 0, "{out}");
        assert!(out.contains("a := load[na](li2x);"));
    }

    #[test]
    fn acquire_in_body_blocks_hoisting() {
        let (out, stats) =
            run("while (i < 3) { f := load[acq](li3f); a := load[na](li3x); i := i + 1; }");
        assert_eq!(stats.rewrites, 0, "{out}");
    }

    #[test]
    fn release_in_body_does_not_block() {
        let (out, stats) =
            run("while (i < 3) { a := load[na](li4x); store[rel](li4f, 1); i := i + 1; }");
        assert_eq!(stats.rewrites, 1);
        assert!(out.contains("a := licm_"), "{out}");
    }

    #[test]
    fn nested_loops_hoist_inner_first() {
        let (out, stats) = run("while (i < 2) {
                 j := 0;
                 while (j < 2) { a := load[na](li5x); j := j + 1; }
                 i := i + 1;
             }");
        assert!(stats.rewrites >= 1, "{out}");
        // The hoisted load itself becomes invariant for the outer loop and
        // is hoisted again.
        assert_eq!(stats.rewrites, 2, "{out}");
    }

    #[test]
    fn candidate_analysis() {
        let body = parse_program("a := load[na](li6x); b := load[na](li6y); store[na](li6y, 1);")
            .unwrap()
            .body;
        let cands = loop_candidates(&body);
        assert!(cands.contains(&Loc::new("li6x")));
        assert!(!cands.contains(&Loc::new("li6y")));
    }
}
