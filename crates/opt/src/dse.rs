//! Dead store elimination (DSE) — the *backward* analysis of Fig. 8b
//! (App. D).
//!
//! At every program point the analysis assigns to each shared location one
//! of
//!
//! * `x ↦ ◦` — `x` is overwritten in the future, with no acquire read or
//!   read from `x` in between;
//! * `x ↦ •` — overwritten in the future; an acquire may intervene but no
//!   release or read from `x`;
//! * `x ↦ ⊤` — anything else,
//!
//! ordered `◦ ⊑ • ⊑ ⊤`. A store `x^na := e` whose *post*-token is `◦` or
//! `•` is rewritten to `skip`.
//!
//! Soundness of the `•` case requires the *advanced* refinement of §3
//! (Example 3.5): eliminating a store across a release write changes the
//! memory recorded on the release label, which only commitment sets can
//! absorb. The validator therefore checks DSE output with `⊑_w`.

use std::collections::BTreeMap;

use seqwm_lang::{Loc, Program, Stmt, WriteMode};

use crate::pipeline::PassStats;
use crate::slf::{is_acquire, is_release};

/// A DSE abstract token (Fig. 8b). `⊤` is absence from the map.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Token {
    /// `◦`: overwritten before any acquire or read of the location.
    Circle,
    /// `•`: overwritten; an acquire may intervene, a release may not.
    Bullet,
}

/// The backward abstract state: absent locations are `⊤`.
pub type State = BTreeMap<Loc, Token>;

/// Join (pointwise lub, toward `⊤`).
fn join(a: &State, b: &State) -> State {
    let mut out = State::new();
    for (x, ta) in a {
        if let Some(tb) = b.get(x) {
            let j = match (ta, tb) {
                (Token::Circle, Token::Circle) => Token::Circle,
                _ => Token::Bullet,
            };
            out.insert(*x, j);
        }
    }
    out
}

/// The backward transfer function `TB` of Fig. 8b, applied *after* the
/// statement's own rewriting decision.
fn transfer_backward(s: &Stmt, state: &mut State) {
    // Backward through a release: • → ⊤ (a release–acquire pair is
    // complete when moving further back).
    if is_release(s) {
        state.retain(|_, t| *t == Token::Circle);
    }
    // Backward through an acquire: ◦ → •.
    if is_acquire(s) {
        for t in state.values_mut() {
            *t = Token::Bullet;
        }
    }
    match s {
        // A store to x: before it, x is definitely overwritten.
        Stmt::Store(x, WriteMode::Na, _) => {
            state.insert(*x, Token::Circle);
        }
        Stmt::Store(x, _, _) | Stmt::Cas { loc: x, .. } | Stmt::Fadd { loc: x, .. } => {
            // Atomic writes overwrite too, but conservatively reset (the
            // pass only targets non-atomic stores; RMWs also read).
            state.remove(x);
        }
        // A read from x: its value is observed — not dead.
        Stmt::Load(_, x, _) => {
            state.remove(x);
        }
        // `print`/`return` observe registers only; `abort` is UB (anything
        // before it could be considered dead, but we stay conservative).
        _ => {}
    }
}

/// The DSE pass.
pub struct DeadStoreElimination;

impl DeadStoreElimination {
    /// Runs the pass on a whole program.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new("dse");
        let mut state = State::new(); // ⊤ everywhere at program exit
        let body = rewrite(&prog.body, &mut state, &mut stats);
        (Program::new(body), stats)
    }
}

/// Backward rewriting: `state` is the abstract state *after* `s` on entry
/// and is updated to the state *before* `s` on exit.
fn rewrite(s: &Stmt, state: &mut State, stats: &mut PassStats) -> Stmt {
    match s {
        Stmt::Seq(a, b) => {
            // Backward: process b first.
            let b2 = rewrite(b, state, stats);
            let a2 = rewrite(a, state, stats);
            Stmt::seq(a2, b2)
        }
        Stmt::If(c, a, b) => {
            let mut sa = state.clone();
            let mut sb = state.clone();
            let a2 = rewrite(a, &mut sa, stats);
            let b2 = rewrite(b, &mut sb, stats);
            *state = join(&sa, &sb);
            // The condition itself reads only registers.
            Stmt::If(c.clone(), Box::new(a2), Box::new(b2))
        }
        Stmt::While(c, body) => {
            // Backward fixpoint: the state at the loop head must be
            // invariant under (exit ⊔ one backward body pass).
            let exit = state.clone();
            let mut head = exit.clone();
            let mut iterations = 0;
            loop {
                iterations += 1;
                stats.note_iterations(iterations);
                let mut into_body = head.clone();
                let mut throwaway = PassStats::new("dse");
                let _ = rewrite(body, &mut into_body, &mut throwaway);
                let next = join(&exit, &into_body);
                if next == head {
                    break;
                }
                head = next;
                assert!(
                    iterations <= 8,
                    "DSE loop analysis failed to stabilize (paper bound: 3)"
                );
            }
            let mut body_state = head.clone();
            let body2 = rewrite(body, &mut body_state, stats);
            *state = head;
            Stmt::While(c.clone(), Box::new(body2))
        }
        // The rewrite: a dead non-atomic store becomes skip. Stores whose
        // expression may fault (division) are kept — eliminating them
        // would be sound (the source's UB matches everything) but we keep
        // observable faults for debuggability.
        Stmt::Store(x, WriteMode::Na, e) => {
            let dead = matches!(state.get(x), Some(Token::Circle | Token::Bullet));
            let faulting = expr_may_fault(e);
            if dead && !faulting {
                stats.rewrites += 1;
                // The store disappears; backward state unchanged (skip).
                Stmt::Skip
            } else {
                let out = s.clone();
                transfer_backward(&out, state);
                out
            }
        }
        leaf => {
            let out = leaf.clone();
            transfer_backward(&out, state);
            out
        }
    }
}

fn expr_may_fault(e: &seqwm_lang::Expr) -> bool {
    use seqwm_lang::expr::{BinOp, Expr};
    match e {
        Expr::Const(_) | Expr::Reg(_) => false,
        Expr::Un(_, a) => expr_may_fault(a),
        Expr::Bin(op, a, b) => {
            matches!(op, BinOp::Div | BinOp::Rem) || expr_may_fault(a) || expr_may_fault(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn run(src: &str) -> (String, PassStats) {
        let p = parse_program(src).unwrap();
        let (out, stats) = DeadStoreElimination::run(&p);
        (out.to_string(), stats)
    }

    #[test]
    fn overwritten_store_eliminated() {
        // Example 2.6 (i): x := v ; x := v'  {  x := v'.
        let (out, stats) = run("store[na](d1x, 1); store[na](d1x, 2);");
        assert!(!out.contains("store[na](d1x, 1);"), "{out}");
        assert!(out.contains("store[na](d1x, 2);"), "{out}");
        assert_eq!(stats.rewrites, 1);
    }

    #[test]
    fn read_in_between_blocks() {
        let (out, stats) =
            run("store[na](d2x, 1); a := load[na](d2x); store[na](d2x, 2); return a;");
        assert!(out.contains("store[na](d2x, 1);"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn dse_across_relaxed_and_acquire() {
        // Example 3.5 with α ∈ {rlx read, rlx write, acq read}: still dead.
        for alpha in [
            "b := load[rlx](d3y);",
            "store[rlx](d3y, 5);",
            "b := load[acq](d3y);",
        ] {
            let (out, stats) = run(&format!("store[na](d3x, 1); {alpha} store[na](d3x, 2);"));
            assert!(!out.contains("store[na](d3x, 1);"), "α={alpha}: {out}");
            assert_eq!(stats.rewrites, 1, "α = {alpha}");
        }
    }

    #[test]
    fn dse_across_release_write() {
        // Example 3.5 with α = release write — needs the • token (and the
        // advanced refinement for validation).
        let (out, stats) = run("store[na](d4x, 1); store[rel](d4y, 5); store[na](d4x, 2);");
        assert!(!out.contains("store[na](d4x, 1);"), "{out}");
        assert_eq!(stats.rewrites, 1);
    }

    #[test]
    fn release_acquire_pair_blocks() {
        // A full release–acquire pair between the stores: not dead.
        let (out, stats) =
            run("store[na](d5x, 1); store[rel](d5y, 1); a := load[acq](d5z); store[na](d5x, 2);");
        assert!(out.contains("store[na](d5x, 1);"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn branch_join() {
        // Overwritten on both branches → dead.
        let (out, _) = run("store[na](d6x, 1);
             l := load[rlx](d6f);
             if (l == 0) { store[na](d6x, 2); } else { store[na](d6x, 3); }");
        assert!(!out.contains("store[na](d6x, 1);"), "{out}");
        // Overwritten on one branch only → kept.
        let (out, _) = run("store[na](d7x, 1);
             l := load[rlx](d7f);
             if (l == 0) { store[na](d7x, 2); } else { skip; }");
        assert!(out.contains("store[na](d7x, 1);"), "{out}");
    }

    #[test]
    fn store_before_loop_that_overwrites() {
        let (out, stats) = run("store[na](d8x, 1);
             while (i < 3) { store[na](d8x, i); i := i + 1; }");
        // The loop may execute zero times → the pre-loop store is NOT dead.
        assert!(out.contains("store[na](d8x, 1);"), "{out}");
        assert!(stats.max_fixpoint_iterations <= 3);
    }

    #[test]
    fn consecutive_overwrites_in_loop_body() {
        let (out, stats) =
            run("while (i < 3) { store[na](d9x, 1); store[na](d9x, 2); i := i + 1; }");
        assert!(!out.contains("store[na](d9x, 1);"), "{out}");
        assert_eq!(stats.rewrites, 1);
    }

    #[test]
    fn faulting_store_expression_is_kept() {
        let (out, stats) = run("store[na](dfx, 1 / d); store[na](dfx, 2);");
        assert!(out.contains("store[na](dfx, (1 / d));"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn last_store_never_dead() {
        let (out, stats) = run("store[na](dlx, 1);");
        assert!(out.contains("store[na](dlx, 1);"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }
}
