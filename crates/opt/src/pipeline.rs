//! The optimization pipeline: the four passes of §4 plus the atomics
//! and promotion pass families, composable and instrumented.

use std::fmt;

use seqwm_lang::Program;

use crate::constprop::ConstProp;
use crate::dse::DeadStoreElimination;
use crate::fence::FenceOpt;
use crate::licm::LoopInvariantCodeMotion;
use crate::llf::LoadToLoadForwarding;
use crate::modes::AccessModeOpt;
use crate::promote::RegisterPromotion;
use crate::rmw::RmwOpt;
use crate::slf::StoreToLoadForwarding;

/// One of the optimization passes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PassKind {
    /// Store-to-load forwarding (§4, Fig. 3).
    Slf,
    /// Load-to-load forwarding (App. D, Fig. 8a).
    Llf,
    /// Dead store elimination (App. D, Fig. 8b).
    Dse,
    /// Loop-invariant code motion (App. D).
    Licm,
    /// Register constant propagation (extension pass; enables SLF on
    /// stores of registers).
    ConstProp,
    /// Access-mode strengthening/elimination ([`crate::modes`]).
    Modes,
    /// Fence elimination and merging ([`crate::fence`]).
    Fence,
    /// Redundant-RMW simplification ([`crate::rmw`]).
    Rmw,
    /// LDRF-gated non-atomic register promotion ([`crate::promote`]);
    /// run through [`PassKind::run`] it uses the closed-program gate.
    Promote,
}

impl PassKind {
    /// Runs this pass.
    pub fn run(self, prog: &Program) -> (Program, PassStats) {
        match self {
            PassKind::Slf => StoreToLoadForwarding::run(prog),
            PassKind::Llf => LoadToLoadForwarding::run(prog),
            PassKind::Dse => DeadStoreElimination::run(prog),
            PassKind::Licm => LoopInvariantCodeMotion::run(prog),
            PassKind::ConstProp => ConstProp::run(prog),
            PassKind::Modes => AccessModeOpt::run(prog),
            PassKind::Fence => FenceOpt::run(prog),
            PassKind::Rmw => RmwOpt::run(prog),
            PassKind::Promote => RegisterPromotion::run(prog),
        }
    }

    /// The four passes of §4 in the paper's order — the default
    /// pipeline.
    pub fn all() -> [PassKind; 4] {
        [PassKind::Slf, PassKind::Llf, PassKind::Dse, PassKind::Licm]
    }

    /// Every pass, paper passes first, then the atomics/promotion
    /// families.
    pub fn extended() -> Vec<PassKind> {
        vec![
            PassKind::Slf,
            PassKind::Llf,
            PassKind::Dse,
            PassKind::Licm,
            PassKind::ConstProp,
            PassKind::Modes,
            PassKind::Fence,
            PassKind::Rmw,
            PassKind::Promote,
        ]
    }

    /// Parses a pass name as printed by `Display`.
    pub fn parse(name: &str) -> Option<PassKind> {
        PassKind::extended()
            .into_iter()
            .find(|p| p.to_string() == name)
    }
}

impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassKind::Slf => write!(f, "slf"),
            PassKind::Llf => write!(f, "llf"),
            PassKind::Dse => write!(f, "dse"),
            PassKind::Licm => write!(f, "licm"),
            PassKind::ConstProp => write!(f, "constprop"),
            PassKind::Modes => write!(f, "modes"),
            PassKind::Fence => write!(f, "fence"),
            PassKind::Rmw => write!(f, "rmw"),
            PassKind::Promote => write!(f, "promote"),
        }
    }
}

/// Statistics collected by a single pass run.
#[derive(Clone, Debug)]
pub struct PassStats {
    /// Pass name.
    pub name: &'static str,
    /// Number of rewrites applied (forwarded loads, eliminated stores,
    /// hoisted loads).
    pub rewrites: usize,
    /// Maximum fixpoint iterations needed for any loop (the paper proves
    /// this is at most 3).
    pub max_fixpoint_iterations: usize,
}

impl PassStats {
    /// Fresh statistics for a named pass.
    pub fn new(name: &'static str) -> Self {
        PassStats {
            name,
            rewrites: 0,
            max_fixpoint_iterations: 0,
        }
    }

    /// Records a fixpoint iteration count.
    pub fn note_iterations(&mut self, n: usize) {
        self.max_fixpoint_iterations = self.max_fixpoint_iterations.max(n);
    }
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} rewrites (fixpoint ≤ {} iters)",
            self.name, self.rewrites, self.max_fixpoint_iterations
        )
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// The passes to run, in order.
    pub passes: Vec<PassKind>,
    /// How many times to repeat the whole sequence (rewrites can enable
    /// further rewrites).
    pub rounds: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            passes: PassKind::all().to_vec(),
            rounds: 1,
        }
    }
}

/// The result of running the pipeline.
#[derive(Clone, Debug)]
pub struct OptResult {
    /// The optimized program.
    pub program: Program,
    /// Per-pass statistics, in execution order.
    pub stats: Vec<PassStats>,
    /// Intermediate programs (input of each pass), for validation.
    pub stages: Vec<Program>,
}

impl OptResult {
    /// Total rewrites across all passes.
    pub fn total_rewrites(&self) -> usize {
        self.stats.iter().map(|s| s.rewrites).sum()
    }
}

/// The optimizer pipeline of §4.
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    cfg: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(cfg: PipelineConfig) -> Self {
        Pipeline { cfg }
    }

    /// Optimizes a program, recording per-pass statistics and every
    /// intermediate stage.
    pub fn optimize(&self, prog: &Program) -> OptResult {
        let mut program = prog.clone();
        let mut stats = Vec::new();
        let mut stages = vec![program.clone()];
        for _ in 0..self.cfg.rounds.max(1) {
            for &pass in &self.cfg.passes {
                let (next, s) = pass.run(&program);
                stats.push(s);
                stages.push(next.clone());
                program = next;
            }
        }
        OptResult {
            program,
            stats,
            stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    #[test]
    fn full_pipeline_on_figure_4() {
        let p = parse_program(
            "store[na](pl_x, 42);
             l := load[acq](pl_y);
             if (l == 0) { a := load[na](pl_x); }
             store[rel](pl_y, 1);
             b := load[na](pl_x);
             return b;",
        )
        .unwrap();
        let res = Pipeline::new(PipelineConfig::default()).optimize(&p);
        let out = res.program.to_string();
        assert!(out.contains("a := 42;"), "{out}");
        assert!(out.contains("b := 42;"), "{out}");
        assert!(res.total_rewrites() >= 2);
        assert_eq!(res.stages.len(), 5); // input + 4 passes
    }

    #[test]
    fn passes_compose_slf_enables_dse() {
        // After SLF forwards the load, the first store becomes dead… only
        // if nothing reads it. Here the read is forwarded by SLF, then DSE
        // can kill the overwritten store on a second round.
        let p =
            parse_program("store[na](pc_x, 1); a := load[na](pc_x); store[na](pc_x, 2); return a;")
                .unwrap();
        let res = Pipeline::new(PipelineConfig {
            passes: PassKind::all().to_vec(),
            rounds: 2,
        })
        .optimize(&p);
        let out = res.program.to_string();
        assert!(out.contains("a := 1;"), "{out}");
        assert!(!out.contains("store[na](pc_x, 1);"), "{out}");
    }

    #[test]
    fn idempotent_on_fixpoint() {
        let p = parse_program("store[na](pi_x, 1); b := load[na](pi_x); return b;").unwrap();
        let pipe = Pipeline::default();
        let once = pipe.optimize(&p);
        let twice = pipe.optimize(&once.program);
        assert_eq!(once.program, twice.program);
        assert_eq!(twice.total_rewrites(), 0);
    }

    #[test]
    fn pass_display() {
        assert_eq!(PassKind::Slf.to_string(), "slf");
        assert_eq!(PassKind::Licm.to_string(), "licm");
        let s = PassStats::new("slf");
        assert!(s.to_string().contains("slf"));
    }

    #[test]
    fn pass_names_round_trip() {
        for p in PassKind::extended() {
            assert_eq!(PassKind::parse(&p.to_string()), Some(p), "{p}");
        }
        assert_eq!(PassKind::parse("nope"), None);
    }

    #[test]
    fn default_pipeline_is_the_papers_four() {
        assert_eq!(PassKind::all().to_vec(), PassKind::extended()[..4].to_vec());
        assert_eq!(PassKind::extended().len(), 9);
    }
}
