//! Redundant read-modify-write simplification.
//!
//! An RMW that provably writes back the value it read is a read in
//! disguise:
//!
//! * `r := fadd[o](x, 0)` — fetch-and-add of a literal zero — becomes
//!   `r := load[o_R](x)` with the RMW's read-side mode.
//! * `r := cas[o](x, c, c)` — compare-and-swap whose expected and new
//!   operands are the same integer literal — likewise becomes a load:
//!   on mismatch it never wrote, and on match it wrote back exactly the
//!   value read.
//!
//! Both rewrites are restricted to RMWs whose write side is relaxed
//! (`o ∈ {rlx, acq}`): a release-side RMW publishes the thread's view
//! even when the written value is unchanged, and dropping that
//! synchronization is observable. The rewrite drops a SEQ `Rmw` label,
//! so its obligation is PS^na differential
//! ([`crate::validate::Obligation::PsNa`]) — which also adjudicates the
//! subtler PS-level differences (an RMW's read must sit adjacent to its
//! write) that sequential reasoning glosses over.

use seqwm_lang::expr::Expr;
use seqwm_lang::{Program, Stmt, Value, WriteMode};

use crate::pipeline::PassStats;

/// Rewrites every non-control leaf of `s` with `f`, preserving the
/// control structure. `f` returning `None` keeps the leaf as is;
/// returning `Stmt::Skip` deletes it (the `Seq` smart constructor
/// flattens skips).
pub(crate) fn map_leaves<F: FnMut(&Stmt) -> Option<Stmt>>(s: &Stmt, f: &mut F) -> Stmt {
    match s {
        Stmt::Seq(a, b) => Stmt::seq(map_leaves(a, f), map_leaves(b, f)),
        Stmt::If(e, a, b) => Stmt::If(
            e.clone(),
            Box::new(map_leaves(a, f)),
            Box::new(map_leaves(b, f)),
        ),
        Stmt::While(e, body) => Stmt::While(e.clone(), Box::new(map_leaves(body, f))),
        leaf => f(leaf).unwrap_or_else(|| leaf.clone()),
    }
}

/// Is this expression a defined integer literal?
fn int_literal(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Value::Int(n)) => Some(*n),
        _ => None,
    }
}

/// The redundant-RMW simplification pass.
pub struct RmwOpt;

impl RmwOpt {
    /// Runs the pass on a whole program.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new("rmw");
        let body = map_leaves(&prog.body, &mut |s| match s {
            Stmt::Fadd {
                dst,
                loc,
                operand,
                mode,
            } if int_literal(operand) == Some(0) && mode.write_mode() != WriteMode::Rel => {
                stats.rewrites += 1;
                Some(Stmt::Load(*dst, *loc, mode.read_mode()))
            }
            Stmt::Cas {
                dst,
                loc,
                expected,
                new,
                mode,
            } if int_literal(expected).is_some()
                && expected == new
                && mode.write_mode() != WriteMode::Rel =>
            {
                stats.rewrites += 1;
                Some(Stmt::Load(*dst, *loc, mode.read_mode()))
            }
            _ => None,
        });
        stats.note_iterations(1);
        (Program::new(body), stats)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn run(src: &str) -> (String, usize) {
        let p = parse_program(src).unwrap();
        let (q, s) = RmwOpt::run(&p);
        assert_eq!(parse_program(&q.to_string()).unwrap(), q, "{q}");
        (q.to_string(), s.rewrites)
    }

    #[test]
    fn fadd_zero_becomes_load() {
        let (out, n) = run("r := fadd[rlx](rz_x, 0); return r;");
        assert!(out.contains("load[rlx](rz_x)"), "{out}");
        assert!(!out.contains("fadd"), "{out}");
        assert_eq!(n, 1);
    }

    #[test]
    fn fadd_zero_acquire_keeps_read_mode() {
        let (out, _) = run("r := fadd[acq](ra_x, 0); return r;");
        assert!(out.contains("load[acq](ra_x)"), "{out}");
    }

    #[test]
    fn fadd_nonzero_untouched() {
        let (out, n) = run("r := fadd[rlx](rn_x, 1); return r;");
        assert!(out.contains("fadd"), "{out}");
        assert_eq!(n, 0);
    }

    #[test]
    fn release_side_rmw_untouched() {
        // A release write publishes the thread view even when the value
        // is unchanged; both rel and acqrel must survive.
        let (out, n) = run("r := fadd[rel](rr_x, 0); s := fadd[acqrel](rr_x, 0); return r + s;");
        assert_eq!(n, 0);
        assert!(out.contains("fadd[rel]"), "{out}");
        assert!(out.contains("fadd[acqrel]"), "{out}");
    }

    #[test]
    fn trivial_cas_becomes_load() {
        let (out, n) = run("r := cas[rlx](rc_x, 3, 3); return r;");
        assert!(out.contains("load[rlx](rc_x)"), "{out}");
        assert_eq!(n, 1);
    }

    #[test]
    fn cas_with_distinct_operands_untouched() {
        let (out, n) = run("r := cas[rlx](rd_x, 0, 1); return r;");
        assert!(out.contains("cas"), "{out}");
        assert_eq!(n, 0);
    }

    #[test]
    fn cas_on_register_operands_untouched() {
        // Syntactically equal register operands are not simplified: the
        // register could hold undef, and comparing undef is UB the load
        // would not have.
        let (out, n) = run("a := 1; r := cas[rlx](re_x, a, a); return r;");
        assert!(out.contains("cas"), "{out}");
        assert_eq!(n, 0);
    }

    #[test]
    fn rewrites_inside_control_flow() {
        let (out, n) = run(
            "if (c == 0) { r := fadd[rlx](rf_x, 0); } else { r := cas[acq](rf_x, 2, 2); } \
             return r;",
        );
        assert!(out.contains("load[rlx](rf_x)"), "{out}");
        assert!(out.contains("load[acq](rf_x)"), "{out}");
        assert_eq!(n, 2);
    }
}
