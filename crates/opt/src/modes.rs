//! Access-mode strengthening and elimination.
//!
//! Three rewrites on atomic access modes, all conservative:
//!
//! * **Fence absorption (read side)**: `r := load[rlx](x); fence[acq]`
//!   becomes `r := load[acq](x)` when the load is the only atomic read
//!   that can precede the fence on any path — the fence's sole job was
//!   upgrading that one load, so the strengthened load carries exactly
//!   the same synchronization.
//! * **Fence absorption (write side)**: `fence[rel]; store[rlx](x, e)`
//!   becomes `store[rel](x, e)` when the store is the only atomic write
//!   that can follow the fence on any path.
//! * **Dead relaxed-load elimination**: `r := load[rlx](x)` is dropped
//!   when `r` is never mentioned again on any path. Acquire loads are
//!   never dropped (their synchronization is observable even when the
//!   value is dead), and non-atomic loads are left alone (their race-UB
//!   is [`crate::dse`]-family territory).
//!
//! Loop back edges are treated as in [`crate::fence`]: an atomic access
//! anywhere in a loop body counts as both before and after every
//! statement of that body, and a register mentioned anywhere in the
//! body counts as live throughout it.
//!
//! All three rewrites change the SEQ trace shape, so their validation
//! obligation is PS^na differential ([`crate::validate::Obligation::PsNa`]).

use std::collections::BTreeSet;

use seqwm_lang::{FenceMode, Program, ReadMode, Reg, Stmt, WriteMode};

use crate::fence::{has_atomic_read, has_atomic_write, spine};
use crate::pipeline::PassStats;

/// The access-mode strengthening/elimination pass.
pub struct AccessModeOpt;

impl AccessModeOpt {
    /// Runs the pass on a whole program.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new("modes");
        let absorbed = absorb_block(&spine(&prog.body), false, false, &mut stats);
        let pruned = dead_loads_block(&spine(&absorbed), &BTreeSet::new(), &mut stats);
        stats.note_iterations(1);
        (Program::new(pruned), stats)
    }
}

/// Fence-absorption walk. Flags as in `fence::rewrite_block`.
fn absorb_block(
    stmts: &[Stmt],
    read_before: bool,
    write_after: bool,
    stats: &mut PassStats,
) -> Stmt {
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut rb = read_before;
    let mut i = 0;
    while i < stmts.len() {
        match (&stmts[i], stmts.get(i + 1)) {
            // r := load[rlx](x); fence[acq]  ~~>  r := load[acq](x)
            // (only when no other atomic read can precede the fence)
            (Stmt::Load(r, x, ReadMode::Rlx), Some(Stmt::Fence(FenceMode::Acq))) if !rb => {
                out.push(Stmt::Load(*r, *x, ReadMode::Acq));
                stats.rewrites += 1;
                rb = true;
                i += 2;
            }
            // fence[rel]; store[rlx](x, e)  ~~>  store[rel](x, e)
            // (only when no other atomic write can follow the fence)
            (Stmt::Fence(FenceMode::Rel), Some(Stmt::Store(x, WriteMode::Rlx, e)))
                if !write_after && !stmts[i + 2..].iter().any(has_atomic_write) =>
            {
                out.push(Stmt::Store(*x, WriteMode::Rel, e.clone()));
                stats.rewrites += 1;
                i += 2;
            }
            (Stmt::If(e, a, b), _) => {
                let wa = write_after || stmts[i + 1..].iter().any(has_atomic_write);
                let a2 = absorb_block(&spine(a), rb, wa, stats);
                let b2 = absorb_block(&spine(b), rb, wa, stats);
                rb = rb || has_atomic_read(a) || has_atomic_read(b);
                out.push(Stmt::If(e.clone(), Box::new(a2), Box::new(b2)));
                i += 1;
            }
            (Stmt::While(e, body), _) => {
                let wa = write_after || stmts[i + 1..].iter().any(has_atomic_write);
                let body_rb = rb || has_atomic_read(body);
                let body_wa = wa || has_atomic_write(body);
                let b2 = absorb_block(&spine(body), body_rb, body_wa, stats);
                rb = rb || has_atomic_read(body);
                out.push(Stmt::While(e.clone(), Box::new(b2)));
                i += 1;
            }
            (other, _) => {
                rb = rb || has_atomic_read(other);
                out.push(other.clone());
                i += 1;
            }
        }
    }
    Stmt::block(out)
}

/// Dead relaxed-load elimination. `cont` holds every register mentioned
/// on any path after this block.
fn dead_loads_block(stmts: &[Stmt], cont: &BTreeSet<Reg>, stats: &mut PassStats) -> Stmt {
    // suffix[i] = registers mentioned by stmts[i..] ∪ cont.
    let mut suffix: Vec<BTreeSet<Reg>> = vec![cont.clone(); stmts.len() + 1];
    for i in (0..stmts.len()).rev() {
        let mut s = suffix[i + 1].clone();
        s.extend(stmts[i].regs());
        suffix[i] = s;
    }

    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for (i, st) in stmts.iter().enumerate() {
        let cont_i = &suffix[i + 1];
        match st {
            Stmt::Load(r, _, ReadMode::Rlx) if !cont_i.contains(r) => {
                stats.rewrites += 1; // dropped
            }
            Stmt::If(e, a, b) => {
                let a2 = dead_loads_block(&spine(a), cont_i, stats);
                let b2 = dead_loads_block(&spine(b), cont_i, stats);
                out.push(Stmt::If(e.clone(), Box::new(a2), Box::new(b2)));
            }
            Stmt::While(e, body) => {
                // Back edge: the body (and the condition) re-run, so
                // everything they mention stays live inside the body.
                let mut body_cont = cont_i.clone();
                body_cont.extend(body.regs());
                body_cont.extend(e.regs());
                let b2 = dead_loads_block(&spine(body), &body_cont, stats);
                out.push(Stmt::While(e.clone(), Box::new(b2)));
            }
            other => out.push(other.clone()),
        }
    }
    Stmt::block(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn run(src: &str) -> (String, usize) {
        let p = parse_program(src).unwrap();
        let (q, s) = AccessModeOpt::run(&p);
        assert_eq!(parse_program(&q.to_string()).unwrap(), q, "{q}");
        (q.to_string(), s.rewrites)
    }

    #[test]
    fn acquire_fence_absorbed_into_load() {
        let (out, n) = run("a := load[rlx](mo_f); fence[acq]; b := load[na](mo_d); return b;");
        assert!(out.contains("load[acq](mo_f)"), "{out}");
        assert!(!out.contains("fence"), "{out}");
        assert_eq!(n, 1);
    }

    #[test]
    fn absorption_blocked_by_earlier_atomic_read() {
        let (out, _) = run(
            "c := load[rlx](mb_g); a := load[rlx](mb_f); fence[acq]; print(a); print(c); \
             return 0;",
        );
        // Another relaxed read precedes the fence, so it must keep
        // upgrading both and cannot be folded into one load.
        assert!(out.contains("fence[acq];"), "{out}");
        assert!(out.contains("load[rlx](mb_f)"), "{out}");
    }

    #[test]
    fn release_fence_absorbed_into_store() {
        let (out, n) = run("store[na](mw_d, 1); fence[rel]; store[rlx](mw_f, 1); return 0;");
        assert!(out.contains("store[rel](mw_f, 1)"), "{out}");
        assert!(!out.contains("fence"), "{out}");
        assert_eq!(n, 1);
    }

    #[test]
    fn absorption_blocked_by_later_atomic_write() {
        let (out, _) = run("fence[rel]; store[rlx](ma_f, 1); store[rlx](ma_g, 1); return 0;");
        assert!(out.contains("fence[rel];"), "{out}");
        assert!(out.contains("store[rlx](ma_f, 1)"), "{out}");
    }

    #[test]
    fn dead_relaxed_load_is_dropped() {
        let (out, n) = run("a := load[rlx](md_x); return 0;");
        assert!(!out.contains("load"), "{out}");
        assert_eq!(n, 1);
    }

    #[test]
    fn live_relaxed_load_stays() {
        let (out, n) = run("a := load[rlx](ml_x); return a;");
        assert!(out.contains("load[rlx](ml_x)"), "{out}");
        assert_eq!(n, 0);
    }

    #[test]
    fn dead_acquire_load_stays() {
        // Acquire synchronization is observable even if the value dies.
        let (out, n) = run("a := load[acq](mq_x); return 0;");
        assert!(out.contains("load[acq](mq_x)"), "{out}");
        assert_eq!(n, 0);
    }

    #[test]
    fn loop_keeps_body_registers_live() {
        let (out, n) = run("while (i < 2) { a := load[rlx](mk_x); i := i + a; } return 0;");
        assert!(out.contains("load[rlx](mk_x)"), "{out}");
        assert_eq!(n, 0);
    }

    #[test]
    fn no_absorption_inside_loop() {
        // The load's own back edge makes it "an earlier atomic read",
        // so the conservative analysis leaves the loop alone.
        let (out, _) =
            run("while (i < 2) { a := load[rlx](mx_f); fence[acq]; i := i + a; } return 0;");
        assert!(out.contains("fence[acq];"), "{out}");
    }
}
