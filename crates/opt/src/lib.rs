#![warn(missing_docs)]

//! # seqwm-opt
//!
//! The optimizer of §4 of *Sequential Reasoning for Optimizing Compilers
//! under Weak Memory Concurrency* (PLDI 2022): four thread-local passes
//! over the `WHILE` language, each driven by a fixpoint abstract
//! interpretation, composed into a pipeline and validated against the
//! sequential model SEQ only.
//!
//! * [`slf`] — store-to-load forwarding (Fig. 3, worked example Fig. 4).
//! * [`llf`] — load-to-load forwarding (Fig. 8a).
//! * [`dse`] — dead (overwritten) store elimination (Fig. 8b; the
//!   across-release case exercises the advanced refinement of §3).
//! * [`licm`] — loop-invariant code motion (App. D): hoisted *irrelevant
//!   load introduction* followed by LLF — the transformation that
//!   catch-fire models cannot support (Example 1.3).
//! * [`constprop`] — register constant propagation (extension pass).
//! * [`pipeline`] — the pass manager with per-pass statistics.
//! * [`validate`] — SEQ-only translation validation (the substitute for
//!   the paper's Coq certification; see DESIGN.md).
//!
//! ## Example (the paper's Fig. 4)
//!
//! ```
//! use seqwm_lang::parser::parse_program;
//! use seqwm_opt::pipeline::{Pipeline, PipelineConfig};
//!
//! let p = parse_program(
//!     "store[na](x, 42);
//!      l := load[acq](y);
//!      if (l == 0) { a := load[na](x); }
//!      store[rel](y, 1);
//!      b := load[na](x);
//!      return b;",
//! )?;
//! let out = Pipeline::new(PipelineConfig::default()).optimize(&p);
//! assert!(out.program.to_string().contains("b := 42;"));
//! # Ok::<(), seqwm_lang::parser::ParseError>(())
//! ```

pub mod constprop;
pub mod dse;
pub mod licm;
pub mod llf;
pub mod pipeline;
pub mod slf;
pub mod validate;

pub use constprop::ConstProp;
pub use dse::DeadStoreElimination;
pub use licm::LoopInvariantCodeMotion;
pub use llf::LoadToLoadForwarding;
pub use pipeline::{OptResult, PassKind, PassStats, Pipeline, PipelineConfig};
pub use slf::StoreToLoadForwarding;
pub use validate::{optimize_validated, ValidatedBy, ValidatedResult, ValidationFailure};
