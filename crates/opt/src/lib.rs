#![warn(missing_docs)]

//! # seqwm-opt
//!
//! The optimizer of §4 of *Sequential Reasoning for Optimizing Compilers
//! under Weak Memory Concurrency* (PLDI 2022): thread-local passes over
//! the `WHILE` language, composed into a pipeline and validated by
//! per-pass translation-validation obligations.
//!
//! The paper's four passes plus constant propagation are justified by
//! SEQ alone:
//!
//! * [`slf`] — store-to-load forwarding (Fig. 3, worked example Fig. 4).
//! * [`llf`] — load-to-load forwarding (Fig. 8a).
//! * [`dse`] — dead (overwritten) store elimination (Fig. 8b; the
//!   across-release case exercises the advanced refinement of §3).
//! * [`licm`] — loop-invariant code motion (App. D): hoisted *irrelevant
//!   load introduction* followed by LLF — the transformation that
//!   catch-fire models cannot support (Example 1.3).
//! * [`constprop`] — register constant propagation (extension pass).
//!
//! The artifact's remaining pass families change the atomic event trace
//! and therefore carry a **PS^na differential** obligation instead of a
//! SEQ one (see [`validate::Obligation`]):
//!
//! * [`modes`] — access-mode strengthening (fence absorption) and dead
//!   relaxed-load elimination.
//! * [`fence`] — fence merging and vacuous-fence elimination.
//! * [`rmw`] — redundant read-modify-write simplification.
//! * [`promote`] — non-atomic register promotion, gated on the
//!   `seqwm-models` LDRF race verdicts (§5: `RaceFree` licenses the
//!   rewrite; `Racy`/`Inconclusive` block it).
//!
//! Infrastructure:
//!
//! * [`pipeline`] — the pass manager with per-pass statistics.
//! * [`validate`] — per-stage translation validation (the substitute
//!   for the paper's Coq certification; see DESIGN.md §3.16), with
//!   synthesized prober contexts for the PS^na obligations.
//! * [`memo`] — the fingerprint-keyed, CRC-enveloped validation memo
//!   cache: revalidating an already-proven source/target pair is a
//!   disk-backed cache hit.
//! * [`planted`] (feature `fault-injection`) — known-unsound variants
//!   of each new pass family, which the conformance battery asserts
//!   the validator refutes.
//!
//! ## Example (the paper's Fig. 4)
//!
//! ```
//! use seqwm_lang::parser::parse_program;
//! use seqwm_opt::pipeline::{Pipeline, PipelineConfig};
//!
//! let p = parse_program(
//!     "store[na](x, 42);
//!      l := load[acq](y);
//!      if (l == 0) { a := load[na](x); }
//!      store[rel](y, 1);
//!      b := load[na](x);
//!      return b;",
//! )?;
//! let out = Pipeline::new(PipelineConfig::default()).optimize(&p);
//! assert!(out.program.to_string().contains("b := 42;"));
//! # Ok::<(), seqwm_lang::parser::ParseError>(())
//! ```

pub mod constprop;
pub mod dse;
pub mod fence;
pub mod licm;
pub mod llf;
pub mod memo;
pub mod modes;
pub mod pipeline;
#[cfg(feature = "fault-injection")]
pub mod planted;
pub mod promote;
pub mod rmw;
pub mod slf;
pub mod validate;

pub use constprop::ConstProp;
pub use dse::DeadStoreElimination;
pub use fence::FenceOpt;
pub use licm::LoopInvariantCodeMotion;
pub use llf::LoadToLoadForwarding;
pub use memo::{CacheStats, CachedVerdict, ValidationCache};
pub use modes::AccessModeOpt;
pub use pipeline::{OptResult, PassKind, PassStats, Pipeline, PipelineConfig};
#[cfg(feature = "fault-injection")]
pub use planted::PlantedOptBug;
pub use promote::{PromoteConfig, PromotionRecord, RegisterPromotion};
pub use rmw::RmwOpt;
pub use slf::StoreToLoadForwarding;
pub use validate::{
    optimize_validated, optimize_validated_with, probe_contexts, validate_rewrite, Obligation,
    StageValidation, ValidatedBy, ValidatedResult, ValidationConfig, ValidationFailure,
};
