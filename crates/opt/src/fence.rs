//! Fence elimination and merging.
//!
//! Two rewrites on memory fences, both conservative:
//!
//! * **Merging**: adjacent fences collapse into one fence of joined
//!   polarity (`rel` + `acq` → `acqrel`; `sc` absorbs everything,
//!   since an SC fence already acquires and releases).
//! * **Elimination**: a fence with nothing to order is dropped — an
//!   acquire fence upgrades *prior* relaxed reads, so with no atomic
//!   read on any path before it there is nothing to upgrade; a release
//!   fence orders prior accesses before *later* atomic writes, so with
//!   no atomic write on any path after it there is nothing to order.
//!   An `acqrel` fence with only one vacuous side is downgraded to the
//!   useful side. SC fences are never eliminated or downgraded: they
//!   participate in the global SC order independently of surrounding
//!   accesses.
//!
//! Loops are handled via their back edge: a read (write) anywhere in a
//! loop body counts as *before* (*after*) every statement of the body,
//! because a later iteration re-executes it.
//!
//! Both rewrites change the SEQ trace shape (a fence is a SEQ
//! transition label), so SEQ refinement refutes them by construction;
//! their translation-validation obligation is the PS^na differential
//! one ([`crate::validate::Obligation::PsNa`]).

use seqwm_lang::{FenceMode, Program, Stmt};

use crate::pipeline::PassStats;

/// Does any atomic read (relaxed/acquire load, or an RMW, which always
/// reads) occur anywhere in this statement?
pub(crate) fn has_atomic_read(s: &Stmt) -> bool {
    let mut found = false;
    s.visit(&mut |n| {
        if matches!(
            n,
            Stmt::Load(_, _, m) if m.is_atomic()
        ) || matches!(n, Stmt::Cas { .. } | Stmt::Fadd { .. })
        {
            found = true;
        }
    });
    found
}

/// Does any atomic write (relaxed/release store, or an RMW, which may
/// write) occur anywhere in this statement?
pub(crate) fn has_atomic_write(s: &Stmt) -> bool {
    let mut found = false;
    s.visit(&mut |n| {
        if matches!(
            n,
            Stmt::Store(_, m, _) if m.is_atomic()
        ) || matches!(n, Stmt::Cas { .. } | Stmt::Fadd { .. })
        {
            found = true;
        }
    });
    found
}

/// Flattens a `Seq` spine into a statement list.
pub(crate) fn spine(s: &Stmt) -> Vec<Stmt> {
    fn go(s: &Stmt, out: &mut Vec<Stmt>) {
        if let Stmt::Seq(a, b) = s {
            go(a, out);
            go(b, out);
        } else {
            out.push(s.clone());
        }
    }
    let mut out = Vec::new();
    go(s, &mut out);
    out
}

/// The join of two adjacent fences: SC absorbs, otherwise polarities
/// union.
fn join(a: FenceMode, b: FenceMode) -> FenceMode {
    if a == FenceMode::Sc || b == FenceMode::Sc {
        return FenceMode::Sc;
    }
    match (
        a.is_acquire() || b.is_acquire(),
        a.is_release() || b.is_release(),
    ) {
        (true, true) => FenceMode::AcqRel,
        (true, false) => FenceMode::Acq,
        (false, true) => FenceMode::Rel,
        // Unreachable: every FenceMode acquires or releases.
        (false, false) => a,
    }
}

/// The fence elimination/merging pass.
pub struct FenceOpt;

impl FenceOpt {
    /// Runs the pass on a whole program.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new("fence");
        let body = rewrite_block(&spine(&prog.body), false, false, &mut stats);
        stats.note_iterations(1);
        (Program::new(body), stats)
    }
}

/// Rewrites one block. `read_before`: may an atomic read have executed
/// on some path before this block? `write_after`: may an atomic write
/// execute on some path after it?
fn rewrite_block(
    stmts: &[Stmt],
    read_before: bool,
    write_after: bool,
    stats: &mut PassStats,
) -> Stmt {
    // Phase 1: merge adjacent fences.
    let mut merged: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for st in stmts {
        match (merged.last(), st) {
            (Some(Stmt::Fence(a)), Stmt::Fence(b)) => {
                let j = join(*a, *b);
                stats.rewrites += 1;
                let last = merged.len() - 1;
                merged[last] = Stmt::Fence(j);
            }
            _ => merged.push(st.clone()),
        }
    }

    // Phase 2: eliminate/downgrade vacuous fences, recursing into
    // control flow with path-sensitive before/after flags.
    let mut out: Vec<Stmt> = Vec::with_capacity(merged.len());
    let mut rb = read_before;
    for (i, st) in merged.iter().enumerate() {
        let wa = write_after || merged[i + 1..].iter().any(has_atomic_write);
        match st {
            Stmt::Fence(m) if *m != FenceMode::Sc => {
                let acq_useful = m.is_acquire() && rb;
                let rel_useful = m.is_release() && wa;
                match (acq_useful, rel_useful) {
                    (false, false) => stats.rewrites += 1, // dropped
                    (true, false) if *m == FenceMode::AcqRel => {
                        stats.rewrites += 1;
                        out.push(Stmt::Fence(FenceMode::Acq));
                    }
                    (false, true) if *m == FenceMode::AcqRel => {
                        stats.rewrites += 1;
                        out.push(Stmt::Fence(FenceMode::Rel));
                    }
                    _ => out.push(st.clone()),
                }
            }
            Stmt::If(e, a, b) => {
                let a2 = rewrite_block(&spine(a), rb, wa, stats);
                let b2 = rewrite_block(&spine(b), rb, wa, stats);
                rb = rb || has_atomic_read(a) || has_atomic_read(b);
                out.push(Stmt::If(e.clone(), Box::new(a2), Box::new(b2)));
            }
            Stmt::While(e, body) => {
                // Back edge: anything in the body runs both before and
                // after everything else in the body.
                let body_rb = rb || has_atomic_read(body);
                let body_wa = wa || has_atomic_write(body);
                let b2 = rewrite_block(&spine(body), body_rb, body_wa, stats);
                rb = rb || has_atomic_read(body);
                out.push(Stmt::While(e.clone(), Box::new(b2)));
            }
            other => {
                rb = rb || has_atomic_read(other);
                out.push(other.clone());
            }
        }
    }
    Stmt::block(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn run(src: &str) -> (String, usize) {
        let p = parse_program(src).unwrap();
        let (q, s) = FenceOpt::run(&p);
        // Canonical-text round trip: pass output must reparse.
        assert_eq!(parse_program(&q.to_string()).unwrap(), q, "{q}");
        (q.to_string(), s.rewrites)
    }

    #[test]
    fn adjacent_fences_merge() {
        let (out, n) = run("a := load[rlx](ff_x); fence[acq]; fence[rel]; store[rlx](ff_y, 1);");
        assert!(out.contains("fence[acqrel];"), "{out}");
        assert!(!out.contains("fence[acq];"), "{out}");
        assert_eq!(n, 1);
    }

    #[test]
    fn sc_absorbs_neighbors() {
        let (out, _) = run("a := load[rlx](fs_x); fence[sc]; fence[acq]; store[rlx](fs_y, 1);");
        assert!(out.contains("fence[sc];"), "{out}");
        assert!(!out.contains("fence[acq];"), "{out}");
    }

    #[test]
    fn leading_acquire_fence_is_vacuous() {
        let (out, n) = run("fence[acq]; a := load[rlx](fl_x); return a;");
        assert!(!out.contains("fence"), "{out}");
        assert_eq!(n, 1);
    }

    #[test]
    fn trailing_release_fence_is_vacuous() {
        let (out, _) = run("store[rlx](ft_x, 1); fence[rel]; a := load[na](ft_d); return a;");
        assert!(!out.contains("fence"), "{out}");
    }

    #[test]
    fn useful_fences_survive() {
        let (out, n) =
            run("a := load[rlx](fu_x); fence[acq]; fence[rel]; store[rlx](fu_y, 1); return a;");
        // The merge still fires, but the joined fence is useful on both
        // sides and stays.
        assert!(out.contains("fence[acqrel];"), "{out}");
        assert_eq!(n, 1);
    }

    #[test]
    fn acqrel_downgrades_when_one_side_is_vacuous() {
        let (out, _) = run("a := load[rlx](fd_x); fence[acqrel]; return a;");
        assert!(out.contains("fence[acq];"), "{out}");
        assert!(!out.contains("acqrel"), "{out}");
    }

    #[test]
    fn sc_fence_is_never_touched() {
        let (out, n) = run("fence[sc]; return 0;");
        assert!(out.contains("fence[sc];"), "{out}");
        assert_eq!(n, 0);
    }

    #[test]
    fn loop_back_edge_keeps_fences() {
        // The body's read is "before" the fence via the back edge and
        // its write is "after" it, so the fence must stay.
        let (out, n) = run(
            "while (i < 2) { a := load[rlx](fb_x); fence[acqrel]; store[rlx](fb_y, 1); \
             i := i + 1; } return 0;",
        );
        assert!(out.contains("fence[acqrel];"), "{out}");
        assert_eq!(n, 0);
    }

    #[test]
    fn branch_reads_count_for_later_fences() {
        let (out, _) = run(
            "if (c == 0) { a := load[rlx](fc_x); } else { skip; } fence[acq]; \
             b := load[na](fc_d); return b;",
        );
        assert!(out.contains("fence[acq];"), "{out}");
    }

    #[test]
    fn identity_without_fences() {
        let p = parse_program("store[na](fi_x, 1); a := load[na](fi_x); return a;").unwrap();
        let (q, s) = FenceOpt::run(&p);
        assert_eq!(p, q);
        assert_eq!(s.rewrites, 0);
    }
}
