//! Non-atomic register promotion, gated on an LDRF verdict.
//!
//! A non-atomic location that no other declared thread touches is a
//! register in disguise: promote it by loading it once into a fresh
//! register up front, routing every `load[na]`/`store[na]` through the
//! register, and writing the register back before every exit (when the
//! program stores the location at all).
//!
//! Sequential reasoning licenses this only on race-free programs —
//! promotion *introduces* accesses (the up-front load, the write-backs)
//! at points the original program had none, which is exactly the
//! transformation the paper's LDRF theorems exist to justify. The gate
//! here is the `crates/models` **LDRF-RA** checker over the program
//! composed with its declared context: `RaceFree` always licenses the
//! promotion; `Racy` and `Inconclusive` (truncated scan) both refuse
//! it. Candidates a context thread touches at all are refused earlier,
//! without spending model-checker fuel.
//!
//! A candidate must also be *profitable*: promotion replaces the
//! location's accesses with one prologue load plus (when the location
//! is ever stored) one write-back per exit site, so it only fires when
//! the static access count strictly exceeds that. Besides being what a
//! production compiler would do, the strict inequality makes the pass
//! idempotent — its own output has exactly the promoted-form access
//! count and is left alone. (Counts are static: a load inside a loop
//! counts once. Hoisting loop-invariant loads is LICM's job.)
//!
//! The rewrite changes the SEQ behavior footprint (the promoted
//! location leaves the written set), so its validation obligation is
//! PS^na differential ([`crate::validate::Obligation::PsNa`]).

use std::collections::BTreeSet;

use seqwm_lang::expr::Expr;
use seqwm_lang::{Loc, Program, ReadMode, Reg, Stmt, WriteMode};
use seqwm_models::{ldrf_pf_ra, ModelOpts, RaceVerdict};

use crate::fence::spine;
use crate::pipeline::PassStats;
use crate::rmw::map_leaves;

/// Configuration for gated promotion.
#[derive(Clone, Debug, Default)]
pub struct PromoteConfig {
    /// The declared context threads the program will run alongside.
    /// Empty means the program is closed.
    pub context: Vec<Program>,
    /// Model-checker budgets for the LDRF gate.
    pub model: ModelOpts,
}

/// What happened to one promotion candidate.
#[derive(Clone, Debug)]
pub struct PromotionRecord {
    /// The candidate location.
    pub loc: Loc,
    /// Whether it was promoted.
    pub promoted: bool,
    /// `"promoted"`, `"context-shared"`, `"unprofitable"`, or the
    /// refusing LDRF verdict (e.g. `"ldrf-ra: racy"`).
    pub reason: String,
}

/// The register-promotion pass.
pub struct RegisterPromotion;

impl RegisterPromotion {
    /// Runs the pass against an empty (closed-program) context with
    /// default model budgets.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let (out, stats, _) = Self::run_gated(prog, &PromoteConfig::default());
        (out, stats)
    }

    /// Runs the pass against a declared context, returning a record per
    /// candidate alongside the usual pass output.
    pub fn run_gated(
        prog: &Program,
        cfg: &PromoteConfig,
    ) -> (Program, PassStats, Vec<PromotionRecord>) {
        let mut stats = PassStats::new("promote");
        stats.note_iterations(1);
        let mut records = Vec::new();

        let na = prog.body.na_locs();
        let atomic = prog.body.atomic_locs();
        let mut candidates: Vec<Loc> = na.difference(&atomic).copied().collect();
        if candidates.is_empty() {
            return (prog.clone(), stats, records);
        }

        let ctx_locs: BTreeSet<Loc> = cfg.context.iter().flat_map(|p| p.body.locs()).collect();
        candidates.retain(|x| {
            if ctx_locs.contains(x) {
                records.push(PromotionRecord {
                    loc: *x,
                    promoted: false,
                    reason: "context-shared".to_string(),
                });
                false
            } else {
                true
            }
        });
        candidates.retain(|x| {
            if promotion_profitable(&prog.body, *x) {
                true
            } else {
                records.push(PromotionRecord {
                    loc: *x,
                    promoted: false,
                    reason: "unprofitable".to_string(),
                });
                false
            }
        });
        if candidates.is_empty() {
            return (prog.clone(), stats, records);
        }

        // The LDRF-RA gate over the whole declared composition.
        // RaceFree always licenses the promotion; anything else —
        // including a truncated, inconclusive scan — refuses it.
        let mut threads = vec![prog.clone()];
        threads.extend(cfg.context.iter().cloned());
        let (ra, _pf, _scan) = ldrf_pf_ra(&threads, &cfg.model);
        if ra.verdict != RaceVerdict::RaceFree {
            let reason = format!("{}: {}", ra.level.name(), ra.verdict);
            for x in candidates {
                records.push(PromotionRecord {
                    loc: x,
                    promoted: false,
                    reason: reason.clone(),
                });
            }
            return (prog.clone(), stats, records);
        }

        let (out, rewrites) = promote_unchecked(prog, &candidates);
        stats.rewrites = rewrites;
        for x in candidates {
            records.push(PromotionRecord {
                loc: x,
                promoted: true,
                reason: "promoted".to_string(),
            });
        }
        (out, stats, records)
    }
}

/// Whether promoting `x` strictly reduces the static count of memory
/// accesses. The promoted form costs one prologue load, plus — when the
/// location is ever stored — one write-back per exit site (every
/// `return`, plus the fall-through end of the spine if the program has
/// one). The inequality is strict so the pass is idempotent: its own
/// output sits exactly at the promoted-form cost and is skipped.
fn promotion_profitable(body: &Stmt, x: Loc) -> bool {
    let mut loads = 0usize;
    let mut stores = 0usize;
    let mut returns = 0usize;
    body.visit(&mut |s| match s {
        Stmt::Load(_, y, ReadMode::Na) if *y == x => loads += 1,
        Stmt::Store(y, WriteMode::Na, _) if *y == x => stores += 1,
        Stmt::Return(_) => returns += 1,
        _ => {}
    });
    let cost = if stores > 0 {
        let tail = spine(body);
        let falls_through = !matches!(tail.last(), Some(Stmt::Return(_)) | Some(Stmt::Abort));
        1 + returns + usize::from(falls_through)
    } else {
        1
    };
    loads + stores > cost
}

/// The promotion rewrite itself, with no soundness gate. Shared with
/// the planted-bug battery, whose "promotion without the DRF gate"
/// variant calls this directly.
pub(crate) fn promote_unchecked(prog: &Program, candidates: &[Loc]) -> (Program, usize) {
    let mut used: BTreeSet<String> = prog.body.regs().iter().map(|r| r.name()).collect();
    let mut body = prog.body.clone();
    let mut prologue: Vec<Stmt> = Vec::new();
    let mut rewrites = 0usize;

    for &x in candidates {
        let mut name = format!("p_{}", x.name());
        let mut k = 0;
        while used.contains(&name) {
            k += 1;
            name = format!("p_{}_{k}", x.name());
        }
        used.insert(name.clone());
        let px = Reg::new(&name);

        let mut stored = false;
        body = map_leaves(&body, &mut |s| match s {
            Stmt::Load(r, y, ReadMode::Na) if *y == x => {
                rewrites += 1;
                Some(Stmt::Assign(*r, Expr::Reg(px)))
            }
            Stmt::Store(y, WriteMode::Na, e) if *y == x => {
                rewrites += 1;
                stored = true;
                Some(Stmt::Assign(px, e.clone()))
            }
            _ => None,
        });

        prologue.push(Stmt::Load(px, x, ReadMode::Na));
        if stored {
            let wb = Stmt::Store(x, WriteMode::Na, Expr::Reg(px));
            // Write back before every return...
            body = map_leaves(&body, &mut |s| match s {
                Stmt::Return(e) => Some(Stmt::block([wb.clone(), Stmt::Return(e.clone())])),
                _ => None,
            });
            // ...and at the fall-through end, if the program has one.
            let tail = spine(&body);
            if !matches!(tail.last(), Some(Stmt::Return(_)) | Some(Stmt::Abort)) {
                body = Stmt::block([body, wb]);
            }
        }
    }

    prologue.push(body);
    // Write-back insertion splices blocks at `return` leaves; restore
    // the parser's canonical right-nesting.
    (Program::new(Stmt::block(prologue).normalized()), rewrites)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn parse(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn closed_program_promotes_private_na_loc() {
        let p =
            parse("store[na](pp_x, 1); a := load[na](pp_x); b := load[na](pp_x); return a + b;");
        let (q, stats, records) = RegisterPromotion::run_gated(&p, &PromoteConfig::default());
        let out = q.to_string();
        assert_eq!(parse_program(&out).unwrap(), q, "{out}");
        assert!(records.iter().all(|r| r.promoted), "{records:?}");
        assert_eq!(stats.rewrites, 3);
        // The interior accesses are gone; only the prologue load and the
        // pre-return write-back remain.
        assert!(out.contains("p_pp_x := load[na](pp_x)"), "{out}");
        assert!(out.contains("store[na](pp_x, p_pp_x)"), "{out}");
        assert!(out.contains("p_pp_x := 1"), "{out}");
    }

    #[test]
    fn context_shared_location_is_refused() {
        let p = parse("store[na](pc_d, 1); store[rel](pc_f, 1); return 0;");
        let cfg = PromoteConfig {
            context: vec![parse(
                "a := load[acq](pc_f); if (a == 1) { b := load[na](pc_d); print(b); } return 0;",
            )],
            ..PromoteConfig::default()
        };
        let (q, _, records) = RegisterPromotion::run_gated(&p, &cfg);
        assert_eq!(q, p, "shared location must not be promoted");
        assert_eq!(records.len(), 1);
        assert!(!records[0].promoted);
        assert_eq!(records[0].reason, "context-shared");
    }

    #[test]
    fn racy_composition_is_refused_by_the_gate() {
        // pr_y is private to the program (and profitable), but the
        // composition races on pr_x, so the LDRF gate refuses it.
        let p = parse(
            "store[na](pr_y, 1); a := load[na](pr_y); b := load[na](pr_y); \
             store[na](pr_x, 1); return a + b;",
        );
        let cfg = PromoteConfig {
            context: vec![parse("a := load[na](pr_x); return a;")],
            ..PromoteConfig::default()
        };
        let (q, _, records) = RegisterPromotion::run_gated(&p, &cfg);
        assert_eq!(q, p);
        let yrec = records.iter().find(|r| r.loc == Loc::new("pr_y")).unwrap();
        assert!(!yrec.promoted);
        assert!(yrec.reason.contains("racy"), "{}", yrec.reason);
    }

    #[test]
    fn inconclusive_scan_is_refused() {
        let p =
            parse("store[na](pi_y, 1); a := load[na](pi_y); b := load[na](pi_y); return a + b;");
        let mut model = ModelOpts::default();
        model.ps.max_states = 1; // force truncation
        let cfg = PromoteConfig {
            context: vec![parse("store[rlx](pi_f, 1); return 0;")],
            model,
        };
        let (q, _, records) = RegisterPromotion::run_gated(&p, &cfg);
        assert_eq!(q, p);
        assert!(records[0].reason.contains("inconclusive"), "{records:?}");
    }

    #[test]
    fn rel_acq_context_still_licenses_private_promotion() {
        // Message passing on a rel/acq flag is LDRF-RA race-free, so a
        // location the context never touches still promotes.
        let p = parse(
            "store[na](pm_y, 1); a := load[na](pm_y); b := load[na](pm_y); \
             store[rel](pm_f, a + b); return 0;",
        );
        let cfg = PromoteConfig {
            context: vec![parse("b := load[acq](pm_f); return b;")],
            ..PromoteConfig::default()
        };
        let (q, stats, records) = RegisterPromotion::run_gated(&p, &cfg);
        assert_ne!(q, p);
        assert!(records.iter().all(|r| r.promoted), "{records:?}");
        assert_eq!(stats.rewrites, 3);
    }

    #[test]
    fn atomic_locations_are_never_candidates() {
        let p = parse("store[rlx](pa_x, 1); a := load[rlx](pa_x); return a;");
        let (q, stats, records) = RegisterPromotion::run_gated(&p, &PromoteConfig::default());
        assert_eq!(q, p);
        assert!(records.is_empty());
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn load_only_location_gets_no_writeback() {
        let p = parse("a := load[na](pl_x); b := load[na](pl_x); return a + b;");
        let (q, _, _) = RegisterPromotion::run_gated(&p, &PromoteConfig::default());
        let out = q.to_string();
        assert!(out.contains("p_pl_x := load[na](pl_x)"), "{out}");
        assert!(!out.contains("store"), "read-only: {out}");
    }

    #[test]
    fn fresh_register_avoids_collisions() {
        let p = parse(
            "p_pf_x := 7; store[na](pf_x, p_pf_x); a := load[na](pf_x); \
             b := load[na](pf_x); return a + b;",
        );
        let (q, _, _) = RegisterPromotion::run_gated(&p, &PromoteConfig::default());
        let out = q.to_string();
        assert!(out.contains("p_pf_x_1 := load[na](pf_x)"), "{out}");
    }

    #[test]
    fn unprofitable_candidate_is_skipped() {
        // One store and one load: the promoted form (prologue load +
        // one write-back) would be no smaller, so nothing happens.
        let p = parse("store[na](pu_x, 1); a := load[na](pu_x); return a;");
        let (q, stats, records) = RegisterPromotion::run_gated(&p, &PromoteConfig::default());
        assert_eq!(q, p);
        assert_eq!(stats.rewrites, 0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].reason, "unprofitable");
    }

    #[test]
    fn promotion_is_idempotent() {
        let p = parse(
            "store[na](pq_x, 1); a := load[na](pq_x); b := load[na](pq_x); \
             store[na](pq_x, a + b); return a + b;",
        );
        let (q1, stats1, _) = RegisterPromotion::run_gated(&p, &PromoteConfig::default());
        assert!(stats1.rewrites > 0, "first run should promote");
        let (q2, stats2, records2) = RegisterPromotion::run_gated(&q1, &PromoteConfig::default());
        assert_eq!(q2, q1, "second run must be the identity");
        assert_eq!(stats2.rewrites, 0);
        assert!(
            records2.iter().all(|r| r.reason == "unprofitable"),
            "{records2:?}"
        );
    }
}
