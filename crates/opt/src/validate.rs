//! Translation validation via SEQ and PS^na (the Rust substitute for the
//! paper's Coq certification).
//!
//! The paper *proves* each pass sound against SEQ once and for all; this
//! crate instead *checks* each optimizer run — a translation validation
//! discipline in the spirit the paper suggests for Alive2-style tools
//! (§7). Each pass carries one of two [`Obligation`]s:
//!
//! * [`Obligation::Seq`] — the paper's four passes plus constant
//!   propagation leave the atomic event trace intact, so SEQ refinement
//!   alone validates them: simple refinement (Def. 2.4) first, the
//!   advanced one (Def. 3.3) on demand (DSE across a release, Example
//!   3.5). The adequacy theorem then transfers soundness to arbitrary
//!   concurrent contexts — no reference to PS^na is ever needed, which
//!   is exactly the paper's point.
//! * [`Obligation::PsNa`] — the atomics pass families
//!   ([`crate::modes`], [`crate::fence`], [`crate::rmw`]) and register
//!   promotion ([`crate::promote`]) *change* the trace (SEQ refinement
//!   compares traces pointwise and refutes them by construction), so
//!   they are validated differentially against the PS^na model itself:
//!   target behaviors must refine source behaviors for the closed
//!   program **and** under every declared context, plus a family of
//!   synthesized *prober* contexts ([`probe_contexts`]) exercising the
//!   program's atomic locations with message-passing shapes. This is a
//!   bounded check, not a proof — but it is exactly the differential
//!   discipline the fuzz oracles use, and the planted-bug battery
//!   demonstrates it refutes every known-unsound variant.
//!
//! Either way, an inconclusive check (truncated exploration, mixed
//! atomicity) **fails** validation: the optimizer only ships rewrites it
//! could actually justify.
//!
//! Verdicts — validated *and* refuted — are memoizable in a
//! [`ValidationCache`]; the memo key fingerprints the obligation, both
//! program texts, the declared contexts, and every budget knob, so a
//! cache hit is exactly a rerun of the same check.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

use seqwm_explore::ExploreConfig;
use seqwm_lang::expr::Expr;
use seqwm_lang::{FenceMode, Loc, Program, ReadMode, Reg, Stmt, WriteMode};
use seqwm_promising::machine::{ps_behaviors_refine, PsBehavior};
use seqwm_promising::search::{engine_config, try_explore_engine};
use seqwm_promising::PsConfig;
use seqwm_seq::refine::{refines_advanced_or_simple_config, RefineConfig};

use crate::memo::{key_fingerprint, CachedVerdict, ValidationCache};
use crate::pipeline::{OptResult, PassKind, Pipeline, PipelineConfig};

/// The translation-validation obligation a pass emits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Obligation {
    /// SEQ refinement (simple, then advanced) suffices.
    Seq,
    /// PS^na differential check under declared + synthesized contexts.
    PsNa,
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obligation::Seq => write!(f, "seq"),
            Obligation::PsNa => write!(f, "ps-na"),
        }
    }
}

impl PassKind {
    /// The obligation this pass's rewrites carry.
    pub fn obligation(self) -> Obligation {
        match self {
            PassKind::Slf
            | PassKind::Llf
            | PassKind::Dse
            | PassKind::Licm
            | PassKind::ConstProp => Obligation::Seq,
            PassKind::Modes | PassKind::Fence | PassKind::Rmw | PassKind::Promote => {
                Obligation::PsNa
            }
        }
    }
}

/// Which check validated a stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidatedBy {
    /// Simple behavioral refinement (Def. 2.4) sufficed.
    Simple,
    /// Advanced behavioral refinement (Def. 3.3) was needed.
    Advanced,
    /// The PS^na differential check discharged the obligation.
    PsNa,
    /// The stage was a no-op (program unchanged).
    Unchanged,
}

impl ValidatedBy {
    /// Stable lower-case name (`simple`, `advanced`, `ps-na`,
    /// `unchanged`) — used in cached verdicts and wire results.
    pub fn name(self) -> &'static str {
        self.info()
    }

    fn info(self) -> &'static str {
        match self {
            ValidatedBy::Simple => "simple",
            ValidatedBy::Advanced => "advanced",
            ValidatedBy::PsNa => "ps-na",
            ValidatedBy::Unchanged => "unchanged",
        }
    }

    fn from_info(info: &str) -> Option<ValidatedBy> {
        match info {
            "simple" => Some(ValidatedBy::Simple),
            "advanced" => Some(ValidatedBy::Advanced),
            "ps-na" => Some(ValidatedBy::PsNa),
            _ => None,
        }
    }
}

/// A per-stage validation record.
#[derive(Clone, Debug)]
pub struct StageValidation {
    /// The pass that produced this stage.
    pub pass: PassKind,
    /// How the stage was validated.
    pub by: ValidatedBy,
    /// Whether the verdict came out of the memo cache.
    pub cached: bool,
}

/// Validation failure: a pass produced a program whose obligation could
/// not be discharged (refuted, or inconclusive within budget).
#[derive(Clone, Debug)]
pub struct ValidationFailure {
    /// The offending pass.
    pub pass: PassKind,
    /// The pass input.
    pub input: Program,
    /// The pass output.
    pub output: Program,
    /// Diagnostic detail.
    pub detail: String,
}

impl fmt::Display for ValidationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass {:?} failed {} validation: {}\n--- input ---\n{}--- output ---\n{}",
            self.pass,
            self.pass.obligation(),
            self.detail,
            self.input,
            self.output
        )
    }
}

impl std::error::Error for ValidationFailure {}

/// The outcome of a validated optimization run.
#[derive(Clone, Debug)]
pub struct ValidatedResult {
    /// The optimization result.
    pub result: OptResult,
    /// Per-stage validation records.
    pub validations: Vec<StageValidation>,
}

impl ValidatedResult {
    /// Stages answered from the memo cache.
    pub fn cached_stages(&self) -> usize {
        self.validations.iter().filter(|v| v.cached).count()
    }
}

/// Budgets and context declarations for validation.
#[derive(Clone, Debug)]
pub struct ValidationConfig {
    /// SEQ refinement checker configuration.
    pub refine: RefineConfig,
    /// PS^na machine bounds for the differential obligation.
    pub ps: PsConfig,
    /// Wall-clock deadline per engine exploration.
    pub deadline: Option<Duration>,
    /// Declared context threads composed with source and target for
    /// PS^na obligations (promotion's declared environment, a litmus
    /// partner thread, ...).
    pub contexts: Vec<Program>,
    /// Additionally synthesize message-passing prober contexts from the
    /// programs' atomic locations ([`probe_contexts`]).
    pub probe: bool,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            refine: RefineConfig::default(),
            // Optimizer inputs are small thread bodies; the tight bound
            // keeps a refuted or inconclusive check from stalling the
            // pipeline (matching the fuzz-oracle budgets).
            ps: PsConfig {
                max_states: 20_000,
                ..PsConfig::default()
            },
            deadline: Some(Duration::from_millis(2_000)),
            contexts: Vec::new(),
            probe: true,
        }
    }
}

/// Synthesizes message-passing prober contexts over the atomic
/// locations of `input` ∪ `output` (at most two, smallest first).
///
/// For a pair `(l_i, l_j)` the writer prober publishes `l_j` then `l_i`
/// through a release fence and the reader prober polls `l_i` then `l_j`
/// through an acquire fence, printing both reads. Any rewrite that
/// weakens acquire-side synchronization lets the target print the
/// `(1, 0)` outcome the source forbids, which is exactly what the
/// differential check refutes. With one atomic location the probers
/// degenerate to a plain writer and a printing reader; with none, no
/// probers are produced (the closed check still runs).
pub fn probe_contexts(input: &Program, output: &Program) -> Vec<Program> {
    let mut locs: BTreeSet<Loc> = input.body.atomic_locs();
    locs.extend(output.body.atomic_locs());
    let locs: Vec<Loc> = locs.into_iter().take(2).collect();
    let ra = Reg::new("prb_a");
    let rb = Reg::new("prb_b");
    let ret0 = Stmt::Return(Expr::int(0));
    let mut out = Vec::new();
    match locs[..] {
        [] => {}
        [l] => {
            out.push(Program::new(Stmt::block([
                Stmt::Store(l, WriteMode::Rlx, Expr::int(1)),
                ret0.clone(),
            ])));
            out.push(Program::new(Stmt::block([
                Stmt::Load(ra, l, ReadMode::Rlx),
                Stmt::Print(Expr::Reg(ra)),
                ret0,
            ])));
        }
        _ => {
            for (i, j) in [(0, 1), (1, 0)] {
                let (li, lj) = (locs[i], locs[j]);
                out.push(Program::new(Stmt::block([
                    Stmt::Store(lj, WriteMode::Rlx, Expr::int(1)),
                    Stmt::Fence(FenceMode::Rel),
                    Stmt::Store(li, WriteMode::Rlx, Expr::int(1)),
                    ret0.clone(),
                ])));
                out.push(Program::new(Stmt::block([
                    Stmt::Load(ra, li, ReadMode::Rlx),
                    Stmt::Fence(FenceMode::Acq),
                    Stmt::Load(rb, lj, ReadMode::Rlx),
                    Stmt::Print(Expr::Reg(ra)),
                    Stmt::Print(Expr::Reg(rb)),
                    ret0.clone(),
                ])));
            }
        }
    }
    out
}

/// The canonical memo-key text for one obligation instance. Everything
/// that can change the verdict is folded in: the obligation, both
/// program texts, the declared contexts, the probe switch, and every
/// budget knob.
pub fn memo_key(
    obligation: Obligation,
    input: &Program,
    output: &Program,
    vcfg: &ValidationConfig,
) -> String {
    let ctxs: Vec<String> = vcfg.contexts.iter().map(|c| c.to_string()).collect();
    format!(
        "v1;ob={obligation};refine={:?};ps={:?};deadline={:?};probe={};\n\
         --contexts--\n{}\n--input--\n{input}\n--output--\n{output}",
        vcfg.refine,
        vcfg.ps,
        vcfg.deadline,
        vcfg.probe,
        ctxs.join("\n~\n"),
    )
}

fn explore_behaviors(
    threads: &[Program],
    vcfg: &ValidationConfig,
    ecfg: &ExploreConfig,
) -> Result<BTreeSet<PsBehavior>, String> {
    match try_explore_engine(threads, &vcfg.ps, ecfg) {
        Ok(e) if e.stats.quarantined > 0 => Err(format!(
            "inconclusive: {} engine state(s) quarantined",
            e.stats.quarantined
        )),
        Ok(e) if e.stats.truncated => Err(format!(
            "inconclusive: exploration truncated ({})",
            e.stats.stop
        )),
        Ok(e) => Ok(e.behaviors),
        Err(err) => Err(format!("inconclusive: {err}")),
    }
}

/// Discharges a PS^na obligation: the closed program and every
/// (declared + synthesized) context composition must satisfy
/// target ⊑ source on behavior sets.
fn discharge_ps_na(
    input: &Program,
    output: &Program,
    vcfg: &ValidationConfig,
) -> Result<(), String> {
    let mut contexts: Vec<Option<Program>> = vec![None];
    contexts.extend(vcfg.contexts.iter().cloned().map(Some));
    if vcfg.probe {
        contexts.extend(probe_contexts(input, output).into_iter().map(Some));
    }
    let ecfg = ExploreConfig {
        deadline: vcfg.deadline,
        ..engine_config(&vcfg.ps)
    };
    for ctx in &contexts {
        let mut srcs = vec![input.clone()];
        let mut tgts = vec![output.clone()];
        if let Some(c) = ctx {
            srcs.push(c.clone());
            tgts.push(c.clone());
        }
        let src = explore_behaviors(&srcs, vcfg, &ecfg)?;
        let tgt = explore_behaviors(&tgts, vcfg, &ecfg)?;
        if let Err(unmatched) = ps_behaviors_refine(&tgt, &src) {
            let where_ = match ctx {
                None => "closed program".to_string(),
                Some(c) => format!("context {{ {} }}", c.to_string().replace('\n', " ")),
            };
            return Err(format!("unmatched PS^na behavior {unmatched} ({where_})"));
        }
    }
    Ok(())
}

/// Validates a single rewrite, consulting (and feeding) the memo cache
/// when one is supplied.
///
/// # Errors
///
/// The refutation (or inconclusiveness) detail when the obligation
/// could not be discharged.
pub fn validate_rewrite(
    pass: PassKind,
    input: &Program,
    output: &Program,
    vcfg: &ValidationConfig,
    cache: Option<&ValidationCache>,
) -> Result<StageValidation, String> {
    // Structural equality misses no-op rewrites that only reassociate
    // the `Seq` spine; the rendered text is the canonical form.
    if input == output || input.to_string() == output.to_string() {
        return Ok(StageValidation {
            pass,
            by: ValidatedBy::Unchanged,
            cached: false,
        });
    }
    let obligation = pass.obligation();
    let key = memo_key(obligation, input, output, vcfg);
    let fp = key_fingerprint(&key);

    if let Some(cache) = cache {
        if let Some(v) = cache.get(fp, &key) {
            if !v.ok {
                return Err(v.info);
            }
            if let Some(by) = ValidatedBy::from_info(&v.info) {
                return Ok(StageValidation {
                    pass,
                    by,
                    cached: true,
                });
            }
            // Unknown verdict shape (future version): fall through to a
            // fresh check, which will overwrite it.
        }
    }

    let fresh = match obligation {
        Obligation::Seq => match refines_advanced_or_simple_config(input, output, &vcfg.refine) {
            Ok(true) => Ok(ValidatedBy::Simple),
            Ok(false) => Ok(ValidatedBy::Advanced),
            Err(detail) => Err(detail),
        },
        Obligation::PsNa => discharge_ps_na(input, output, vcfg).map(|()| ValidatedBy::PsNa),
    };

    if let Some(cache) = cache {
        let verdict = match &fresh {
            Ok(by) => CachedVerdict {
                ok: true,
                info: by.info().to_string(),
            },
            Err(detail) => CachedVerdict {
                ok: false,
                info: detail.clone(),
            },
        };
        cache.put(fp, &key, &verdict);
    }

    fresh.map(|by| StageValidation {
        pass,
        by,
        cached: false,
    })
}

/// Runs the pipeline and validates every stage against its obligation.
///
/// # Errors
///
/// Returns a [`ValidationFailure`] (boxed — it carries both programs) if
/// any stage's obligation cannot be discharged.
pub fn optimize_validated_with(
    prog: &Program,
    cfg: PipelineConfig,
    vcfg: &ValidationConfig,
    cache: Option<&ValidationCache>,
) -> Result<ValidatedResult, Box<ValidationFailure>> {
    let passes = cfg.passes.clone();
    let rounds = cfg.rounds.max(1);
    let result = Pipeline::new(cfg).optimize(prog);
    let mut validations = Vec::new();
    for (i, window) in result.stages.windows(2).enumerate() {
        let (input, output) = (&window[0], &window[1]);
        let pass = passes[i % passes.len().max(1)];
        debug_assert!(i < passes.len() * rounds);
        match validate_rewrite(pass, input, output, vcfg, cache) {
            Ok(v) => validations.push(v),
            Err(detail) => {
                return Err(Box::new(ValidationFailure {
                    pass,
                    input: input.clone(),
                    output: output.clone(),
                    detail,
                }))
            }
        }
    }
    Ok(ValidatedResult {
        result,
        validations,
    })
}

/// Runs the pipeline and validates every stage, with default PS^na
/// budgets, no declared contexts, and no memo cache.
///
/// # Errors
///
/// Returns a [`ValidationFailure`] (boxed — it carries both programs) if
/// any stage fails its obligation (which for the paper's passes would
/// indicate an optimizer bug — none is known).
pub fn optimize_validated(
    prog: &Program,
    cfg: PipelineConfig,
    refine_cfg: &RefineConfig,
) -> Result<ValidatedResult, Box<ValidationFailure>> {
    let vcfg = ValidationConfig {
        refine: refine_cfg.clone(),
        ..ValidationConfig::default()
    };
    optimize_validated_with(prog, cfg, &vcfg, None)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn validate(src: &str) -> ValidatedResult {
        let p = parse_program(src).unwrap();
        optimize_validated(&p, PipelineConfig::default(), &RefineConfig::default())
            .expect("optimizer output must refine its input in SEQ")
    }

    #[test]
    fn slf_validates_simply() {
        let v = validate("store[na](v1x, 1); b := load[na](v1x); return b;");
        assert!(v.result.total_rewrites() >= 1);
        let slf = v
            .validations
            .iter()
            .find(|s| s.pass == PassKind::Slf)
            .unwrap();
        assert_eq!(slf.by, ValidatedBy::Simple);
        assert!(!slf.cached);
    }

    #[test]
    fn dse_across_release_needs_advanced() {
        let v = validate("store[na](v2x, 1); store[rel](v2y, 5); store[na](v2x, 2);");
        let dse = v
            .validations
            .iter()
            .find(|s| s.pass == PassKind::Dse)
            .unwrap();
        assert_eq!(
            dse.by,
            ValidatedBy::Advanced,
            "Example 3.5: DSE across a release is invalidated by the simple \
             notion but validated by the advanced one"
        );
    }

    #[test]
    fn licm_validates() {
        let v = validate("while (i < 2) { a := load[na](v3x); i := i + 1; } return a;");
        assert!(v
            .validations
            .iter()
            .any(|s| s.pass == PassKind::Licm && s.by != ValidatedBy::Unchanged));
    }

    #[test]
    fn figure_4_validates_end_to_end() {
        let v = validate(
            "store[na](v4x, 42);
             l := load[acq](v4y);
             if (l == 0) { a := load[na](v4x); }
             store[rel](v4y, 1);
             b := load[na](v4x);
             return b;",
        );
        assert!(v.result.total_rewrites() >= 2);
    }

    #[test]
    fn obligations_partition_the_passes() {
        for p in PassKind::extended() {
            let expected = matches!(
                p,
                PassKind::Modes | PassKind::Fence | PassKind::Rmw | PassKind::Promote
            );
            assert_eq!(p.obligation() == Obligation::PsNa, expected, "{p}");
        }
    }

    #[test]
    fn fence_elimination_discharges_ps_na() {
        let p = parse_program("fence[acq]; a := load[rlx](v5x); return a;").unwrap();
        let cfg = PipelineConfig {
            passes: vec![PassKind::Fence],
            rounds: 1,
        };
        let v = optimize_validated_with(&p, cfg, &ValidationConfig::default(), None).unwrap();
        assert_eq!(v.validations[0].by, ValidatedBy::PsNa);
        assert!(v.result.total_rewrites() >= 1);
    }

    #[test]
    fn probe_contexts_cover_the_pair_shapes() {
        let p = parse_program("a := load[rlx](v6f); fence[acq]; b := load[rlx](v6g); return 0;")
            .unwrap();
        let probes = probe_contexts(&p, &p);
        assert_eq!(probes.len(), 4, "two ordered pairs × writer/reader");
        let text: Vec<String> = probes.iter().map(|c| c.to_string()).collect();
        assert!(text.iter().any(|t| t.contains("fence[rel]")), "{text:?}");
        assert!(text.iter().any(|t| t.contains("fence[acq]")), "{text:?}");
        let closed = parse_program("a := 1; return a;").unwrap();
        assert!(probe_contexts(&closed, &closed).is_empty());
    }

    #[test]
    fn unsound_rewrite_is_refuted_by_probers() {
        // Hand-rolled "fence elimination across an acquire": the reader
        // side of MP with its acquire fence deleted. The writer prober
        // publishes g before f, so the target's (1, 0) print is
        // unmatched.
        let src = parse_program(
            "a := load[rlx](v7f); fence[acq]; b := load[rlx](v7g); print(a); print(b); return 0;",
        )
        .unwrap();
        let tgt = parse_program(
            "a := load[rlx](v7f); b := load[rlx](v7g); print(a); print(b); return 0;",
        )
        .unwrap();
        let err = validate_rewrite(
            PassKind::Fence,
            &src,
            &tgt,
            &ValidationConfig::default(),
            None,
        )
        .expect_err("deleting a live acquire fence must be refuted");
        assert!(err.contains("unmatched"), "{err}");
    }

    #[test]
    fn memoized_and_fresh_verdicts_agree() {
        let dir = std::env::temp_dir().join(format!("seqwm-opt-validate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ValidationCache::open(&dir, 16).unwrap();
        let p = parse_program("fence[acq]; a := load[rlx](v8x); return a;").unwrap();
        let cfg = PipelineConfig {
            passes: vec![PassKind::Fence],
            rounds: 1,
        };
        let vcfg = ValidationConfig::default();
        let cold = optimize_validated_with(&p, cfg.clone(), &vcfg, Some(&cache)).unwrap();
        assert_eq!(cold.cached_stages(), 0);
        let warm = optimize_validated_with(&p, cfg, &vcfg, Some(&cache)).unwrap();
        assert_eq!(warm.cached_stages(), 1);
        assert_eq!(
            cold.validations[0].by, warm.validations[0].by,
            "cached verdict must agree with the fresh one"
        );
        assert_eq!(cold.result.program, warm.result.program);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
