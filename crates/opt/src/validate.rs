//! Translation validation via SEQ (the Rust substitute for the paper's Coq
//! certification).
//!
//! The paper *proves* each pass sound against SEQ once and for all; this
//! crate instead *checks* each optimizer run against SEQ — a translation
//! validation discipline in the spirit the paper suggests for Alive2-style
//! tools (§7). Crucially, validation relies **only** on the sequential
//! model: no reference to PS^na is ever needed, which is exactly the
//! paper's point. The adequacy theorem (tested differentially in
//! `tests/adequacy.rs`) then transfers soundness to arbitrary concurrent
//! contexts.
//!
//! Pass-to-notion mapping (§3/§4): SLF, LLF, and LICM are justified by the
//! *simple* refinement; DSE across release writes needs the *advanced*
//! one (Example 3.5). The validator tries simple first (cheaper), then
//! advanced (strictly more permissive, Prop. 3.4).

use std::fmt;

use seqwm_lang::Program;
use seqwm_seq::refine::{refines_advanced_or_simple_config, RefineConfig};

use crate::pipeline::{OptResult, PassKind, Pipeline, PipelineConfig};

/// Which refinement notion validated a stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidatedBy {
    /// Simple behavioral refinement (Def. 2.4) sufficed.
    Simple,
    /// Advanced behavioral refinement (Def. 3.3) was needed.
    Advanced,
    /// The stage was a no-op (program unchanged).
    Unchanged,
}

/// A per-stage validation record.
#[derive(Clone, Debug)]
pub struct StageValidation {
    /// The pass that produced this stage.
    pub pass: PassKind,
    /// How the stage was validated.
    pub by: ValidatedBy,
}

/// Validation failure: a pass produced a program that does not refine its
/// input in SEQ.
#[derive(Clone, Debug)]
pub struct ValidationFailure {
    /// The offending pass.
    pub pass: PassKind,
    /// The pass input.
    pub input: Program,
    /// The pass output.
    pub output: Program,
    /// Diagnostic detail.
    pub detail: String,
}

impl fmt::Display for ValidationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass {:?} failed SEQ validation: {}\n--- input ---\n{}--- output ---\n{}",
            self.pass, self.detail, self.input, self.output
        )
    }
}

impl std::error::Error for ValidationFailure {}

/// The outcome of a validated optimization run.
#[derive(Clone, Debug)]
pub struct ValidatedResult {
    /// The optimization result.
    pub result: OptResult,
    /// Per-stage validation records.
    pub validations: Vec<StageValidation>,
}

/// Runs the pipeline and validates every stage against SEQ.
///
/// # Errors
///
/// Returns a [`ValidationFailure`] (boxed — it carries both programs) if
/// any stage fails both refinement checks (which would indicate an
/// optimizer bug — none is known).
pub fn optimize_validated(
    prog: &Program,
    cfg: PipelineConfig,
    refine_cfg: &RefineConfig,
) -> Result<ValidatedResult, Box<ValidationFailure>> {
    let passes = cfg.passes.clone();
    let rounds = cfg.rounds.max(1);
    let result = Pipeline::new(cfg).optimize(prog);
    let mut validations = Vec::new();
    for (i, window) in result.stages.windows(2).enumerate() {
        let (input, output) = (&window[0], &window[1]);
        let pass = passes[i % passes.len().max(1)];
        debug_assert!(i < passes.len() * rounds);
        if input == output {
            validations.push(StageValidation {
                pass,
                by: ValidatedBy::Unchanged,
            });
            continue;
        }
        match refines_advanced_or_simple_config(input, output, refine_cfg) {
            Ok(by_simple) => validations.push(StageValidation {
                pass,
                by: if by_simple {
                    ValidatedBy::Simple
                } else {
                    ValidatedBy::Advanced
                },
            }),
            Err(detail) => {
                return Err(Box::new(ValidationFailure {
                    pass,
                    input: input.clone(),
                    output: output.clone(),
                    detail,
                }))
            }
        }
    }
    Ok(ValidatedResult {
        result,
        validations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn validate(src: &str) -> ValidatedResult {
        let p = parse_program(src).unwrap();
        optimize_validated(&p, PipelineConfig::default(), &RefineConfig::default())
            .expect("optimizer output must refine its input in SEQ")
    }

    #[test]
    fn slf_validates_simply() {
        let v = validate("store[na](v1x, 1); b := load[na](v1x); return b;");
        assert!(v.result.total_rewrites() >= 1);
        let slf = v
            .validations
            .iter()
            .find(|s| s.pass == PassKind::Slf)
            .unwrap();
        assert_eq!(slf.by, ValidatedBy::Simple);
    }

    #[test]
    fn dse_across_release_needs_advanced() {
        let v = validate("store[na](v2x, 1); store[rel](v2y, 5); store[na](v2x, 2);");
        let dse = v
            .validations
            .iter()
            .find(|s| s.pass == PassKind::Dse)
            .unwrap();
        assert_eq!(
            dse.by,
            ValidatedBy::Advanced,
            "Example 3.5: DSE across a release is invalidated by the simple \
             notion but validated by the advanced one"
        );
    }

    #[test]
    fn licm_validates() {
        let v = validate("while (i < 2) { a := load[na](v3x); i := i + 1; } return a;");
        assert!(v
            .validations
            .iter()
            .any(|s| s.pass == PassKind::Licm && s.by != ValidatedBy::Unchanged));
    }

    #[test]
    fn figure_4_validates_end_to_end() {
        let v = validate(
            "store[na](v4x, 42);
             l := load[acq](v4y);
             if (l == 0) { a := load[na](v4x); }
             store[rel](v4y, 1);
             b := load[na](v4x);
             return b;",
        );
        assert!(v.result.total_rewrites() >= 2);
    }
}
