//! Register constant propagation — an *extension* pass beyond the paper's
//! four (§7 suggests the approach scales to further sequentially-justified
//! passes; this is the simplest such pass).
//!
//! The analysis tracks a flat constant lattice per register
//! (`⊥ <unknown>` is represented by absence). Constant registers are
//! substituted into expressions; in particular `store[na](x, r)` becomes
//! `store[na](x, c)`, which *enables* store-to-load forwarding (whose
//! Fig. 3 domain forwards constants only). The pass is justified by the
//! simple refinement notion — it only refines silent steps — and is
//! validated like every other pass.

use std::collections::BTreeMap;

use seqwm_lang::expr::{Expr, UnOp};
use seqwm_lang::{Program, Reg, Stmt, Value};

use crate::pipeline::PassStats;

/// The abstract state: registers not present are unknown.
pub type State = BTreeMap<Reg, i64>;

fn join(a: &State, b: &State) -> State {
    a.iter()
        .filter(|(r, v)| b.get(r) == Some(v))
        .map(|(r, v)| (*r, *v))
        .collect()
}

/// Substitutes known-constant registers into an expression and folds
/// constant subterms (without introducing or removing faults: division is
/// folded only when the divisor is a non-zero constant).
fn simplify(e: &Expr, state: &State) -> Expr {
    match e {
        Expr::Const(_) => e.clone(),
        Expr::Reg(r) => match state.get(r) {
            Some(&n) => Expr::int(n),
            None => e.clone(),
        },
        Expr::Un(op, a) => {
            let a = simplify(a, state);
            if let Expr::Const(Value::Int(n)) = a {
                return match op {
                    UnOp::Neg => Expr::int(n.wrapping_neg()),
                    UnOp::Not => Expr::int(i64::from(n == 0)),
                };
            }
            Expr::un(*op, a)
        }
        Expr::Bin(op, a, b) => {
            let a = simplify(a, state);
            let b = simplify(b, state);
            if let (Expr::Const(Value::Int(_)), Expr::Const(Value::Int(_))) = (&a, &b) {
                let folded = Expr::Bin(*op, Box::new(a.clone()), Box::new(b.clone()));
                if let Ok(Value::Int(n)) = folded.eval(&|_| Value::ZERO) {
                    return Expr::int(n);
                }
            }
            Expr::bin(*op, a, b)
        }
    }
}

fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Value::Int(n)) => Some(*n),
        _ => None,
    }
}

/// The constant-propagation pass.
pub struct ConstProp;

impl ConstProp {
    /// Runs the pass on a whole program.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new("constprop");
        let mut state = State::new();
        let body = rewrite(&prog.body, &mut state, &mut stats);
        (Program::new(body), stats)
    }
}

fn rewrite(s: &Stmt, state: &mut State, stats: &mut PassStats) -> Stmt {
    let simp = |e: &Expr, state: &State, stats: &mut PassStats| {
        let out = simplify(e, state);
        if &out != e {
            stats.rewrites += 1;
        }
        out
    };
    match s {
        Stmt::Seq(a, b) => {
            let a2 = rewrite(a, state, stats);
            let b2 = rewrite(b, state, stats);
            Stmt::seq(a2, b2)
        }
        Stmt::If(c, a, b) => {
            let c2 = simp(c, state, stats);
            let mut sa = state.clone();
            let mut sb = state.clone();
            let a2 = rewrite(a, &mut sa, stats);
            let b2 = rewrite(b, &mut sb, stats);
            *state = join(&sa, &sb);
            Stmt::If(c2, Box::new(a2), Box::new(b2))
        }
        Stmt::While(c, body) => {
            let mut head = state.clone();
            let mut iterations = 0;
            loop {
                iterations += 1;
                stats.note_iterations(iterations);
                let mut out = head.clone();
                let mut throwaway = PassStats::new("constprop");
                let _ = rewrite(body, &mut out, &mut throwaway);
                let next = join(&head, &out);
                if next == head {
                    break;
                }
                head = next;
                assert!(iterations <= 8, "constprop fixpoint diverged");
            }
            let c2 = simplify(c, &head);
            let mut body_state = head.clone();
            let body2 = rewrite(body, &mut body_state, stats);
            *state = head;
            Stmt::While(c2, Box::new(body2))
        }
        Stmt::Assign(r, e) => {
            let e2 = simp(e, state, stats);
            match const_of(&e2) {
                Some(n) => {
                    state.insert(*r, n);
                }
                None => {
                    state.remove(r);
                }
            }
            Stmt::Assign(*r, e2)
        }
        Stmt::Store(x, m, e) => Stmt::Store(*x, *m, simp(e, state, stats)),
        Stmt::Print(e) => Stmt::Print(simp(e, state, stats)),
        Stmt::Return(e) => Stmt::Return(simp(e, state, stats)),
        Stmt::Freeze(r, e) => {
            let e2 = simp(e, state, stats);
            // freeze of a known constant is the identity.
            if let Some(n) = const_of(&e2) {
                state.insert(*r, n);
                stats.rewrites += 1;
                return Stmt::Assign(*r, Expr::int(n));
            }
            state.remove(r);
            Stmt::Freeze(*r, e2)
        }
        Stmt::Load(r, _, _) | Stmt::Choose(r, _) => {
            state.remove(r);
            s.clone()
        }
        Stmt::Cas {
            dst,
            loc,
            expected,
            new,
            mode,
        } => {
            let out = Stmt::Cas {
                dst: *dst,
                loc: *loc,
                expected: simp(expected, state, stats),
                new: simp(new, state, stats),
                mode: *mode,
            };
            state.remove(dst);
            out
        }
        Stmt::Fadd {
            dst,
            loc,
            operand,
            mode,
        } => {
            let out = Stmt::Fadd {
                dst: *dst,
                loc: *loc,
                operand: simp(operand, state, stats),
                mode: *mode,
            };
            state.remove(dst);
            out
        }
        Stmt::Skip | Stmt::Fence(_) | Stmt::Abort => s.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn run(src: &str) -> (String, PassStats) {
        let p = parse_program(src).unwrap();
        let (out, stats) = ConstProp::run(&p);
        (out.to_string(), stats)
    }

    #[test]
    fn propagates_and_folds() {
        let (out, stats) = run("a := 2; b := a + 3; store[na](cp1x, b);");
        assert!(out.contains("b := 5;"), "{out}");
        assert!(out.contains("store[na](cp1x, 5);"), "{out}");
        assert!(stats.rewrites >= 2);
    }

    #[test]
    fn load_kills_constant() {
        let (out, _) = run("a := 2; a := load[na](cp2x); b := a + 1; return b;");
        assert!(out.contains("b := (a + 1);"), "{out}");
    }

    #[test]
    fn branch_join_keeps_agreeing_constants() {
        let (out, _) = run("c := load[rlx](cp3f);
             if (c == 0) { a := 1; } else { a := 1; }
             store[na](cp3x, a);");
        assert!(out.contains("store[na](cp3x, 1);"), "{out}");
        let (out, _) = run("c := load[rlx](cp4f);
             if (c == 0) { a := 1; } else { a := 2; }
             store[na](cp4x, a);");
        assert!(out.contains("store[na](cp4x, a);"), "{out}");
    }

    #[test]
    fn division_by_zero_not_folded() {
        let (out, _) = run("a := 0; b := 1 / a;");
        assert!(out.contains("(1 / 0)"), "the fault is preserved: {out}");
    }

    #[test]
    fn freeze_of_constant_is_identity() {
        let (out, stats) = run("a := 3; b := freeze(a); return b;");
        assert!(out.contains("b := 3;"), "{out}");
        assert!(stats.rewrites >= 1);
    }

    #[test]
    fn loop_carried_register_not_constant() {
        let (out, _) = run("i := 0; while (i < 3) { i := i + 1; } store[na](cp5x, i);");
        assert!(out.contains("store[na](cp5x, i);"), "{out}");
    }

    #[test]
    fn enables_slf_on_register_stores() {
        // constprop turns `store(x, a)` into `store(x, 7)`, which SLF's
        // constant-only domain (Fig. 3) can then forward.
        use crate::pipeline::{PassKind, Pipeline, PipelineConfig};
        let p =
            parse_program("a := 7; store[na](cp6x, a); b := load[na](cp6x); return b;").unwrap();
        let with = Pipeline::new(PipelineConfig {
            passes: vec![PassKind::ConstProp, PassKind::Slf],
            rounds: 1,
        })
        .optimize(&p);
        assert!(
            with.program.to_string().contains("b := 7;"),
            "{}",
            with.program
        );
        let without = Pipeline::new(PipelineConfig {
            passes: vec![PassKind::Slf],
            rounds: 1,
        })
        .optimize(&p);
        assert!(without.program.to_string().contains("b := load[na]"));
    }
}
