//! Planted-unsound pass variants, one per new pass family.
//!
//! Compiled only under `--features fault-injection`. Each variant is a
//! *plausible-looking* but known-unsound sibling of a real pass; the
//! conformance battery (`tests/opt_validation.rs`) runs every one
//! through the translation validator and asserts it is refuted. If a
//! planted bug ever validates, the validator — not the pass — is what
//! broke.
//!
//! The four plants:
//!
//! * [`PlantedOptBug::PromoteUngated`] — register promotion that skips
//!   both the context-sharing check and the LDRF gate, promoting every
//!   non-atomic location as if the program were closed. Racy contexts
//!   then observe the hoisted prologue load / write-back.
//! * [`PlantedOptBug::FenceElimAcrossAcquire`] — fence elimination that
//!   deletes *every* acquire-side fence, vacuous or not, destroying the
//!   reader side of message passing.
//! * [`PlantedOptBug::ModeWeakensAcquire`] — access-"mode optimization"
//!   that rewrites `load[acq]` to `load[rlx]`, the strengthening
//!   rewrite run backwards.
//! * [`PlantedOptBug::RmwDropsWrite`] — RMW simplification that turns
//!   *any* RMW into a plain load of its read-side mode, discarding the
//!   write (and its atomicity) entirely.

use std::fmt;

use seqwm_lang::{Program, Stmt};

use crate::pipeline::PassStats;
use crate::promote::promote_unchecked;
use crate::rmw::map_leaves;

/// A deliberately unsound variant of one of the new pass families.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlantedOptBug {
    /// Promotion without the DRF gate (ignores context and LDRF).
    PromoteUngated,
    /// Deletes every acquire-side fence.
    FenceElimAcrossAcquire,
    /// Weakens `load[acq]` to `load[rlx]`.
    ModeWeakensAcquire,
    /// Replaces any RMW by a load, dropping the write.
    RmwDropsWrite,
}

impl PlantedOptBug {
    /// Every planted variant.
    pub fn all() -> [PlantedOptBug; 4] {
        [
            PlantedOptBug::PromoteUngated,
            PlantedOptBug::FenceElimAcrossAcquire,
            PlantedOptBug::ModeWeakensAcquire,
            PlantedOptBug::RmwDropsWrite,
        ]
    }

    /// Stable name, usable from CLI/battery output.
    pub fn name(self) -> &'static str {
        match self {
            PlantedOptBug::PromoteUngated => "promote-ungated",
            PlantedOptBug::FenceElimAcrossAcquire => "fence-elim-across-acquire",
            PlantedOptBug::ModeWeakensAcquire => "mode-weakens-acquire",
            PlantedOptBug::RmwDropsWrite => "rmw-drops-write",
        }
    }

    /// Parses a planted-bug name.
    pub fn parse(name: &str) -> Option<PlantedOptBug> {
        PlantedOptBug::all().into_iter().find(|b| b.name() == name)
    }

    /// Runs the unsound rewrite.
    pub fn run(self, prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new(self.name());
        stats.note_iterations(1);
        let out = match self {
            PlantedOptBug::PromoteUngated => {
                let na = prog.body.na_locs();
                let atomic = prog.body.atomic_locs();
                let candidates: Vec<_> = na.difference(&atomic).copied().collect();
                let (out, n) = promote_unchecked(prog, &candidates);
                stats.rewrites = n;
                out
            }
            PlantedOptBug::FenceElimAcrossAcquire => {
                let body = map_leaves(&prog.body, &mut |s| match s {
                    Stmt::Fence(m) if m.is_acquire() => {
                        stats.rewrites += 1;
                        Some(Stmt::Skip)
                    }
                    _ => None,
                });
                Program::new(body)
            }
            PlantedOptBug::ModeWeakensAcquire => {
                let body = map_leaves(&prog.body, &mut |s| match s {
                    Stmt::Load(r, x, seqwm_lang::ReadMode::Acq) => {
                        stats.rewrites += 1;
                        Some(Stmt::Load(*r, *x, seqwm_lang::ReadMode::Rlx))
                    }
                    _ => None,
                });
                Program::new(body)
            }
            PlantedOptBug::RmwDropsWrite => {
                let body = map_leaves(&prog.body, &mut |s| match s {
                    Stmt::Cas { dst, loc, mode, .. } => {
                        stats.rewrites += 1;
                        Some(Stmt::Load(*dst, *loc, mode.read_mode()))
                    }
                    Stmt::Fadd { dst, loc, mode, .. } => {
                        stats.rewrites += 1;
                        Some(Stmt::Load(*dst, *loc, mode.read_mode()))
                    }
                    _ => None,
                });
                Program::new(body)
            }
        };
        (out, stats)
    }
}

impl fmt::Display for PlantedOptBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    #[test]
    fn names_round_trip() {
        for b in PlantedOptBug::all() {
            assert_eq!(PlantedOptBug::parse(b.name()), Some(b));
        }
        assert_eq!(PlantedOptBug::parse("nope"), None);
    }

    #[test]
    fn each_plant_rewrites_its_trigger_shape() {
        let cases = [
            (
                PlantedOptBug::PromoteUngated,
                "a := load[na](pb_d); return a;",
            ),
            (
                PlantedOptBug::FenceElimAcrossAcquire,
                "a := load[rlx](pb_f); fence[acq]; return a;",
            ),
            (
                PlantedOptBug::ModeWeakensAcquire,
                "a := load[acq](pb_f); return a;",
            ),
            (
                PlantedOptBug::RmwDropsWrite,
                "a := fadd[rlx](pb_x, 1); return a;",
            ),
        ];
        for (bug, src) in cases {
            let p = parse_program(src).unwrap();
            let (q, stats) = bug.run(&p);
            assert!(stats.rewrites > 0, "{bug} did not fire on {src}");
            assert_ne!(q, p, "{bug}");
            assert_eq!(parse_program(&q.to_string()).unwrap(), q, "{bug}: {q}");
        }
    }
}
