//! Load-to-load forwarding (LLF) — the analysis of Fig. 8a (App. D).
//!
//! The abstract state assigns to every shared location the set of registers
//! that (still) contain a value loaded from it since the last acquire:
//! `x ↦ R` with ordering `D1 ⊑ D2 ⇔ ∀x. D1(x) ⊇ D2(x)` (larger sets are
//! more precise; joins intersect). A read `a := x^na` with `r ∈ D(x)`
//! rewrites to `a := r`.
//!
//! Beyond Fig. 8a we must also account for register kills: any statement
//! that (re)assigns a register removes it from every location's set.

use std::collections::{BTreeMap, BTreeSet};

use seqwm_lang::{Expr, Loc, Program, ReadMode, Reg, Stmt};

use crate::pipeline::PassStats;
use crate::slf::is_acquire;

/// The abstract state: locations not present map to `∅` (no information).
pub type State = BTreeMap<Loc, BTreeSet<Reg>>;

fn join(a: &State, b: &State) -> State {
    let mut out = State::new();
    for (x, ra) in a {
        if let Some(rb) = b.get(x) {
            let inter: BTreeSet<Reg> = ra.intersection(rb).copied().collect();
            if !inter.is_empty() {
                out.insert(*x, inter);
            }
        }
    }
    out
}

/// The register (re)assigned by a statement, if any.
fn killed_reg(s: &Stmt) -> Option<Reg> {
    match s {
        Stmt::Assign(r, _) | Stmt::Load(r, _, _) | Stmt::Choose(r, _) | Stmt::Freeze(r, _) => {
            Some(*r)
        }
        Stmt::Cas { dst, .. } | Stmt::Fadd { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn transfer(s: &Stmt, state: &mut State) {
    // Register kill first (the old value is gone before the new binding).
    if let Some(r) = killed_reg(s) {
        for set in state.values_mut() {
            set.remove(&r);
        }
        state.retain(|_, set| !set.is_empty());
    }
    if is_acquire(s) {
        // Acquires may import new memory values: all sets reset (Fig. 8a).
        state.clear();
    }
    match s {
        // A write to x invalidates registers holding x's old value.
        Stmt::Store(x, _, _) => {
            state.remove(x);
        }
        Stmt::Cas { loc, .. } | Stmt::Fadd { loc, .. } => {
            state.remove(loc);
        }
        // A non-atomic load records its destination register.
        Stmt::Load(r, x, ReadMode::Na) => {
            state.entry(*x).or_default().insert(*r);
        }
        _ => {}
    }
}

/// The LLF pass.
pub struct LoadToLoadForwarding;

impl LoadToLoadForwarding {
    /// Runs the pass on a whole program.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new("llf");
        let mut state = State::new();
        let body = rewrite(&prog.body, &mut state, &mut stats);
        (Program::new(body), stats)
    }
}

fn rewrite(s: &Stmt, state: &mut State, stats: &mut PassStats) -> Stmt {
    match s {
        Stmt::Seq(a, b) => {
            let a2 = rewrite(a, state, stats);
            let b2 = rewrite(b, state, stats);
            Stmt::seq(a2, b2)
        }
        Stmt::If(c, a, b) => {
            let mut sa = state.clone();
            let mut sb = state.clone();
            let a2 = rewrite(a, &mut sa, stats);
            let b2 = rewrite(b, &mut sb, stats);
            *state = join(&sa, &sb);
            Stmt::If(c.clone(), Box::new(a2), Box::new(b2))
        }
        Stmt::While(c, body) => {
            let mut head = state.clone();
            let mut iterations = 0;
            loop {
                iterations += 1;
                stats.note_iterations(iterations);
                let mut out = head.clone();
                let mut throwaway = PassStats::new("llf");
                let _ = rewrite(body, &mut out, &mut throwaway);
                let next = join(&head, &out);
                if next == head {
                    break;
                }
                head = next;
                assert!(
                    iterations <= 8,
                    "LLF loop analysis failed to stabilize (paper bound: 3)"
                );
            }
            let mut body_state = head.clone();
            let body2 = rewrite(body, &mut body_state, stats);
            *state = head;
            Stmt::While(c.clone(), Box::new(body2))
        }
        Stmt::Load(r, x, ReadMode::Na) => {
            // Prefer an existing register over re-loading.
            if let Some(src) = state.get(x).and_then(|set| set.iter().next().copied()) {
                if src != *r {
                    stats.rewrites += 1;
                    let out = Stmt::Assign(*r, Expr::Reg(src));
                    let mut st2 = state.clone();
                    transfer(&out, &mut st2);
                    // r now also holds x's value.
                    st2.entry(*x).or_default().insert(*r);
                    *state = st2;
                    return out;
                }
            }
            let out = s.clone();
            transfer(&out, state);
            out
        }
        leaf => {
            let out = leaf.clone();
            transfer(&out, state);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn run(src: &str) -> (String, PassStats) {
        let p = parse_program(src).unwrap();
        let (out, stats) = LoadToLoadForwarding::run(&p);
        (out.to_string(), stats)
    }

    #[test]
    fn basic_forwarding() {
        // Example 2.6 (iii): a := x_na ; b := x_na  {  a := x_na ; b := a.
        let (out, stats) = run("a := load[na](l1x); b := load[na](l1x); return b;");
        assert!(out.contains("b := a;"), "{out}");
        assert_eq!(stats.rewrites, 1);
    }

    #[test]
    fn forwarding_across_relaxed_and_release() {
        let (out, stats) = run("a := load[na](l2x);
             store[rel](l2y, 1);
             c := load[rlx](l2z);
             b := load[na](l2x);
             return b;");
        assert!(out.contains("b := a;"), "release/rlx do not kill: {out}");
        assert_eq!(stats.rewrites, 1);
    }

    #[test]
    fn acquire_kills_all_sets() {
        let (out, stats) =
            run("a := load[na](l3x); c := load[acq](l3y); b := load[na](l3x); return b;");
        assert!(out.contains("b := load[na](l3x);"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn register_reassignment_kills() {
        let (out, stats) = run("a := load[na](l4x); a := a + 1; b := load[na](l4x); return b;");
        assert!(out.contains("b := load[na](l4x);"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn write_to_location_kills() {
        let (out, stats) =
            run("a := load[na](l5x); store[na](l5x, 9); b := load[na](l5x); return b;");
        assert!(out.contains("b := load[na](l5x);"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn chained_forwarding() {
        let (out, stats) =
            run("a := load[na](l6x); b := load[na](l6x); c := load[na](l6x); return c;");
        assert!(out.contains("b := a;"), "{out}");
        assert!(out.contains("c := a;") || out.contains("c := b;"), "{out}");
        assert_eq!(stats.rewrites, 2);
    }

    #[test]
    fn branch_join_intersects() {
        let (out, _) = run("l := load[rlx](l7f);
             if (l == 0) { a := load[na](l7x); } else { a := load[na](l7x); }
             b := load[na](l7x); return b;");
        assert!(out.contains("b := a;"), "both branches load into a: {out}");
        let (out, _) = run("l := load[rlx](l8f);
             if (l == 0) { a := load[na](l8x); } else { skip; }
             b := load[na](l8x); return b;");
        assert!(
            out.contains("b := load[na](l8x);"),
            "one branch lacks the load: {out}"
        );
    }

    #[test]
    fn loop_invariant_load_forwarded_from_preheader() {
        // The LLF half of LICM: a load before the loop feeds the body.
        let (out, stats) = run("c := load[na](l9x);
             while (i < 3) { a := load[na](l9x); i := i + 1; }
             return a;");
        assert!(out.contains("a := c;"), "{out}");
        assert!(stats.max_fixpoint_iterations <= 3);
    }

    #[test]
    fn loop_with_store_not_forwarded() {
        let (out, _) = run("c := load[na](lax);
             while (i < 3) { a := load[na](lax); store[na](lax, i); i := i + 1; }");
        assert!(out.contains("a := load[na](lax);"), "{out}");
    }
}
