//! Store-to-load forwarding (SLF) — the analysis of Fig. 3 and the pass of
//! §4.
//!
//! The abstract domain assigns to every shared location one of
//!
//! * `x ↦ ◦(v)` — `v` was written to `x` by the most recent write and no
//!   release write has been executed since;
//! * `x ↦ •(v)` — as above, but a release has been executed while a full
//!   release–acquire pair has not;
//! * `x ↦ ⊤` — anything else.
//!
//! ordered `◦(v) ⊑ •(v) ⊑ ⊤`. A read `a := x^na` rewrites to `a := v` when
//! the token is `◦(v)` or `•(v)`: even if the permission on `x` was lost at
//! the release, the *memory value* of `x` is still `v`, so the read returns
//! `v` or `undef` — and `v ⊑ undef` makes the rewrite sound (§4).

use std::collections::BTreeMap;

use seqwm_lang::{Expr, Loc, Program, ReadMode, Stmt, WriteMode};

use crate::pipeline::PassStats;

/// An SLF abstract token (Fig. 3). `⊤` is represented by absence from the
/// map.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Token {
    /// `◦(v)`: fresh write, no release since.
    Circle(i64),
    /// `•(v)`: a release intervened, no acquire since.
    Bullet(i64),
}

/// The abstract state: locations not present map to `⊤`.
pub type State = BTreeMap<Loc, Token>;

/// The join of two abstract states (pointwise least upper bound).
fn join(a: &State, b: &State) -> State {
    let mut out = State::new();
    for (x, ta) in a {
        if let Some(tb) = b.get(x) {
            let j = match (ta, tb) {
                (Token::Circle(v), Token::Circle(w)) if v == w => Some(Token::Circle(*v)),
                (Token::Circle(v), Token::Bullet(w))
                | (Token::Bullet(v), Token::Circle(w))
                | (Token::Bullet(v), Token::Bullet(w))
                    if v == w =>
                {
                    Some(Token::Bullet(*v))
                }
                _ => None, // different values: ⊤
            };
            if let Some(j) = j {
                out.insert(*x, j);
            }
        }
    }
    out
}

/// Does this statement perform a release (write, fence, or RMW write-side)?
pub(crate) fn is_release(s: &Stmt) -> bool {
    match s {
        Stmt::Store(_, WriteMode::Rel, _) => true,
        Stmt::Fence(m) => m.is_release(),
        Stmt::Cas { mode, .. } | Stmt::Fadd { mode, .. } => mode.write_mode() == WriteMode::Rel,
        _ => false,
    }
}

/// Does this statement perform an acquire (read, fence, or RMW read-side)?
pub(crate) fn is_acquire(s: &Stmt) -> bool {
    match s {
        Stmt::Load(_, _, ReadMode::Acq) => true,
        Stmt::Fence(m) => m.is_acquire(),
        Stmt::Cas { mode, .. } | Stmt::Fadd { mode, .. } => mode.read_mode() == ReadMode::Acq,
        _ => false,
    }
}

/// Applies the transfer function of Fig. 3 for an atomic (leaf) statement,
/// *after* any rewriting of the statement itself.
fn transfer(s: &Stmt, state: &mut State) {
    // Order matters for RMWs (acquire then release): acquire first.
    if is_acquire(s) {
        // •(v) → ⊤ for every location.
        state.retain(|_, t| matches!(t, Token::Circle(_)));
    }
    if is_release(s) {
        // ◦(v) → •(v) for every location.
        for t in state.values_mut() {
            if let Token::Circle(v) = *t {
                *t = Token::Bullet(v);
            }
        }
    }
    match s {
        Stmt::Store(x, WriteMode::Na, e) => {
            match e {
                Expr::Const(v) => match v.as_int() {
                    Some(n) => {
                        state.insert(*x, Token::Circle(n));
                    }
                    None => {
                        state.remove(x); // store of undef: ⊤
                    }
                },
                _ => {
                    state.remove(x); // non-constant store: ⊤ (conservative)
                }
            }
        }
        // Atomic stores to x (no na/at mixing, so x is never na-read; we
        // still invalidate defensively).
        Stmt::Store(x, _, _) => {
            state.remove(x);
        }
        Stmt::Cas { loc, .. } | Stmt::Fadd { loc, .. } => {
            state.remove(loc);
        }
        _ => {}
    }
}

/// The SLF pass: rewrite analysis + transformation.
pub struct StoreToLoadForwarding;

impl StoreToLoadForwarding {
    /// Runs the pass on a whole program.
    pub fn run(prog: &Program) -> (Program, PassStats) {
        let mut stats = PassStats::new("slf");
        let mut state = State::new(); // ⊤ everywhere (initial, Fig. 3)
        let body = rewrite(&prog.body, &mut state, &mut stats);
        (Program::new(body), stats)
    }
}

fn rewrite(s: &Stmt, state: &mut State, stats: &mut PassStats) -> Stmt {
    match s {
        Stmt::Seq(a, b) => {
            let a2 = rewrite(a, state, stats);
            let b2 = rewrite(b, state, stats);
            Stmt::seq(a2, b2)
        }
        Stmt::If(c, a, b) => {
            let mut sa = state.clone();
            let mut sb = state.clone();
            let a2 = rewrite(a, &mut sa, stats);
            let b2 = rewrite(b, &mut sb, stats);
            *state = join(&sa, &sb);
            Stmt::If(c.clone(), Box::new(a2), Box::new(b2))
        }
        Stmt::While(c, body) => {
            // Fixpoint of the loop head state (the paper proves at most
            // three iterations are needed; we assert a small cap).
            let mut head = state.clone();
            let mut iterations = 0;
            loop {
                iterations += 1;
                stats.note_iterations(iterations);
                let mut out = head.clone();
                let mut throwaway = PassStats::new("slf");
                let _ = rewrite(body, &mut out, &mut throwaway);
                let next = join(&head, &out);
                if next == head {
                    break;
                }
                head = next;
                assert!(
                    iterations <= 8,
                    "SLF loop analysis failed to stabilize (paper bound: 3)"
                );
            }
            let mut body_state = head.clone();
            let body2 = rewrite(body, &mut body_state, stats);
            *state = head;
            Stmt::While(c.clone(), Box::new(body2))
        }
        // The rewrite: a := x^na with token ◦(v)/•(v) becomes a := v.
        Stmt::Load(r, x, ReadMode::Na) => {
            if let Some(Token::Circle(v) | Token::Bullet(v)) = state.get(x).copied() {
                stats.rewrites += 1;
                Stmt::Assign(*r, Expr::int(v))
            } else {
                s.clone()
            }
        }
        leaf => {
            let out = leaf.clone();
            transfer(&out, state);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::{parse_program, parse_stmt};

    fn run(src: &str) -> (String, PassStats) {
        let p = parse_program(src).unwrap();
        let (out, stats) = StoreToLoadForwarding::run(&p);
        (out.to_string(), stats)
    }

    #[test]
    fn example_1_1_basic_forwarding() {
        let (out, stats) = run("store[na](s1x, 1); b := load[na](s1x); return b;");
        assert!(out.contains("b := 1;"), "{out}");
        assert_eq!(stats.rewrites, 1);
    }

    #[test]
    fn figure_4_example() {
        // The paper's Fig. 4: both loads of x are forwarded to 42, across
        // the acquire read and the release write.
        let (out, stats) = run("store[na](f4x, 42);
             l := load[acq](f4y);
             if (l == 0) { a := load[na](f4x); }
             store[rel](f4y, 1);
             b := load[na](f4x);
             return b;");
        assert!(
            out.contains("a := 42;"),
            "then-branch load forwarded: {out}"
        );
        assert!(
            out.contains("b := 42;"),
            "post-release load forwarded: {out}"
        );
        assert_eq!(stats.rewrites, 2);
    }

    #[test]
    fn release_acquire_pair_blocks_forwarding() {
        // Example 2.12: a release followed by an acquire invalidates.
        let (out, stats) = run("store[na](s2x, 1);
             store[rel](s2y, 1);
             l := load[acq](s2z);
             b := load[na](s2x);
             return b;");
        assert!(out.contains("b := load[na](s2x);"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn acquire_alone_does_not_block() {
        // Example 2.11 with α = acquire read: still forwardable.
        let (out, stats) =
            run("store[na](s3x, 1); l := load[acq](s3y); b := load[na](s3x); return b;");
        assert!(out.contains("b := 1;"), "{out}");
        assert_eq!(stats.rewrites, 1);
    }

    #[test]
    fn intervening_write_kills_token() {
        let (out, _) = run("store[na](s4x, 1); store[na](s4x, 2); b := load[na](s4x); return b;");
        assert!(out.contains("b := 2;"), "{out}");
        assert!(!out.contains("b := 1;"));
    }

    #[test]
    fn non_constant_store_is_conservative() {
        let (out, stats) = run("a := choose(1, 2); store[na](s5x, a); b := load[na](s5x);");
        assert!(out.contains("b := load[na](s5x);"), "{out}");
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn join_of_branches() {
        // Both branches write 7 → forwardable after the join.
        let (out, _) = run("l := load[rlx](s6y);
             if (l == 0) { store[na](s6x, 7); } else { store[na](s6x, 7); }
             b := load[na](s6x);");
        assert!(out.contains("b := 7;"), "{out}");
        // Different values → not forwardable.
        let (out, _) = run("l := load[rlx](s7y);
             if (l == 0) { store[na](s7x, 7); } else { store[na](s7x, 8); }
             b := load[na](s7x);");
        assert!(out.contains("b := load[na](s7x);"), "{out}");
    }

    #[test]
    fn loop_fixpoint_within_three_iterations() {
        let (out, stats) = run("store[na](s8x, 1);
             while (i < 10) {
                 a := load[na](s8x);
                 store[rel](s8f, 1);
                 i := i + 1;
             }
             b := load[na](s8x);");
        // In-loop load: on the second iteration the state at the loop head
        // is •(1) (after the release) ⊔ ◦(1) = •(1) — still forwardable.
        assert!(out.contains("a := 1;"), "{out}");
        assert!(out.contains("b := 1;"), "{out}");
        assert!(
            stats.max_fixpoint_iterations <= 3,
            "fixpoint in ≤ 3 iterations (paper §4), got {}",
            stats.max_fixpoint_iterations
        );
    }

    #[test]
    fn loop_with_acquire_invalidates() {
        let (out, _) = run("store[na](s9x, 1);
             while (i < 10) {
                 store[rel](s9f, 1);
                 l := load[acq](s9g);
                 i := i + 1;
             }
             b := load[na](s9x);");
        assert!(out.contains("b := load[na](s9x);"), "{out}");
    }

    #[test]
    fn store_of_undef_is_top() {
        let p = parse_stmt("store[na](sux, undef); b := load[na](sux);").unwrap();
        let (out, stats) = StoreToLoadForwarding::run(&Program::new(p));
        assert_eq!(stats.rewrites, 0);
        assert!(out.to_string().contains("load[na](sux)"));
    }
}
