//! Property tests for the optimizer passes: per-pass idempotence,
//! printable/re-parseable output (the canonical-text fingerprint the
//! validation memo store keys on must be stable across every pass's
//! output shapes), and order-insensitivity of the validated pipeline.
//!
//! Programs are drawn from the litmus generator's fuzzing vocabulary;
//! randomness comes from the workspace's own `SplitMix64` (the
//! workspace is dependency-free by design).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use seqwm_explore::{fp64, SplitMix64};
use seqwm_lang::parser::parse_program;
use seqwm_litmus::gen::{random_program, GenConfig};
use seqwm_opt::validate::{optimize_validated_with, ValidationConfig};
use seqwm_opt::{PassKind, Pipeline, PipelineConfig};

fn mix(seed: u64, i: u64) -> SplitMix64 {
    let mut m = SplitMix64::new(seed);
    for _ in 0..=i {
        m.next_u64();
    }
    SplitMix64::new(m.next_u64())
}

/// Every pass reaches a fixpoint in one run: applying it to its own
/// output changes nothing. For promotion this is the profitability
/// guard doing its job — the promoted form sits exactly at the
/// promoted-form access cost and is skipped on the second run.
#[test]
fn every_pass_is_idempotent() {
    let cfg = GenConfig::fuzzing();
    for (pi, pass) in PassKind::extended().into_iter().enumerate() {
        for i in 0..40u64 {
            let mut rng = mix(0x01de_0001 + pi as u64, i);
            let p = random_program(&mut rng, &cfg);
            let (once, _) = pass.run(&p);
            let (twice, stats) = pass.run(&once);
            assert_eq!(
                twice, once,
                "{pass} is not idempotent on:\n{p}\nfirst output:\n{once}"
            );
            assert_eq!(stats.rewrites, 0, "{pass} re-rewrote its own output");
        }
    }
}

/// Every pass's output survives a parse–print–parse round trip, and the
/// canonical-text fingerprint (what `validate`'s memo store keys on) is
/// identical on both sides. A pass emitting a shape the printer and
/// parser disagree on would silently poison the memo cache.
#[test]
fn pass_output_roundtrips_and_fingerprints_stably() {
    let cfg = GenConfig::fuzzing();
    for (pi, pass) in PassKind::extended().into_iter().enumerate() {
        for i in 0..40u64 {
            let mut rng = mix(0x0f9e_0002 + pi as u64, i);
            let p = random_program(&mut rng, &cfg);
            let (out, _) = pass.run(&p);
            let text = out.to_string();
            let reparsed = parse_program(&text)
                .unwrap_or_else(|e| panic!("{pass} output does not re-parse: {e}\n{text}"));
            assert_eq!(reparsed, out, "{pass} output changed under roundtrip");
            assert_eq!(
                fp64(&text),
                fp64(&reparsed.to_string()),
                "{pass} canonical-text fingerprint unstable"
            );
        }
    }
}

fn shuffled(passes: &[PassKind], rng: &mut SplitMix64) -> Vec<PassKind> {
    let mut v = passes.to_vec();
    for i in (1..v.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// Whatever order the passes run in, every stage still discharges its
/// validation obligation: the pipeline's soundness is per-rewrite, not
/// an artifact of the default schedule.
#[test]
fn validated_pipeline_accepts_any_pass_order() {
    let gen = GenConfig::fuzzing();
    let vcfg = ValidationConfig::default();
    let mut order_rng = SplitMix64::new(0x5e90_0d03);
    for i in 0..6u64 {
        let mut rng = mix(0x0abc_0003, i);
        let p = random_program(&mut rng, &gen);
        for _ in 0..2 {
            let passes = shuffled(&PassKind::extended(), &mut order_rng);
            let cfg = PipelineConfig {
                passes: passes.clone(),
                rounds: 1,
            };
            let v = optimize_validated_with(&p, cfg, &vcfg, None)
                .unwrap_or_else(|e| panic!("order {passes:?} refuted on:\n{p}\nfailure: {e}"));
            // The reordered pipeline's output is itself a fixpoint
            // candidate: re-running the same order rewrites nothing new
            // beyond what enabling interactions allow, and always
            // re-validates.
            let again =
                Pipeline::new(PipelineConfig { passes, rounds: 1 }).optimize(&v.result.program);
            assert_eq!(
                again.program, v.result.program,
                "pipeline not stable on its own output for:\n{p}"
            );
        }
    }
}
