//! Random program generation for property-based and differential testing
//! (the workhorse of the adequacy experiment E8).
//!
//! Generated programs draw from fixed, disjoint pools of non-atomic and
//! atomic locations so that any two generated programs can be composed in
//! SEQ (no-mixing) and in PS^na.
//!
//! Randomness comes from the dependency-free [`SplitMix64`] generator of
//! `seqwm-explore`, so generation is seed-deterministic across platforms
//! and builds without any external crates.

use seqwm_explore::SplitMix64;

use seqwm_lang::expr::{BinOp, Expr};
use seqwm_lang::{Loc, Program, ReadMode, Reg, Stmt, WriteMode};

/// Configuration for the random program generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of top-level statements.
    pub max_stmts: usize,
    /// Non-atomic locations to draw from.
    pub na_locs: Vec<Loc>,
    /// Atomic locations to draw from.
    pub atomic_locs: Vec<Loc>,
    /// Registers to draw from.
    pub regs: Vec<Reg>,
    /// Constant values to draw from.
    pub values: Vec<i64>,
    /// Probability (×100) of nesting an `if`.
    pub branch_percent: u32,
    /// Generate atomic accesses at all?
    pub atomics: bool,
    /// End with `return r` for a random register?
    pub returns: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_stmts: 6,
            na_locs: vec![Loc::new("gx"), Loc::new("gy")],
            atomic_locs: vec![Loc::new("gf"), Loc::new("gg")],
            regs: vec![Reg::new("r0"), Reg::new("r1"), Reg::new("r2")],
            values: vec![0, 1, 2],
            branch_percent: 20,
            atomics: true,
            returns: true,
        }
    }
}

fn pick<'a, T>(rng: &mut SplitMix64, xs: &'a [T]) -> &'a T {
    rng.choose(xs)
}

fn random_expr(rng: &mut SplitMix64, cfg: &GenConfig) -> Expr {
    match rng.below(4) {
        0 => Expr::int(*pick(rng, &cfg.values)),
        1 => Expr::Reg(*pick(rng, &cfg.regs)),
        2 => Expr::bin(
            BinOp::Add,
            Expr::Reg(*pick(rng, &cfg.regs)),
            Expr::int(*pick(rng, &cfg.values)),
        ),
        _ => Expr::eq(
            Expr::Reg(*pick(rng, &cfg.regs)),
            Expr::int(*pick(rng, &cfg.values)),
        ),
    }
}

fn random_stmt(rng: &mut SplitMix64, cfg: &GenConfig, depth: usize) -> Stmt {
    let choices = if cfg.atomics { 8 } else { 5 };
    match rng.below(choices) {
        0 => Stmt::Assign(*pick(rng, &cfg.regs), random_expr(rng, cfg)),
        1 => Stmt::Load(
            *pick(rng, &cfg.regs),
            *pick(rng, &cfg.na_locs),
            ReadMode::Na,
        ),
        2 => Stmt::Store(
            *pick(rng, &cfg.na_locs),
            WriteMode::Na,
            Expr::int(*pick(rng, &cfg.values)),
        ),
        3 => Stmt::Store(
            *pick(rng, &cfg.na_locs),
            WriteMode::Na,
            Expr::Reg(*pick(rng, &cfg.regs)),
        ),
        4 => {
            if depth > 0 && rng.chance(cfg.branch_percent) {
                Stmt::If(
                    Expr::eq(Expr::Reg(*pick(rng, &cfg.regs)), Expr::int(0)),
                    Box::new(random_stmt(rng, cfg, depth - 1)),
                    Box::new(random_stmt(rng, cfg, depth - 1)),
                )
            } else {
                Stmt::Skip
            }
        }
        5 => Stmt::Load(
            *pick(rng, &cfg.regs),
            *pick(rng, &cfg.atomic_locs),
            if rng.flip() {
                ReadMode::Rlx
            } else {
                ReadMode::Acq
            },
        ),
        6 => Stmt::Store(
            *pick(rng, &cfg.atomic_locs),
            if rng.flip() {
                WriteMode::Rlx
            } else {
                WriteMode::Rel
            },
            Expr::int(*pick(rng, &cfg.values)),
        ),
        _ => Stmt::Load(
            *pick(rng, &cfg.regs),
            *pick(rng, &cfg.na_locs),
            ReadMode::Na,
        ),
    }
}

/// Generates a random loop-free program.
pub fn random_program(rng: &mut SplitMix64, cfg: &GenConfig) -> Program {
    let n = rng.range_inclusive(1, cfg.max_stmts);
    let mut stmts: Vec<Stmt> = (0..n).map(|_| random_stmt(rng, cfg, 1)).collect();
    if cfg.returns {
        stmts.push(Stmt::Return(Expr::Reg(*pick(rng, &cfg.regs))));
    }
    Program::new(Stmt::block(stmts))
}

/// Generates a small random *context* thread: it communicates through the
/// shared footprint using properly synchronized accesses (acquire the
/// flag, then touch the data), so compositions stay explorable.
pub fn random_context(rng: &mut SplitMix64, cfg: &GenConfig) -> Program {
    let flag = *pick(rng, &cfg.atomic_locs);
    let data = *pick(rng, &cfg.na_locs);
    let r = *pick(rng, &cfg.regs);
    let v = *pick(rng, &cfg.values);
    let body = match rng.below(4) {
        0 => Stmt::block([
            Stmt::Load(r, flag, ReadMode::Acq),
            Stmt::If(
                Expr::eq(Expr::Reg(r), Expr::int(v)),
                Box::new(Stmt::Load(Reg::new("ctx"), data, ReadMode::Na)),
                Box::new(Stmt::Skip),
            ),
            Stmt::Return(Expr::Reg(r)),
        ]),
        1 => Stmt::block([
            Stmt::Store(data, WriteMode::Na, Expr::int(v)),
            Stmt::Store(flag, WriteMode::Rel, Expr::int(1)),
            Stmt::Return(Expr::int(0)),
        ]),
        2 => Stmt::block([
            Stmt::Load(r, flag, ReadMode::Rlx),
            Stmt::Store(flag, WriteMode::Rlx, Expr::int(v)),
            Stmt::Return(Expr::Reg(r)),
        ]),
        _ => Stmt::Return(Expr::int(0)),
    };
    Program::new(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_never_mix_access_modes() {
        let cfg = GenConfig::default();
        let mut rng = SplitMix64::new(0xC0FFEE);
        for _ in 0..200 {
            let p = random_program(&mut rng, &cfg);
            let na = p.na_locs();
            let at = p.atomic_locs();
            assert!(na.intersection(&at).next().is_none(), "mixed access: {p}");
        }
    }

    #[test]
    fn generated_programs_parse_back() {
        let cfg = GenConfig::default();
        let mut rng = SplitMix64::new(42);
        for _ in 0..100 {
            let p = random_program(&mut rng, &cfg);
            let printed = p.to_string();
            let reparsed = seqwm_lang::parser::parse_program(&printed)
                .unwrap_or_else(|e| panic!("generated program must re-parse: {e}\n{printed}"));
            assert_eq!(p, reparsed);
        }
    }

    #[test]
    fn contexts_share_the_footprint() {
        let cfg = GenConfig::default();
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let c = random_context(&mut rng, &cfg);
            for x in c.na_locs() {
                assert!(cfg.na_locs.contains(&x));
            }
            for x in c.atomic_locs() {
                assert!(cfg.atomic_locs.contains(&x));
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = GenConfig::default();
        let a = random_program(&mut SplitMix64::new(9), &cfg);
        let b = random_program(&mut SplitMix64::new(9), &cfg);
        assert_eq!(a, b);
    }
}
