//! Random program generation for property-based and differential testing
//! (the workhorse of the adequacy experiment E8 and the `seqwm-fuzz`
//! campaign driver).
//!
//! Generated programs draw from fixed, disjoint pools of non-atomic and
//! atomic locations so that any two generated programs can be composed in
//! SEQ (no-mixing) and in PS^na.
//!
//! Randomness comes from the dependency-free [`SplitMix64`] generator of
//! `seqwm-explore`, so generation is seed-deterministic across platforms
//! and builds without any external crates.
//!
//! Generation never panics: a statement constructor whose pool is empty
//! (a *degenerate* config — no registers, no locations, no values) is
//! rejected and another constructor is retried; if nothing at all is
//! generatable the program degrades to `return 0`.

use seqwm_explore::SplitMix64;

use seqwm_lang::event::{FenceMode, RmwMode};
use seqwm_lang::expr::{BinOp, Expr};
use seqwm_lang::{Loc, Program, ReadMode, Reg, Stmt, WriteMode};

/// Configuration for the random program generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum number of top-level statements.
    pub max_stmts: usize,
    /// Non-atomic locations to draw from.
    pub na_locs: Vec<Loc>,
    /// Atomic locations to draw from.
    pub atomic_locs: Vec<Loc>,
    /// Registers to draw from.
    pub regs: Vec<Reg>,
    /// Constant values to draw from.
    pub values: Vec<i64>,
    /// Probability (×100) of nesting an `if`.
    pub branch_percent: u32,
    /// Generate atomic accesses at all?
    pub atomics: bool,
    /// End with `return r` for a random register?
    pub returns: bool,
    /// Probability (×100) that a statement slot becomes a fence
    /// (`0` disables fences *and* draws no randomness for them, keeping
    /// legacy seed-streams unchanged).
    pub fence_percent: u32,
    /// Probability (×100) that a statement slot becomes an RMW (a CAS
    /// or a fetch-and-add on an atomic location).
    pub rmw_percent: u32,
    /// Probability (×100) that a statement slot becomes a bounded
    /// counter loop containing a loop-invariant non-atomic load — the
    /// shape LICM's hoisting stage actually fires on.
    pub loop_percent: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_stmts: 6,
            na_locs: vec![Loc::new("gx"), Loc::new("gy")],
            atomic_locs: vec![Loc::new("gf"), Loc::new("gg")],
            regs: vec![Reg::new("r0"), Reg::new("r1"), Reg::new("r2")],
            values: vec![0, 1, 2],
            branch_percent: 20,
            atomics: true,
            returns: true,
            fence_percent: 0,
            rmw_percent: 0,
            loop_percent: 0,
        }
    }
}

impl GenConfig {
    /// The fuzzing preset: the default pools with the under-generated
    /// constructs (fences, RMWs, invariant-candidate loops) switched on.
    /// Used by `seqwm-fuzz` and the adequacy example.
    pub fn fuzzing() -> Self {
        GenConfig {
            fence_percent: 8,
            rmw_percent: 12,
            loop_percent: 15,
            ..GenConfig::default()
        }
    }
}

/// `rng.choose` that rejects an empty pool instead of panicking.
fn pick<'a, T>(rng: &mut SplitMix64, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(rng.choose(xs))
    }
}

fn random_expr(rng: &mut SplitMix64, cfg: &GenConfig) -> Option<Expr> {
    Some(match rng.below(4) {
        0 => Expr::int(*pick(rng, &cfg.values)?),
        1 => Expr::Reg(*pick(rng, &cfg.regs)?),
        2 => Expr::bin(
            BinOp::Add,
            Expr::Reg(*pick(rng, &cfg.regs)?),
            Expr::int(*pick(rng, &cfg.values)?),
        ),
        _ => Expr::eq(
            Expr::Reg(*pick(rng, &cfg.regs)?),
            Expr::int(*pick(rng, &cfg.values)?),
        ),
    })
}

/// A CAS or fetch-and-add on an atomic location.
fn random_rmw(rng: &mut SplitMix64, cfg: &GenConfig) -> Option<Stmt> {
    let dst = *pick(rng, &cfg.regs)?;
    let loc = *pick(rng, &cfg.atomic_locs)?;
    let mode = *rng.choose(&[RmwMode::Rlx, RmwMode::Acq, RmwMode::Rel, RmwMode::AcqRel]);
    Some(if rng.flip() {
        Stmt::Cas {
            dst,
            loc,
            expected: Expr::int(*pick(rng, &cfg.values)?),
            new: Expr::int(*pick(rng, &cfg.values)?),
            mode,
        }
    } else {
        Stmt::Fadd {
            dst,
            loc,
            operand: Expr::int(*pick(rng, &cfg.values)?),
            mode,
        }
    })
}

/// A bounded counter loop whose body non-atomically loads a location it
/// never writes (and contains no acquire): exactly the candidate shape
/// that LICM's load-introduction stage hoists. The counter register is
/// reserved (`ri`) so the body can never clobber it, which keeps the
/// loop terminating in two iterations.
fn random_loop(rng: &mut SplitMix64, cfg: &GenConfig) -> Option<Stmt> {
    let counter = Reg::new("ri");
    let inv_reg = *pick(rng, &cfg.regs)?;
    let inv_loc = *pick(rng, &cfg.na_locs)?;
    let mut body = vec![Stmt::Load(inv_reg, inv_loc, ReadMode::Na)];
    // Optionally one extra invariant computation, to give the forwarding
    // stage something to chew on.
    if rng.flip() {
        let r = *pick(rng, &cfg.regs)?;
        body.push(Stmt::Assign(
            r,
            Expr::bin(
                BinOp::Add,
                Expr::Reg(inv_reg),
                Expr::int(*pick(rng, &cfg.values)?),
            ),
        ));
    }
    body.push(Stmt::Assign(
        counter,
        Expr::bin(BinOp::Add, Expr::Reg(counter), Expr::int(1)),
    ));
    Some(Stmt::block([
        Stmt::Assign(counter, Expr::int(0)),
        Stmt::While(
            Expr::bin(BinOp::Lt, Expr::Reg(counter), Expr::int(2)),
            Box::new(Stmt::block(body)),
        ),
    ]))
}

/// One draw of the legacy constructor table. `None` means the drawn
/// constructor needs an empty pool (degenerate config) — the caller
/// rejects and retries.
fn base_stmt(rng: &mut SplitMix64, cfg: &GenConfig, depth: usize) -> Option<Stmt> {
    let choices = if cfg.atomics { 8 } else { 5 };
    Some(match rng.below(choices) {
        0 => Stmt::Assign(*pick(rng, &cfg.regs)?, random_expr(rng, cfg)?),
        1 => Stmt::Load(
            *pick(rng, &cfg.regs)?,
            *pick(rng, &cfg.na_locs)?,
            ReadMode::Na,
        ),
        2 => Stmt::Store(
            *pick(rng, &cfg.na_locs)?,
            WriteMode::Na,
            Expr::int(*pick(rng, &cfg.values)?),
        ),
        3 => Stmt::Store(
            *pick(rng, &cfg.na_locs)?,
            WriteMode::Na,
            Expr::Reg(*pick(rng, &cfg.regs)?),
        ),
        4 => {
            if depth > 0 && rng.chance(cfg.branch_percent) {
                Stmt::If(
                    Expr::eq(Expr::Reg(*pick(rng, &cfg.regs)?), Expr::int(0)),
                    Box::new(random_stmt(rng, cfg, depth - 1)),
                    Box::new(random_stmt(rng, cfg, depth - 1)),
                )
            } else {
                Stmt::Skip
            }
        }
        5 => Stmt::Load(
            *pick(rng, &cfg.regs)?,
            *pick(rng, &cfg.atomic_locs)?,
            if rng.flip() {
                ReadMode::Rlx
            } else {
                ReadMode::Acq
            },
        ),
        6 => Stmt::Store(
            *pick(rng, &cfg.atomic_locs)?,
            if rng.flip() {
                WriteMode::Rlx
            } else {
                WriteMode::Rel
            },
            Expr::int(*pick(rng, &cfg.values)?),
        ),
        _ => Stmt::Load(
            *pick(rng, &cfg.regs)?,
            *pick(rng, &cfg.na_locs)?,
            ReadMode::Na,
        ),
    })
}

fn random_stmt(rng: &mut SplitMix64, cfg: &GenConfig, depth: usize) -> Stmt {
    // Weighted extras first. A zero weight short-circuits before drawing
    // any randomness, so configs that leave the new knobs at 0 generate
    // byte-identical programs to the pre-extension generator.
    if cfg.loop_percent > 0 && depth > 0 && rng.chance(cfg.loop_percent) {
        if let Some(s) = random_loop(rng, cfg) {
            return s;
        }
    }
    if cfg.rmw_percent > 0 && cfg.atomics && rng.chance(cfg.rmw_percent) {
        if let Some(s) = random_rmw(rng, cfg) {
            return s;
        }
    }
    if cfg.fence_percent > 0 && rng.chance(cfg.fence_percent) {
        return Stmt::Fence(*rng.choose(&[
            FenceMode::Acq,
            FenceMode::Rel,
            FenceMode::AcqRel,
            FenceMode::Sc,
        ]));
    }
    // Reject-and-retry over the base table: a constructor that needs an
    // empty pool is abandoned and redrawn instead of panicking.
    for _ in 0..8 {
        if let Some(s) = base_stmt(rng, cfg, depth) {
            return s;
        }
    }
    Stmt::Skip
}

/// Generates a random program. Loop-free unless
/// [`loop_percent`](GenConfig::loop_percent) is nonzero; every generated
/// loop is a bounded counter loop, so programs always terminate.
///
/// Degenerate configs (empty pools, `max_stmts == 0`) never panic: the
/// generator rejects unusable constructors and retries, degrading to
/// `return 0` when nothing is generatable.
pub fn random_program(rng: &mut SplitMix64, cfg: &GenConfig) -> Program {
    let n = rng.range_inclusive(1, cfg.max_stmts.max(1));
    let mut stmts: Vec<Stmt> = (0..n).map(|_| random_stmt(rng, cfg, 1)).collect();
    if cfg.returns {
        stmts.push(Stmt::Return(match pick(rng, &cfg.regs) {
            Some(&r) => Expr::Reg(r),
            None => Expr::int(0),
        }));
    }
    Program::new(Stmt::block(stmts))
}

/// Generates a small random *context* thread: it communicates through the
/// shared footprint using properly synchronized accesses (acquire the
/// flag, then touch the data), so compositions stay explorable. For a
/// degenerate config with empty pools the context degrades to
/// `return 0` instead of panicking.
pub fn random_context(rng: &mut SplitMix64, cfg: &GenConfig) -> Program {
    let (Some(&flag), Some(&data), Some(&r), Some(&v)) = (
        pick(rng, &cfg.atomic_locs),
        pick(rng, &cfg.na_locs),
        pick(rng, &cfg.regs),
        pick(rng, &cfg.values),
    ) else {
        return Program::new(Stmt::Return(Expr::int(0)));
    };
    let body = match rng.below(4) {
        0 => Stmt::block([
            Stmt::Load(r, flag, ReadMode::Acq),
            Stmt::If(
                Expr::eq(Expr::Reg(r), Expr::int(v)),
                Box::new(Stmt::Load(Reg::new("ctx"), data, ReadMode::Na)),
                Box::new(Stmt::Skip),
            ),
            Stmt::Return(Expr::Reg(r)),
        ]),
        1 => Stmt::block([
            Stmt::Store(data, WriteMode::Na, Expr::int(v)),
            Stmt::Store(flag, WriteMode::Rel, Expr::int(1)),
            Stmt::Return(Expr::int(0)),
        ]),
        2 => Stmt::block([
            Stmt::Load(r, flag, ReadMode::Rlx),
            Stmt::Store(flag, WriteMode::Rlx, Expr::int(v)),
            Stmt::Return(Expr::Reg(r)),
        ]),
        _ => Stmt::Return(Expr::int(0)),
    };
    Program::new(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_never_mix_access_modes() {
        let cfg = GenConfig::default();
        let mut rng = SplitMix64::new(0xC0FFEE);
        for _ in 0..200 {
            let p = random_program(&mut rng, &cfg);
            let na = p.na_locs();
            let at = p.atomic_locs();
            assert!(na.intersection(&at).next().is_none(), "mixed access: {p}");
        }
    }

    #[test]
    fn generated_programs_parse_back() {
        let cfg = GenConfig::default();
        let mut rng = SplitMix64::new(42);
        for _ in 0..100 {
            let p = random_program(&mut rng, &cfg);
            let printed = p.to_string();
            let reparsed = seqwm_lang::parser::parse_program(&printed)
                .unwrap_or_else(|e| panic!("generated program must re-parse: {e}\n{printed}"));
            assert_eq!(p, reparsed);
        }
    }

    #[test]
    fn contexts_share_the_footprint() {
        let cfg = GenConfig::default();
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let c = random_context(&mut rng, &cfg);
            for x in c.na_locs() {
                assert!(cfg.na_locs.contains(&x));
            }
            for x in c.atomic_locs() {
                assert!(cfg.atomic_locs.contains(&x));
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = GenConfig::default();
        let a = random_program(&mut SplitMix64::new(9), &cfg);
        let b = random_program(&mut SplitMix64::new(9), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn fuzzing_preset_generates_the_extended_constructs() {
        let cfg = GenConfig {
            max_stmts: 8,
            ..GenConfig::fuzzing()
        };
        let mut rng = SplitMix64::new(0xF022);
        let (mut fences, mut rmws, mut loops) = (0usize, 0usize, 0usize);
        for _ in 0..300 {
            let p = random_program(&mut rng, &cfg);
            p.body.visit(&mut |s| match s {
                Stmt::Fence(_) => fences += 1,
                Stmt::Cas { .. } | Stmt::Fadd { .. } => rmws += 1,
                Stmt::While(_, _) => loops += 1,
                _ => {}
            });
            // New constructs keep the invariants of the old generator.
            assert!(
                p.na_locs().intersection(&p.atomic_locs()).next().is_none(),
                "mixed access: {p}"
            );
            let printed = p.to_string();
            let reparsed = seqwm_lang::parser::parse_program(&printed)
                .unwrap_or_else(|e| panic!("must re-parse: {e}\n{printed}"));
            assert_eq!(p, reparsed);
        }
        assert!(fences > 0, "fences generated");
        assert!(rmws > 0, "RMWs generated");
        assert!(loops > 0, "loops generated");
    }

    #[test]
    fn generated_loops_exercise_licm() {
        // The invariant-candidate loop shape must actually make LICM
        // fire: over a batch of loopy programs, at least one hoist.
        use seqwm_opt_probe::licm_rewrites;
        let cfg = GenConfig {
            loop_percent: 100,
            ..GenConfig::fuzzing()
        };
        let mut rng = SplitMix64::new(0x11C);
        let mut rewrites = 0usize;
        for _ in 0..20 {
            let p = random_program(&mut rng, &cfg);
            rewrites += licm_rewrites(&p);
        }
        assert!(
            rewrites > 0,
            "LICM never fired on invariant-candidate loops"
        );
    }

    /// Minimal probe for the LICM pass without making `seqwm-litmus`
    /// depend on `seqwm-opt` (which would be a dependency cycle for
    /// `seqwm-opt`'s own dev-tests). The loop shape is what matters:
    /// a body that non-atomically reads a location it never writes and
    /// contains no acquire. This re-checks that analysis directly.
    mod seqwm_opt_probe {
        use super::*;
        use std::collections::BTreeSet;

        pub fn licm_rewrites(p: &Program) -> usize {
            let mut candidates = 0usize;
            p.body.visit(&mut |s| {
                if let Stmt::While(_, body) = s {
                    let mut reads: BTreeSet<Loc> = BTreeSet::new();
                    let mut writes: BTreeSet<Loc> = BTreeSet::new();
                    let mut acquires = false;
                    body.visit(&mut |n| match n {
                        Stmt::Load(_, x, m) => {
                            if *m == ReadMode::Na {
                                reads.insert(*x);
                            }
                            acquires |= *m == ReadMode::Acq;
                        }
                        Stmt::Store(x, _, _) => {
                            writes.insert(*x);
                        }
                        Stmt::Cas { loc, .. } | Stmt::Fadd { loc, .. } => {
                            writes.insert(*loc);
                            acquires = true;
                        }
                        Stmt::Fence(m) => acquires |= m.is_acquire(),
                        _ => {}
                    });
                    if !acquires {
                        candidates += reads.difference(&writes).count();
                    }
                }
            });
            candidates
        }
    }

    #[test]
    fn degenerate_configs_never_panic() {
        // Empty pools previously panicked inside `rng.choose`; now the
        // generator rejects-and-retries and degrades gracefully.
        let degenerate = [
            GenConfig {
                regs: vec![],
                ..GenConfig::fuzzing()
            },
            GenConfig {
                na_locs: vec![],
                ..GenConfig::fuzzing()
            },
            GenConfig {
                atomic_locs: vec![],
                ..GenConfig::fuzzing()
            },
            GenConfig {
                values: vec![],
                ..GenConfig::fuzzing()
            },
            GenConfig {
                regs: vec![],
                na_locs: vec![],
                atomic_locs: vec![],
                values: vec![],
                max_stmts: 0,
                ..GenConfig::fuzzing()
            },
        ];
        let mut rng = SplitMix64::new(3);
        for cfg in &degenerate {
            for _ in 0..50 {
                let p = random_program(&mut rng, cfg);
                let _ = random_context(&mut rng, cfg);
                // Whatever came out still parses back.
                let printed = p.to_string();
                assert!(
                    seqwm_lang::parser::parse_program(&printed).is_ok(),
                    "{printed}"
                );
            }
        }
    }
}
