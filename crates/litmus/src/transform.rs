//! The transformation corpus: every `{` / `{̸` claim of the paper as a
//! checkable source/target pair.
//!
//! Each case records which refinement notion is expected to validate it:
//!
//! * [`Expectation::Simple`] — the simple notion (Def. 2.4) validates it
//!   (and, by Prop. 3.4, so does the advanced one);
//! * [`Expectation::AdvancedOnly`] — the simple notion refutes it but the
//!   advanced one (Def. 3.3) validates it (§3's motivating examples);
//! * [`Expectation::Unsound`] — both notions refute it (and the
//!   transformation is genuinely unsound under weak memory).

use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_seq::advanced::refines_advanced;
use seqwm_seq::refine::{refines_simple, RefineConfig};

/// Which refinement notion should validate the case.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// Validated by simple behavioral refinement (§2).
    Simple,
    /// Refuted by the simple notion, validated by the advanced one (§3).
    AdvancedOnly,
    /// Refuted by both notions.
    Unsound,
}

/// A source/target transformation case from the paper.
#[derive(Clone, Debug)]
pub struct TransformCase {
    /// Unique name (used by tests and benches).
    pub name: &'static str,
    /// The paper example/section this case reproduces.
    pub paper_ref: &'static str,
    /// The source program (before the transformation).
    pub src: &'static str,
    /// The target program (after the transformation).
    pub tgt: &'static str,
    /// The expected verdict.
    pub expectation: Expectation,
}

impl TransformCase {
    /// Parses the source program.
    ///
    /// # Panics
    ///
    /// Panics if the corpus contains a syntax error (a bug in this crate).
    pub fn src_program(&self) -> Program {
        parse_program(self.src).expect("corpus source parses")
    }

    /// Parses the target program.
    ///
    /// # Panics
    ///
    /// Panics if the corpus contains a syntax error (a bug in this crate).
    pub fn tgt_program(&self) -> Program {
        parse_program(self.tgt).expect("corpus target parses")
    }

    /// Runs both checkers and compares against the expectation.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if either checker disagrees with the paper.
    pub fn check(&self, cfg: &RefineConfig) -> Result<(), String> {
        let src = self.src_program();
        let tgt = self.tgt_program();
        let simple = refines_simple(&src, &tgt, cfg)
            .map_err(|e| format!("{}: {e}", self.name))?
            .holds;
        let advanced = refines_advanced(&src, &tgt, cfg)
            .map_err(|e| format!("{}: {e}", self.name))?
            .holds;
        // Prop. 3.4: simple ⇒ advanced, always.
        if simple && !advanced {
            return Err(format!(
                "{}: Prop. 3.4 violated (simple holds but advanced does not)",
                self.name
            ));
        }
        let (want_simple, want_advanced) = match self.expectation {
            Expectation::Simple => (true, true),
            Expectation::AdvancedOnly => (false, true),
            Expectation::Unsound => (false, false),
        };
        if simple != want_simple {
            return Err(format!(
                "{} ({}): simple refinement = {simple}, expected {want_simple}",
                self.name, self.paper_ref
            ));
        }
        if advanced != want_advanced {
            return Err(format!(
                "{} ({}): advanced refinement = {advanced}, expected {want_advanced}",
                self.name, self.paper_ref
            ));
        }
        Ok(())
    }
}

macro_rules! case {
    ($name:literal, $ref_:literal, $src:literal => $tgt:literal, $exp:ident) => {
        TransformCase {
            name: $name,
            paper_ref: $ref_,
            src: $src,
            tgt: $tgt,
            expectation: Expectation::$exp,
        }
    };
}

/// The full transformation corpus (§1–§4 of the paper).
pub fn transform_corpus() -> Vec<TransformCase> {
    vec![
        // ------------------------------------------------ §1 motivation --
        case!("slf-basic", "Example 1.1",
            "store[na](x, 1); b := load[na](x); return b;"
            => "store[na](x, 1); b := 1; return b;", Simple),
        // ------------------------------------------- Example 2.5: reorder --
        case!("reorder-na-different-locs", "Example 2.5",
            "a := load[na](x); store[na](y, 1); return a;"
            => "store[na](y, 1); a := load[na](x); return a;", Simple),
        case!("reorder-na-same-loc", "Example 2.5",
            "a := load[na](x); store[na](x, 1); return a;"
            => "store[na](x, 1); a := load[na](x); return a;", Unsound),
        // -------------------------------------- Example 2.6: eliminations --
        case!("elim-overwritten-store", "Example 2.6 (i)",
            "store[na](x, 1); store[na](x, 2);"
            => "store[na](x, 2);", Simple),
        case!("elim-store-load", "Example 2.6 (ii)",
            "store[na](x, 1); a := load[na](x); return a;"
            => "store[na](x, 1); a := 1; return a;", Simple),
        case!("elim-load-load", "Example 2.6 (iii)",
            "a := load[na](x); b := load[na](x); return a + b;"
            => "a := load[na](x); b := a; return a + b;", Simple),
        case!("elim-read-before-write", "Example 2.6 (iv)",
            "a := load[na](x); store[na](x, a); return a;"
            => "a := load[na](x); return a;", Simple),
        case!("intro-write-after-read", "Example 2.6",
            "a := load[na](x); if (a != 1) { store[na](x, 1); } return a;"
            => "a := load[na](x); store[na](x, 1); return a;", Unsound),
        case!("intro-overwritten-store", "Example 2.6 (i) converse",
            "store[na](x, 2);"
            => "store[na](x, 1); store[na](x, 2);", Simple),
        case!("intro-store-load", "Example 2.6 (ii) converse",
            "store[na](x, 1); a := 1; return a;"
            => "store[na](x, 1); a := load[na](x); return a;", Simple),
        case!("intro-load-load", "Example 2.6 (iii) converse",
            "a := load[na](x); b := a; return a + b;"
            => "a := load[na](x); b := load[na](x); return a + b;", Simple),
        // ------------------------------------- Example 2.7: across loops --
        case!("write-before-loop", "Example 2.7",
            "while 1 { skip; } store[na](x, 1);"
            => "store[na](x, 1); while 1 { skip; }", Unsound),
        case!("write-before-loop-partial-trace", "Example 2.7",
            "a := load[na](x); if (a != 1) { store[na](x, 1); } while 1 { skip; } store[na](x, 2);"
            => "a := load[na](x); if (a != 1) { store[na](x, 1); } store[na](x, 2); while 1 { skip; }",
            Unsound),
        case!("read-before-loop", "Example 2.7",
            "while 1 { skip; } a := load[na](x);"
            => "a := load[na](x); while 1 { skip; }", Simple),
        // ------------------------------- Example 2.8: unused loads -------
        case!("elim-unused-load", "Example 2.8",
            "a := load[na](x);"
            => "skip;", Simple),
        case!("intro-unused-load", "Example 2.8",
            "skip;"
            => "a := load[na](x);", Simple),
        case!("intro-unused-store", "§2 (store introduction)",
            "skip;"
            => "store[na](x, 1);", Unsound),
        // ----------------------------- Example 2.9: roach-motel reorders --
        case!("acq-read-then-na-write", "Example 2.9 (i)",
            "a := load[acq](x); store[na](y, 1); return a;"
            => "store[na](y, 1); a := load[acq](x); return a;", Unsound),
        case!("na-write-then-rel-write", "Example 2.9 (ii)",
            "store[na](y, 2); store[rel](x, 1);"
            => "store[rel](x, 1); store[na](y, 2);", Unsound),
        case!("acq-read-then-na-read", "Example 2.9 (iii)",
            "a := load[acq](x); b := load[na](y); return b;"
            => "b := load[na](y); a := load[acq](x); return b;", Unsound),
        case!("na-read-then-rel-write", "Example 2.9 (iv)",
            "a := load[na](y); store[rel](x, 1); return a;"
            => "store[rel](x, 1); a := load[na](y); return a;", Unsound),
        case!("na-write-then-acq-read", "Example 2.9 (i′)",
            "store[na](y, 1); a := load[acq](x); return a;"
            => "a := load[acq](x); store[na](y, 1); return a;", Simple),
        case!("na-read-then-acq-read", "Example 2.9 (iii′)",
            "b := load[na](y); a := load[acq](x); return b;"
            => "a := load[acq](x); b := load[na](y); return b;", Simple),
        case!("rel-write-then-na-read", "Example 2.9 (iv′)",
            "store[rel](x, 1); a := load[na](y); return a;"
            => "a := load[na](y); store[rel](x, 1); return a;", Simple),
        case!("rel-write-then-na-write", "Example 2.9 (ii′) / §3",
            "store[rel](x, 1); store[na](y, 2);"
            => "store[na](y, 2); store[rel](x, 1);", AdvancedOnly),
        // -------------------------- Example 2.10: store intro after rel --
        case!("store-intro-after-rel", "Example 2.10",
            "store[na](x, 1); store[rel](y, 1);"
            => "store[na](x, 1); store[rel](y, 1); store[na](x, 1);", Unsound),
        case!("store-intro-after-rlx", "Example 2.10",
            "store[na](x, 1); store[rlx](y, 1);"
            => "store[na](x, 1); store[rlx](y, 1); store[na](x, 1);", Simple),
        // ----------------------- Example 2.11: SLF across atomics --------
        case!("slf-across-rlx-read", "Example 2.11",
            "store[na](x, 1); a := load[rlx](y); b := load[na](x); return b;"
            => "store[na](x, 1); a := load[rlx](y); b := 1; return b;", Simple),
        case!("slf-across-rlx-write", "Example 2.11",
            "store[na](x, 1); store[rlx](y, 2); b := load[na](x); return b;"
            => "store[na](x, 1); store[rlx](y, 2); b := 1; return b;", Simple),
        case!("slf-across-acq-read", "Example 2.11",
            "store[na](x, 1); a := load[acq](y); b := load[na](x); return b;"
            => "store[na](x, 1); a := load[acq](y); b := 1; return b;", Simple),
        case!("slf-across-rel-write", "Example 2.11",
            "store[na](x, 1); store[rel](y, 2); b := load[na](x); return b;"
            => "store[na](x, 1); store[rel](y, 2); b := 1; return b;", Simple),
        // -------------------- Example 2.12: not across rel-acq pairs -----
        case!("slf-across-rel-acq-pair", "Example 2.12",
            "store[na](x, 1); store[rel](y, 2); a := load[acq](z); b := load[na](x); return b;"
            => "store[na](x, 1); store[rel](y, 2); a := load[acq](z); b := 1; return b;",
            Unsound),
        // ------------------------------------------ §3: late UB ----------
        case!("late-ub-rlx-read-na-write", "§3 Late UB",
            "a := load[rlx](x); store[na](y, 1);"
            => "store[na](y, 1); a := load[rlx](x);", AdvancedOnly),
        case!("acq-read-then-ub", "§3 / Example 3.1",
            "a := load[acq](x); b := 1 / 0;"
            => "b := 1 / 0; a := load[acq](x);", Unsound),
        case!("example-3-1-chain", "Example 3.1",
            "a := load[rlx](x);
             if (a == 1) { a2 := load[acq](x); b := 1 / 0; } else { store[rlx](y, 1); }"
            => "store[rlx](y, 1);
             a := load[rlx](x);
             if (a == 1) { b := 1 / 0; a2 := load[acq](x); }",
            Unsound),
        case!("ub-depends-on-read", "§3 (oracle condition)",
            "a := load[rlx](x); if (a == 1) { b := 1 / 0; } while 1 { skip; }"
            => "b := 1 / 0; a := load[rlx](x); while 1 { skip; }", Unsound),
        // --------------------- Example 3.5: DSE across atomics ------------
        case!("dse-across-rlx-read", "Example 3.5",
            "store[na](x, 1); b := load[rlx](y); store[na](x, 2);"
            => "b := load[rlx](y); store[na](x, 2);", Simple),
        case!("dse-across-rlx-write", "Example 3.5",
            "store[na](x, 1); store[rlx](y, 3); store[na](x, 2);"
            => "store[rlx](y, 3); store[na](x, 2);", Simple),
        case!("dse-across-acq-read", "Example 3.5",
            "store[na](x, 1); b := load[acq](y); store[na](x, 2);"
            => "b := load[acq](y); store[na](x, 2);", Simple),
        case!("dse-across-rel-write", "Example 3.5",
            "store[na](x, 1); store[rel](y, 3); store[na](x, 2);"
            => "store[rel](y, 3); store[na](x, 2);", AdvancedOnly),
        // -------------------------------- §4: the LICM shape -------------
        case!("licm-shape", "Example 1.3 / §4",
            "while (i < 1) { a := load[na](x); i := i + 1; } return a;"
            => "c := load[na](x); while (i < 1) { a := c; i := i + 1; } return a;",
            Simple),
        // ------------- §2: reorderings of relaxed accesses and na --------
        case!("reorder-na-writes-different-locs", "§2 (na reorderings)",
            "store[na](x, 1); store[na](w, 2);"
            => "store[na](w, 2); store[na](x, 1);", Simple),
        case!("reorder-na-reads", "§2 (na reorderings)",
            "a := load[na](x); b := load[na](w); return a + b;"
            => "b := load[na](w); a := load[na](x); return a + b;", Simple),
        case!("rlx-read-before-na-read", "§2 (rlx/na reorderings)",
            "a := load[rlx](y); b := load[na](x); return a + b;"
            => "b := load[na](x); a := load[rlx](y); return a + b;", Simple),
        case!("na-read-before-rlx-read", "§2 (rlx/na reorderings)",
            "b := load[na](x); a := load[rlx](y); return a + b;"
            => "a := load[rlx](y); b := load[na](x); return a + b;", Simple),
        case!("na-write-past-rlx-write", "§2 (rlx/na reorderings)",
            "store[na](x, 2); store[rlx](y, 1);"
            => "store[rlx](y, 1); store[na](x, 2);", Simple),
        case!("na-write-before-rlx-write", "§2 (rlx/na reorderings)",
            "store[rlx](y, 1); store[na](x, 2);"
            => "store[na](x, 2); store[rlx](y, 1);", AdvancedOnly),
        case!("reorder-rlx-accesses", "§2 (no optimizations on atomics)",
            "a := load[rlx](y); store[rlx](z, 1); return a;"
            => "store[rlx](z, 1); a := load[rlx](y); return a;", Unsound),
        case!("elim-repeated-rlx-read", "§2 (no optimizations on atomics)",
            "a := load[rlx](y); b := load[rlx](y); return a + b;"
            => "a := load[rlx](y); b := a; return a + b;", Unsound),
        // ----------------------- fences (Coq-dev extension) ---------------
        case!("na-write-then-acq-fence", "fences (roach motel, allowed)",
            "store[na](x, 1); fence[acq];"
            => "fence[acq]; store[na](x, 1);", Simple),
        case!("acq-fence-then-na-write", "fences (roach motel, forbidden)",
            "fence[acq]; store[na](x, 1);"
            => "store[na](x, 1); fence[acq];", Unsound),
        case!("rel-fence-then-na-write", "fences (roach motel via §3)",
            "fence[rel]; store[na](x, 1);"
            => "store[na](x, 1); fence[rel];", AdvancedOnly),
        case!("na-write-then-rel-fence", "fences (roach motel, forbidden)",
            "store[na](x, 1); fence[rel];"
            => "fence[rel]; store[na](x, 1);", Unsound),
        // ----------------------- RMWs (Coq-dev extension) -----------------
        case!("slf-across-rlx-rmw", "Example 2.11 with an RMW",
            "store[na](x, 1); r := fadd[rlx](y, 1); b := load[na](x); return b;"
            => "store[na](x, 1); r := fadd[rlx](y, 1); b := 1; return b;", Simple),
        case!("slf-across-acqrel-rmw", "Example 2.11 with an acqrel RMW",
            "store[na](x, 1); r := fadd[acqrel](y, 1); b := load[na](x); return b;"
            => "store[na](x, 1); r := fadd[acqrel](y, 1); b := 1; return b;", Simple),
        // ----------------------- system calls (observable events) ---------
        case!("print-reorder-with-na", "syscalls (observable)",
            "a := load[na](x); print(1); return a;"
            => "print(1); a := load[na](x); return a;", Simple),
        case!("print-reorder-prints", "syscalls (observable order)",
            "print(1); print(2);"
            => "print(2); print(1);", Unsound),
        // Committing a racy print to a concrete value is unsound in
        // general: refinement quantifies over initial states with
        // permission, where the source prints the (defined) memory value.
        case!("print-commit-racy-value", "syscalls (value order)",
            "a := load[na](x); print(a);"
            => "print(7);", Unsound),
        // ------------------- choose/freeze interactions (Remark 3) -------
        case!("choose-reorder-na", "Remark 3 (allowed direction)",
            "c := choose(0, 1); a := load[na](x); return a + c;"
            => "a := load[na](x); c := choose(0, 1); return a + c;", Simple),
        case!("choose-then-rel-write", "App. C (choose across release)",
            "c := choose(0, 1); store[rel](x, 1); return c;"
            => "store[rel](x, 1); c := choose(0, 1); return c;", Unsound),
    ]
}

/// Looks a case up by name.
pub fn find_case(name: &str) -> Option<TransformCase> {
    transform_corpus().into_iter().find(|c| c.name == name)
}
