#![warn(missing_docs)]

//! # seqwm-litmus
//!
//! The litmus corpus of the workspace: every example of *Sequential
//! Reasoning for Optimizing Compilers under Weak Memory Concurrency*
//! (PLDI 2022) as an executable, checkable case, plus classic weak-memory
//! litmus tests and random program generators.
//!
//! * [`transform`] — source/target transformation pairs with expected
//!   refinement verdicts (Examples 1.1–3.5; experiment ids E2/E3).
//! * [`concurrent`] — parallel programs with expected PS^na behavior sets
//!   (SB/MP/LB/CoRR/…, Example 5.1, App. B, App. C; experiment ids
//!   E7/E10).
//! * [`gen`] — seeded random program and context generators (experiment
//!   id E8, the adequacy differential harness).
//! * [`scaling`] — parametric N-thread families (message-passing
//!   chains, store-buffer rings, disjoint NA writers) for the
//!   benchmarking subsystem's worker- and size-scaling measurements.
//!
//! ## Example
//!
//! ```
//! use seqwm_litmus::transform::{find_case, Expectation};
//! use seqwm_seq::refine::RefineConfig;
//!
//! let case = find_case("slf-basic").expect("case exists");
//! assert_eq!(case.expectation, Expectation::Simple);
//! case.check(&RefineConfig::default()).expect("verdict matches the paper");
//! ```

pub mod concurrent;
pub mod gen;
pub mod scaling;
pub mod transform;

pub use concurrent::{concurrent_corpus, find_concurrent, ConcurrentCase};
pub use gen::{random_context, random_program, GenConfig};
pub use scaling::{mp_chain, na_disjoint, sb_ring, ScalingCase};
pub use transform::{find_case, transform_corpus, Expectation, TransformCase};
