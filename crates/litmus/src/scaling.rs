//! Parametric scaling families for benchmarking.
//!
//! Unlike the fixed [`concurrent`](crate::concurrent) corpus, these
//! constructors build *N-thread* instances of classic litmus shapes so
//! the exploration engine's scaling behavior (states vs. `N`, worker
//! speedup, reduction effectiveness) is measurable along a controlled
//! axis:
//!
//! * [`mp_chain`] — message passing relayed along an `N`-thread rel/acq
//!   flag chain; state count grows steeply with `N`.
//! * [`sb_ring`] — `N` store-buffering threads in a ring, each storing
//!   its own relaxed location and loading its neighbor's; the weak
//!   all-zeros outcome stays reachable at every `N`.
//! * [`na_disjoint`] — `N` threads each writing only their own
//!   non-atomic location; the interleaving grid is fully commutative,
//!   so it isolates the engine's NA-write commutation rule. The rule
//!   itself prunes *transitions and re-visits* (`dedup_hits`,
//!   `na_commutes`) rather than distinct states — any state reduction
//!   observed on this family comes from the engine's ample-set
//!   handling of the threads' local steps, which fires too.
//!
//! Cases carry owned strings (names and thread sources are generated
//! from `n`), which is why this is a separate type from
//! [`ConcurrentCase`](crate::concurrent::ConcurrentCase) rather than
//! more entries in the static corpus.

use seqwm_explore::ExploreConfig;
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_promising::canon::explore_engine_canonical;
use seqwm_promising::search::{explore_engine, EngineExploration};
use seqwm_promising::thread::PsConfig;

/// A generated N-thread scaling instance.
#[derive(Clone, Debug)]
pub struct ScalingCase {
    /// Unique name, e.g. `"mp-chain-6"`.
    pub name: String,
    /// The family this instance belongs to (`"mp-chain"`, `"sb-ring"`,
    /// `"na-disjoint"`).
    pub family: &'static str,
    /// The scale parameter: number of threads.
    pub n: usize,
    /// One program source per thread.
    pub threads: Vec<String>,
    /// Run with promises enabled?
    pub promises: bool,
}

impl ScalingCase {
    /// Parses the thread programs.
    ///
    /// # Panics
    ///
    /// Panics on a generator syntax error (a bug in this module).
    pub fn programs(&self) -> Vec<Program> {
        self.threads
            .iter()
            .map(|s| parse_program(s).expect("generated thread parses"))
            .collect()
    }

    /// The exploration configuration this instance requires.
    pub fn config(&self) -> PsConfig {
        let progs = self.programs();
        let refs: Vec<&Program> = progs.iter().collect();
        if self.promises {
            PsConfig::with_promises(&refs)
        } else {
            PsConfig::default()
        }
    }

    /// Explores the instance with explicit engine knobs (workers,
    /// strategy, reduction, budgets).
    pub fn explore(&self, ecfg: &ExploreConfig) -> EngineExploration {
        explore_engine(&self.programs(), &self.config(), ecfg)
    }

    /// Explores the instance through the canonicalizing PS^na adapter
    /// (timestamp-rank state quotient): dedup merges timestamp-renamed
    /// states and the atomic-write commutation rule is in force — the
    /// lever that actually moves the atomic-heavy families (`sb-ring`,
    /// `mp-chain`), which plain [`Self::explore`] cannot reduce beyond
    /// the pure/read rules.
    pub fn explore_canonical(&self, ecfg: &ExploreConfig) -> EngineExploration {
        explore_engine_canonical(&self.programs(), &self.config(), ecfg)
    }
}

fn check_n(family: &str, n: usize) {
    assert!(n >= 2, "{family}: need at least 2 threads, got {n}");
    assert!(n <= 64, "{family}: engine sleep sets cap agents at 64");
}

/// Message passing relayed along an `n`-thread rel/acq flag chain.
///
/// Thread 0 writes the non-atomic data and releases flag 1; thread `i`
/// (for `0 < i < n-1`) acquires flag `i` and conditionally releases
/// flag `i+1`; thread `n-1` acquires the last flag and, if set, reads
/// the data (else returns the sentinel 7). Synchronization is
/// transitive along the chain, so the data read is race-free; the
/// instance generalizes the fixed corpus case `mp-chain-4`.
///
/// # Panics
///
/// Panics unless `2 <= n <= 64`.
pub fn mp_chain(n: usize) -> ScalingCase {
    check_n("mp-chain", n);
    let mut threads = Vec::with_capacity(n);
    threads.push(format!(
        "store[na](mc{n}_d, 1); store[rel](mc{n}_f1, 1); return 0;"
    ));
    for i in 1..n - 1 {
        threads.push(format!(
            "a := load[acq](mc{n}_f{i}); if (a == 1) {{ store[rel](mc{n}_f{next}, 1); }} return a;",
            next = i + 1
        ));
    }
    threads.push(format!(
        "b := load[acq](mc{n}_f{last});
         if (b == 1) {{ c := load[na](mc{n}_d); }} else {{ c := 7; }}
         return c;",
        last = n - 1
    ));
    ScalingCase {
        name: format!("mp-chain-{n}"),
        family: "mp-chain",
        n,
        threads,
        promises: false,
    }
}

/// `n` store-buffering threads in a ring: thread `i` stores its own
/// relaxed location `x_i` and loads its neighbor's `x_{(i+1) mod n}`.
///
/// The weak all-zeros outcome (every load misses every store) stays
/// reachable at every `n` under PS^na, promise-free.
///
/// # Panics
///
/// Panics unless `2 <= n <= 64`.
pub fn sb_ring(n: usize) -> ScalingCase {
    check_n("sb-ring", n);
    let threads = (0..n)
        .map(|i| {
            format!(
                "store[rlx](sr{n}_x{i}, 1); a := load[rlx](sr{n}_x{next}); return a;",
                next = (i + 1) % n
            )
        })
        .collect();
    ScalingCase {
        name: format!("sb-ring-{n}"),
        family: "sb-ring",
        n,
        threads,
        promises: false,
    }
}

/// `n` threads each performing two non-atomic writes to their own
/// private location — a fully commutative interleaving grid.
///
/// No write group is shared-pure (every write changes memory), so
/// cross-thread commutation comes entirely from the NA-write rule;
/// use the `na_commutes` / `dedup_hits` / `transitions` statistics
/// (not `states`) to observe it. The threads' local steps additionally
/// trigger the ample-set reduction, which does prune states.
///
/// # Panics
///
/// Panics unless `2 <= n <= 64`.
pub fn na_disjoint(n: usize) -> ScalingCase {
    check_n("na-disjoint", n);
    let threads = (0..n)
        .map(|i| format!("store[na](nd{n}_l{i}, 1); store[na](nd{n}_l{i}, 2); return 0;"))
        .collect();
    ScalingCase {
        name: format!("na-disjoint-{n}"),
        family: "na-disjoint",
        n,
        threads,
        promises: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::Value;
    use seqwm_promising::machine::PsBehavior;
    use seqwm_promising::search::engine_config;
    use std::collections::BTreeSet;

    fn returns(e: &EngineExploration) -> BTreeSet<Vec<Value>> {
        e.behaviors
            .iter()
            .filter_map(|b| match b {
                PsBehavior::Returns { returns, .. } => Some(returns.clone()),
                PsBehavior::Ub => None,
            })
            .collect()
    }

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn families_parse_at_every_small_n() {
        for n in 2..=5 {
            for case in [mp_chain(n), sb_ring(n), na_disjoint(n)] {
                assert_eq!(case.programs().len(), n, "{}", case.name);
                assert_eq!(case.n, n);
                assert!(case.name.ends_with(&format!("-{n}")));
            }
        }
    }

    #[test]
    fn mp_chain_is_race_free_and_states_grow_with_n() {
        let mut prev_states = 0;
        for n in [2, 3, 4] {
            let case = mp_chain(n);
            let e = case.explore(&engine_config(&case.config()));
            assert!(
                !e.behaviors.contains(&PsBehavior::Ub),
                "{}: race in a rel/acq chain",
                case.name
            );
            // The success path: every relay saw its flag, the reader
            // saw the data.
            let mut ok = vec![0i64];
            ok.extend(std::iter::repeat(1).take(n - 1));
            assert!(returns(&e).contains(&ints(&ok)), "{}", case.name);
            // The reader must never see a set flag but stale data.
            let mut stale = ok.clone();
            *stale.last_mut().unwrap() = 0;
            assert!(!returns(&e).contains(&ints(&stale)), "{}", case.name);
            assert!(
                e.stats.states > prev_states,
                "{}: {} states, expected growth past {}",
                case.name,
                e.stats.states,
                prev_states
            );
            prev_states = e.stats.states;
        }
    }

    #[test]
    fn sb_ring_keeps_the_weak_outcome_at_every_n() {
        for n in [2, 3] {
            let case = sb_ring(n);
            let e = case.explore(&engine_config(&case.config()));
            assert!(returns(&e).contains(&ints(&vec![0; n])), "{}", case.name);
            assert!(returns(&e).contains(&ints(&vec![1; n])), "{}", case.name);
            assert!(!e.behaviors.contains(&PsBehavior::Ub), "{}", case.name);
        }
    }

    #[test]
    fn sb_ring_canonical_reduction_preserves_behaviors_and_fires_atomic_rule() {
        let case = sb_ring(3);
        let base = engine_config(&case.config());
        let full = case.explore(&ExploreConfig {
            reduction: false,
            ..base.clone()
        });
        let reduced = case.explore_canonical(&base);
        assert_eq!(full.behaviors, reduced.behaviors);
        assert!(reduced.stats.atomic_commutes > 0, "atomic rule never fired");
        assert!(reduced.stats.read_commutes > 0, "read rule never fired");
        assert!(
            reduced.stats.transitions < full.stats.transitions,
            "canonical reduced {} vs full {} transitions",
            reduced.stats.transitions,
            full.stats.transitions
        );
    }

    #[test]
    fn mp_chain_canonical_reduction_preserves_behaviors() {
        let case = mp_chain(4);
        let base = engine_config(&case.config());
        let full = case.explore(&ExploreConfig {
            reduction: false,
            ..base.clone()
        });
        let reduced = case.explore_canonical(&base);
        assert_eq!(full.behaviors, reduced.behaviors);
        assert!(
            reduced.stats.transitions < full.stats.transitions,
            "canonical reduced {} vs full {} transitions",
            reduced.stats.transitions,
            full.stats.transitions
        );
    }

    #[test]
    fn na_disjoint_reduction_preserves_behaviors_and_fires_na_rule() {
        let case = na_disjoint(3);
        let base = engine_config(&case.config());
        let full = case.explore(&ExploreConfig {
            reduction: false,
            ..base.clone()
        });
        let reduced = case.explore(&base);
        assert_eq!(full.behaviors, reduced.behaviors);
        assert!(reduced.stats.states <= full.stats.states);
        assert!(reduced.stats.na_commutes > 0, "NA rule never fired");
        assert!(reduced.stats.transitions < full.stats.transitions);
        assert!(reduced.stats.dedup_hits < full.stats.dedup_hits);
    }
}
