//! The concurrent corpus: classic weak-memory litmus tests plus the
//! paper's PS^na-specific scenarios (Example 5.1, App. B, App. C), checked
//! against bounded-exhaustive exploration.

use seqwm_explore::ExploreConfig;
use seqwm_lang::parser::parse_program;
use seqwm_lang::{Program, Value};
use seqwm_promising::machine::PsBehavior;
use seqwm_promising::search::{engine_config, explore_engine, EngineExploration};
use seqwm_promising::thread::PsConfig;

/// A concurrent litmus case.
#[derive(Clone, Debug)]
pub struct ConcurrentCase {
    /// Unique name.
    pub name: &'static str,
    /// The paper artifact (or classic litmus family) reproduced.
    pub paper_ref: &'static str,
    /// One program per thread.
    pub threads: Vec<&'static str>,
    /// Run with promises enabled?
    pub promises: bool,
    /// Allow multi-message non-atomic writes (App. B semantics)?
    pub na_multi_message: bool,
    /// Return-value tuples that must be observable.
    pub returns_present: Vec<Vec<Value>>,
    /// Return-value tuples that must NOT be observable.
    pub returns_absent: Vec<Vec<Value>>,
    /// Whether UB must (Some(true)) or must not (Some(false)) be reachable.
    pub ub: Option<bool>,
    /// `(thread, printed values)` pairs that must be observable.
    pub prints_present: Vec<(usize, Vec<Value>)>,
    /// `(thread, printed values)` pairs that must NOT be observable.
    pub prints_absent: Vec<(usize, Vec<Value>)>,
}

impl ConcurrentCase {
    /// Parses the thread programs.
    ///
    /// # Panics
    ///
    /// Panics on a corpus syntax error.
    pub fn programs(&self) -> Vec<Program> {
        self.threads
            .iter()
            .map(|s| parse_program(s).expect("corpus thread parses"))
            .collect()
    }

    /// The exploration configuration this case requires.
    pub fn config(&self) -> PsConfig {
        let progs = self.programs();
        let refs: Vec<&Program> = progs.iter().collect();
        let mut cfg = if self.promises {
            PsConfig::with_promises(&refs)
        } else {
            PsConfig::default()
        };
        cfg.na_multi_message = self.na_multi_message;
        cfg
    }

    /// Explores the case and checks every expectation.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the first violated expectation.
    pub fn check(&self) -> Result<(), String> {
        self.check_with_engine(&engine_config(&self.config()))
            .map(|_| ())
    }

    /// [`check`](Self::check) with explicit engine knobs (workers,
    /// strategy, reduction, visited mode, budgets); on success returns
    /// the exploration so callers can inspect behaviors and stats.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic naming the first violated expectation.
    pub fn check_with_engine(&self, ecfg: &ExploreConfig) -> Result<EngineExploration, String> {
        let progs = self.programs();
        let cfg = self.config();
        let engine = explore_engine(&progs, &cfg, ecfg);
        let result = engine.to_exploration();
        let returns: Vec<&Vec<Value>> = result
            .behaviors
            .iter()
            .filter_map(|b| match b {
                PsBehavior::Returns { returns, .. } => Some(returns),
                PsBehavior::Ub => None,
            })
            .collect();
        for want in &self.returns_present {
            if !returns.contains(&want) {
                return Err(format!(
                    "{} ({}): expected outcome {want:?} not observed; got {:?}{}",
                    self.name,
                    self.paper_ref,
                    returns,
                    if result.truncated {
                        " (truncated!)"
                    } else {
                        ""
                    },
                ));
            }
        }
        for banned in &self.returns_absent {
            if returns.contains(&banned) {
                return Err(format!(
                    "{} ({}): forbidden outcome {banned:?} observed",
                    self.name, self.paper_ref
                ));
            }
        }
        if let Some(want_ub) = self.ub {
            let has_ub = result.behaviors.contains(&PsBehavior::Ub);
            if has_ub != want_ub {
                return Err(format!(
                    "{} ({}): UB reachable = {has_ub}, expected {want_ub}",
                    self.name, self.paper_ref
                ));
            }
        }
        let printed = |tid: usize, vals: &Vec<Value>| {
            result.behaviors.iter().any(|b| match b {
                PsBehavior::Returns { prints, .. } => prints.get(tid) == Some(vals),
                PsBehavior::Ub => false,
            })
        };
        for (tid, vals) in &self.prints_present {
            if !printed(*tid, vals) {
                return Err(format!(
                    "{} ({}): expected thread {tid} to be able to print {vals:?}",
                    self.name, self.paper_ref
                ));
            }
        }
        for (tid, vals) in &self.prints_absent {
            if printed(*tid, vals) {
                return Err(format!(
                    "{} ({}): thread {tid} must not be able to print {vals:?}",
                    self.name, self.paper_ref
                ));
            }
        }
        Ok(engine)
    }
}

fn ints(vs: &[i64]) -> Vec<Value> {
    vs.iter().map(|&n| Value::Int(n)).collect()
}

/// The full concurrent corpus.
pub fn concurrent_corpus() -> Vec<ConcurrentCase> {
    let base = ConcurrentCase {
        name: "",
        paper_ref: "",
        threads: vec![],
        promises: false,
        na_multi_message: true,
        returns_present: vec![],
        returns_absent: vec![],
        ub: None,
        prints_present: vec![],
        prints_absent: vec![],
    };
    vec![
        ConcurrentCase {
            name: "sb-rlx",
            paper_ref: "classic SB",
            threads: vec![
                "store[rlx](csb_x, 1); a := load[rlx](csb_y); return a;",
                "store[rlx](csb_y, 1); b := load[rlx](csb_x); return b;",
            ],
            returns_present: vec![ints(&[0, 0]), ints(&[1, 1]), ints(&[0, 1]), ints(&[1, 0])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "sb-sc-fence",
            paper_ref: "classic SB + SC fences",
            threads: vec![
                "store[rlx](cfb_x, 1); fence[sc]; a := load[rlx](cfb_y); return a;",
                "store[rlx](cfb_y, 1); fence[sc]; b := load[rlx](cfb_x); return b;",
            ],
            returns_present: vec![ints(&[1, 1])],
            returns_absent: vec![ints(&[0, 0])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "mp-rel-acq",
            paper_ref: "classic MP (race-free na data)",
            threads: vec![
                "store[na](cmp_d, 1); store[rel](cmp_f, 1); return 0;",
                "a := load[acq](cmp_f); if (a == 1) { b := load[na](cmp_d); } else { b := 7; } return b;",
            ],
            returns_present: vec![ints(&[0, 1]), ints(&[0, 7])],
            returns_absent: vec![ints(&[0, 0])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "mp-rlx-flag-racy",
            paper_ref: "MP with rlx flag (write–read race → undef)",
            threads: vec![
                "store[na](cmq_d, 1); store[rlx](cmq_f, 1); return 0;",
                "a := load[rlx](cmq_f); if (a == 1) { b := load[na](cmq_d); } else { b := 7; } return b;",
            ],
            // The racy read may return undef.
            returns_present: vec![vec![Value::Int(0), Value::Undef], ints(&[0, 1])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "lb-rlx-promises",
            paper_ref: "classic LB (needs promises)",
            threads: vec![
                "a := load[rlx](clb_x); store[rlx](clb_y, 1); return a;",
                "b := load[rlx](clb_y); store[rlx](clb_x, 1); return b;",
            ],
            promises: true,
            returns_present: vec![ints(&[1, 1]), ints(&[0, 0])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "lb-data-no-thin-air",
            paper_ref: "LB+data (out-of-thin-air forbidden)",
            threads: vec![
                "a := load[rlx](cta_x); store[rlx](cta_y, a); return a;",
                "b := load[rlx](cta_y); store[rlx](cta_x, b); return b;",
            ],
            promises: true,
            returns_present: vec![ints(&[0, 0])],
            returns_absent: vec![ints(&[1, 1])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "corr-coherence",
            paper_ref: "CoRR coherence",
            threads: vec![
                "store[rlx](cco_x, 1); return 0;",
                "a := load[rlx](cco_x); b := load[rlx](cco_x); if ((a == 1) && (b == 0)) { return 9; } return 0;",
            ],
            returns_absent: vec![ints(&[0, 9])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "2+2w-rlx",
            paper_ref: "2+2W",
            threads: vec![
                "store[rlx](c22_x, 1); store[rlx](c22_y, 2); a := load[rlx](c22_y); return a;",
                "store[rlx](c22_y, 1); store[rlx](c22_x, 2); b := load[rlx](c22_x); return b;",
            ],
            // Each thread reads its own latest-or-later write: 1 or 2.
            returns_present: vec![ints(&[2, 2]), ints(&[2, 1]), ints(&[1, 2])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "ww-race-ub",
            paper_ref: "§5 write–write race → UB",
            threads: vec![
                "store[na](cww_x, 1); return 0;",
                "store[na](cww_x, 2); return 0;",
            ],
            ub: Some(true),
            ..base.clone()
        },
        ConcurrentCase {
            name: "wr-race-undef",
            paper_ref: "§5 write–read race → undef",
            threads: vec![
                "store[na](cwr_x, 1); return 0;",
                "a := load[na](cwr_x); return a;",
            ],
            returns_present: vec![
                vec![Value::Int(0), Value::Undef],
                ints(&[0, 0]),
                ints(&[0, 1]),
            ],
            // A read never invokes UB.
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "example-5-1",
            paper_ref: "Example 5.1 (promise + racy read)",
            threads: vec![
                "a := load[na](c51_x); store[rlx](c51_y, 1); return a;",
                "b := load[rlx](c51_y); if (b == 1) { store[na](c51_x, 1); } return b;",
            ],
            promises: true,
            returns_present: vec![vec![Value::Undef, Value::Int(1)], ints(&[0, 0])],
            ..base.clone()
        },
        ConcurrentCase {
            name: "appendix-b-multi-message",
            paper_ref: "App. B (multi-message na writes)",
            threads: vec![
                "a := load[na](cab_x); store[rlx](cab_y, a); return 0;",
                "b := load[rlx](cab_y);
                 c := freeze(b);
                 if (c == 1) { store[na](cab_x, 1); print(1); } else { store[na](cab_x, 2); }
                 return 0;",
            ],
            promises: true,
            na_multi_message: true,
            // With multi-message na writes, the source can print 1 (so the
            // optimized target of App. B refines it).
            prints_present: vec![(1, ints(&[1]))],
            ..base.clone()
        },
        ConcurrentCase {
            name: "appendix-b-single-message-ablation",
            paper_ref: "App. B (single-message semantics too weak)",
            threads: vec![
                "a := load[na](cas_x); store[rlx](cas_y, a); return 0;",
                "b := load[rlx](cas_y);
                 c := freeze(b);
                 if (c == 1) { store[na](cas_x, 1); print(1); } else { store[na](cas_x, 2); }
                 return 0;",
            ],
            promises: true,
            na_multi_message: false,
            // Under single-message na writes the promise x=2 blocks the
            // then-branch: printing 1 is unreachable.
            prints_absent: vec![(1, ints(&[1]))],
            ..base.clone()
        },
        ConcurrentCase {
            name: "appendix-c-choose-release-source",
            paper_ref: "App. C (source: print 1 unreachable)",
            threads: vec![
                "a := load[rlx](cac_x); store[rlx](cac_y, a); return 0;",
                "b := choose(0, 1);
                 store[rel](cac_x, 0);
                 if (b == 1) {
                     c := load[rlx](cac_y);
                     if (c == 1) { store[rlx](cac_x, 1); print(1); }
                 } else { store[rlx](cac_x, 1); }
                 return 0;",
            ],
            promises: true,
            prints_absent: vec![(1, ints(&[1]))],
            ..base.clone()
        },
        ConcurrentCase {
            name: "mp-fences",
            paper_ref: "MP via rel/acq fences (Coq-dev fence extension)",
            threads: vec![
                "store[na](cfm_d, 1); fence[rel]; store[rlx](cfm_f, 1); return 0;",
                "a := load[rlx](cfm_f);
                 fence[acq];
                 if (a == 1) { b := load[na](cfm_d); } else { b := 7; }
                 return b;",
            ],
            returns_present: vec![ints(&[0, 1]), ints(&[0, 7])],
            returns_absent: vec![ints(&[0, 0])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "trylock-cas-mutex",
            paper_ref: "lock via acquire RMW (§2 footnote 5)",
            threads: vec![
                "l := cas[acq](clk_m, 0, 1);
                 if (l == 0) {
                     c := load[na](clk_c);
                     store[na](clk_c, c + 1);
                     store[rel](clk_m, 0);
                 }
                 return l;",
                "l := cas[acq](clk_m, 0, 1);
                 if (l == 0) {
                     c := load[na](clk_c);
                     store[na](clk_c, c + 1);
                     store[rel](clk_m, 0);
                 }
                 return l;",
            ],
            // Both may take the lock (sequentially), or one may fail its
            // try-lock; the critical sections never race.
            returns_present: vec![ints(&[0, 0]), ints(&[0, 1]), ints(&[1, 0])],
            returns_absent: vec![ints(&[1, 1])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "fadd-counter",
            paper_ref: "atomic counter (RMW atomicity)",
            threads: vec![
                "a := fadd[acqrel](cctr, 1); return a;",
                "b := fadd[acqrel](cctr, 1); return b;",
            ],
            // The two increments read distinct values: 0 and 1 in some order.
            returns_present: vec![ints(&[0, 1]), ints(&[1, 0])],
            returns_absent: vec![ints(&[0, 0]), ints(&[1, 1])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "mp-chain-4",
            paper_ref: "4-thread MP chain + independent worker",
            threads: vec![
                "store[na](c4_d, 1); store[rel](c4_f1, 1); return 0;",
                "a := load[acq](c4_f1); if (a == 1) { store[rel](c4_f2, 1); } return a;",
                "b := load[acq](c4_f2);
                 if (b == 1) { c := load[na](c4_d); } else { c := 7; }
                 return c;",
                "t := 1; t := t + 1; return t;",
            ],
            // Synchronization is transitive along the rel/acq chain: once
            // the second flag is seen, the data write is visible and
            // race-free. Thread 3 is pure local computation — fodder for
            // the engine's ample-set reduction.
            returns_present: vec![ints(&[0, 1, 1, 2]), ints(&[0, 0, 7, 2]), ints(&[0, 1, 7, 2])],
            returns_absent: vec![ints(&[0, 1, 0, 2])],
            ub: Some(false),
            ..base.clone()
        },
        ConcurrentCase {
            name: "appendix-c-choose-release-target",
            paper_ref: "App. C (target: print 1 reachable)",
            threads: vec![
                "a := load[rlx](cat_x); store[rlx](cat_y, a); return 0;",
                "store[rel](cat_x, 0);
                 b := choose(0, 1);
                 if (b == 1) {
                     c := load[rlx](cat_y);
                     if (c == 1) { store[rlx](cat_x, 1); print(1); }
                 } else { store[rlx](cat_x, 1); }
                 return 0;",
            ],
            promises: true,
            prints_present: vec![(1, ints(&[1]))],
            ..base.clone()
        },
    ]
}

/// Looks a case up by name.
pub fn find_concurrent(name: &str) -> Option<ConcurrentCase> {
    concurrent_corpus().into_iter().find(|c| c.name == name)
}
