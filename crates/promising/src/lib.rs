#![warn(missing_docs)]

//! # seqwm-promising
//!
//! **PS^na** — the Promising Semantics 2.1 extended with non-atomic
//! accesses (§5 of *Sequential Reasoning for Optimizing Compilers under
//! Weak Memory Concurrency*, PLDI 2022) — as an executable, bounded-
//! exhaustively explorable machine, plus two baseline machines.
//!
//! * [`time`] — dense rational timestamps.
//! * [`view`] — thread/message views with `⊥`.
//! * [`memory`] — interval-shaped messages (adjacency = RMW atomicity),
//!   valueless `NAMsg` race markers, promise sets, the `lower` rule.
//! * [`thread`] — the thread-configuration steps of Fig. 5 (reads, writes,
//!   racy accesses returning `undef` / invoking UB, promises,
//!   certification, RMWs, fences) with configurable bounds.
//! * [`machine`] — machine states, behaviors (Def. 5.2), behavioral
//!   refinement (Def. 5.3), and exploration.
//! * [`search`] — the PS^na adapter for the `seqwm-explore` engine
//!   (parallel workers, interleaving reduction, fingerprint dedup,
//!   structured stats); [`machine::explore`] is a thin wrapper over it.
//! * [`canon`] — the timestamp-rank state quotient ([`CanonState`])
//!   and the canonical adapter that licenses atomic-write commutation.
//! * [`sc`] — a sequentially consistent interleaving baseline.
//! * [`drf`] — data-race-freedom reports and model comparisons.
//! * [`strengthen`] — the §5 access-mode strengthening soundness claim.
//!
//! ## Fidelity notes (see DESIGN.md for the full list)
//!
//! * Thread views are the full three-component (`cur`/`acq`/`rel`) PS2.1
//!   state ([`tview`]); the paper's Fig. 5 single view is its `cur`
//!   component (the two coincide in the fence-free fragment). SC fences
//!   use a global SC view, as in PS2's full model.
//! * Certification runs in the current memory (PS1-style) rather than
//!   PS2's capped memory; for the litmus corpus the two coincide.
//! * Promise synthesis is bounded (values, slots, budget) — exploration is
//!   an *under*-approximation of PS^na, exact on the corpus used here.
//!
//! ## Example
//!
//! ```
//! use seqwm_lang::parser::parse_program;
//! use seqwm_promising::{explore, PsConfig};
//!
//! let t1 = parse_program("store[rlx](x, 1); a := load[rlx](y); return a;")?;
//! let t2 = parse_program("store[rlx](y, 1); b := load[rlx](x); return b;")?;
//! let result = explore(&[t1, t2], &PsConfig::default());
//! // Store buffering: the weak outcome (0, 0) is observable.
//! assert!(result.behaviors.iter().any(|b| b.to_string() == "(0 ∥ 0)"));
//! # Ok::<(), seqwm_lang::parser::ParseError>(())
//! ```

pub mod canon;
pub mod drf;
pub mod machine;
pub mod memory;
pub mod sc;
pub mod search;
pub mod strengthen;
pub mod thread;
pub mod time;
pub mod tview;
pub mod view;

pub use canon::{
    explore_engine_canonical, try_explore_engine_canonical, CanonPsSystem, CanonState,
};
pub use drf::{
    drf_check, drf_check_with, race_report, DrfBudget, DrfEquality, DrfReport, RaceReport,
    RaceVerdict,
};
pub use machine::{
    explore, explore_legacy, ps_behaviors_refine, Exploration, MachineState, PsBehavior,
};
pub use memory::{Message, MsgKey, PromiseSet, PsMemory, Slot};
pub use sc::{explore_sc, explore_sc_engine, ScConfig, ScExploration, ScState, ScSystem};
pub use search::{engine_config, explore_engine, EngineExploration, PsSystem};
pub use strengthen::{strengthen_na, strengthening_sound};
pub use thread::{certify, thread_steps, PsConfig, StepKind, ThreadState, ThreadStep};
pub use time::Timestamp;
pub use tview::TView;
pub use view::View;
