//! Canonicalizing state quotient for PS^na exploration.
//!
//! PS^na timestamps are dense rationals chosen afresh by every write,
//! so two executions that differ only in the *order* of writes to
//! distinct locations reach machine states that are observably
//! identical but compare unequal: the interval endpoints (and the
//! views built from them) carry different rational values. The
//! memory-module invariant is that **only the order and adjacency of
//! timestamps is observable** — readability is a comparison against a
//! view, and RMW atomicity is interval adjacency — never the rational
//! values themselves.
//!
//! [`CanonState`] quotients a [`MachineState`] by that invariant: per
//! location, every timestamp occurring anywhere in the state (message
//! endpoints, message views, thread views, promise keys, the SC view)
//! is replaced by its *rank* in the sorted set of that location's
//! timestamps. Ranking preserves order and adjacency — two endpoints
//! coincide iff their ranks do — so canonically-equal states are
//! bisimilar: they enable the same steps, and corresponding steps
//! lead to canonically-equal states again.
//!
//! Two consequences the engine exploits:
//!
//! * **Dedup**: executions reaching order-equivalent states merge to
//!   one visited entry, which alone shrinks atomic-heavy state spaces
//!   (`sb-ring-N`, `mp-chain-N`) that raw state equality cannot.
//! * **Atomic-write commutation**: the [`AgentGroup::atomic_write`]
//!   independence claim requires exactly this quotient to hold of the
//!   system's state equality, so [`CanonPsSystem`] is the adapter
//!   that may (and does) claim it — see
//!   [`PsSystem::groups_with_claims`](crate::search::PsSystem).
//!
//! Equality and hashing go through a 128-bit fingerprint of the
//! canonical form rather than a structural canonical clone: the
//! engine's default visited mode folds states to 64-bit fingerprints
//! anyway, so a 128-bit canonical fingerprint adds no collision risk
//! the pipeline has not already accepted.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use seqwm_explore::{
    AgentGroup, ExploreConfig, ExploreError, Target, Transition, TransitionSystem,
};
use seqwm_lang::{Loc, Program};

use crate::machine::{MachineState, PsBehavior};
use crate::search::{EngineExploration, PsSystem};
use crate::thread::PsConfig;
use crate::time::Timestamp;
use crate::view::View;

/// Per-location sorted timestamp sets collected from a whole state.
type TimeSets = BTreeMap<Loc, BTreeSet<Timestamp>>;

/// Per-location rank of each timestamp (its index in sorted order).
type Ranks = BTreeMap<Loc, BTreeMap<Timestamp, u64>>;

fn collect_view(times: &mut TimeSets, v: &View) {
    if let View::Map(m) = v {
        for (&l, &t) in m {
            times.entry(l).or_default().insert(t);
        }
    }
}

/// Collects every timestamp the state mentions, per location. Message
/// views and thread views may mention *any* location, so the scan is
/// global, not per-timeline.
fn collect_times(st: &MachineState) -> TimeSets {
    let mut times = TimeSets::new();
    for loc in st.mem.locs() {
        let set = times.entry(loc).or_default();
        // Zero is always rankable even if no explicit occurrence
        // remains (views normalize zero entries away).
        set.insert(Timestamp::ZERO);
        for msg in st.mem.messages(loc) {
            set.insert(msg.from);
            set.insert(msg.to);
        }
    }
    for loc in st.mem.locs() {
        for msg in st.mem.messages(loc) {
            collect_view(&mut times, &msg.view);
        }
    }
    collect_view(&mut times, &st.sc_view);
    for t in &st.threads {
        collect_view(&mut times, &t.view.cur);
        collect_view(&mut times, &t.view.acq);
        for (_, v) in t.view.rel_entries() {
            collect_view(&mut times, v);
        }
        for &(l, ts) in t.promises.iter() {
            times.entry(l).or_default().insert(ts);
        }
    }
    times
}

fn rank_of(ranks: &Ranks, l: Loc, t: Timestamp) -> u64 {
    ranks
        .get(&l)
        .and_then(|m| m.get(&t).copied())
        // Unreachable by construction (collect_times is exhaustive);
        // a distinct sentinel keeps a miss conservative: it can only
        // split states apart, never merge them.
        .unwrap_or(u64::MAX)
}

/// Feeds a view into the token stream: a Bottom/Map tag, then each
/// entry as (location fingerprint, rank). `View::Bottom` is kept
/// distinct from explicit zero maps — finer than strictly necessary,
/// and therefore safe.
fn push_view(out: &mut Vec<u64>, ranks: &Ranks, v: &View) {
    match v {
        View::Bottom => out.push(0),
        View::Map(m) => {
            out.push(1);
            out.push(m.len() as u64);
            for (&l, &t) in m {
                out.push(seqwm_explore::fp64(&l));
                out.push(rank_of(ranks, l, t));
            }
        }
    }
}

/// The canonical fingerprint: a deterministic token stream over the
/// rank-quotiented state, folded to 128 bits.
fn canon_fp(st: &MachineState) -> u128 {
    let times = collect_times(st);
    let mut ranks = Ranks::new();
    for (l, set) in &times {
        let m = set
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect::<BTreeMap<_, _>>();
        ranks.insert(*l, m);
    }

    let mut out: Vec<u64> = Vec::with_capacity(64);
    out.push(st.threads.len() as u64);
    for t in &st.threads {
        // Program state, prints, and promise budget have no timestamp
        // content; fold them through the ordinary hash.
        out.push(seqwm_explore::fp64(&t.prog));
        out.push(seqwm_explore::fp64(&t.prints));
        out.push(t.promises_made as u64);
        push_view(&mut out, &ranks, &t.view.cur);
        push_view(&mut out, &ranks, &t.view.acq);
        let rel: Vec<_> = t.view.rel_entries().collect();
        out.push(rel.len() as u64);
        for (l, v) in rel {
            out.push(seqwm_explore::fp64(l));
            push_view(&mut out, &ranks, v);
        }
        let mut n_promises = 0u64;
        let at = out.len();
        out.push(0);
        for &(l, ts) in t.promises.iter() {
            out.push(seqwm_explore::fp64(&l));
            out.push(rank_of(&ranks, l, ts));
            n_promises += 1;
        }
        out[at] = n_promises;
    }
    for loc in st.mem.locs() {
        let msgs = st.mem.messages(loc);
        out.push(seqwm_explore::fp64(&loc));
        out.push(msgs.len() as u64);
        for msg in msgs {
            out.push(rank_of(&ranks, loc, msg.from));
            out.push(rank_of(&ranks, loc, msg.to));
            out.push(seqwm_explore::fp64(&msg.payload));
            push_view(&mut out, &ranks, &msg.view);
        }
    }
    push_view(&mut out, &ranks, &st.sc_view);
    seqwm_explore::fp128(&out)
}

/// A machine state compared and hashed up to timestamp renaming.
///
/// Successor computation and terminal behavior go through the wrapped
/// raw state; only `Eq`/`Hash` see the canonical fingerprint.
#[derive(Clone, Debug)]
pub struct CanonState {
    /// The underlying raw machine state.
    pub inner: MachineState,
    fp: u128,
}

impl CanonState {
    /// Wraps a raw state, computing its canonical fingerprint once.
    pub fn new(inner: MachineState) -> Self {
        let fp = canon_fp(&inner);
        CanonState { inner, fp }
    }

    /// The canonical fingerprint (stable under timestamp renaming of
    /// the wrapped state).
    pub fn canon_fp(&self) -> u128 {
        self.fp
    }
}

impl PartialEq for CanonState {
    fn eq(&self, other: &Self) -> bool {
        self.fp == other.fp
    }
}

impl Eq for CanonState {}

impl Hash for CanonState {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.fp.hash(state);
    }
}

/// The PS^na machine explored up to the canonical quotient: same step
/// enumeration and reduction flags as [`PsSystem`], plus the
/// [`AgentGroup::atomic_write`] claim the quotient licenses.
pub struct CanonPsSystem<'a> {
    inner: PsSystem<'a>,
}

impl<'a> CanonPsSystem<'a> {
    /// Wraps a parallel composition of programs under a PS^na config.
    pub fn new(progs: &'a [Program], cfg: &'a PsConfig) -> Self {
        CanonPsSystem {
            inner: PsSystem::new(progs, cfg),
        }
    }
}

impl TransitionSystem for CanonPsSystem<'_> {
    type State = CanonState;
    type Behavior = PsBehavior;

    fn initial_state(&self) -> CanonState {
        CanonState::new(MachineState::new(self.inner.progs()))
    }

    fn agent_groups(&self, st: &CanonState) -> Vec<AgentGroup<CanonState, PsBehavior>> {
        self.inner
            .groups_with_claims(&st.inner)
            .into_iter()
            .map(|g| AgentGroup {
                agent: g.agent,
                transitions: g
                    .transitions
                    .into_iter()
                    .map(|tr| Transition {
                        target: match tr.target {
                            Target::State(s) => Target::State(CanonState::new(s)),
                            Target::Behavior(b) => Target::Behavior(b),
                            Target::Pruned => Target::Pruned,
                        },
                        tags: tr.tags,
                    })
                    .collect(),
                shared_pure: g.shared_pure,
                local: g.local,
                na_write: g.na_write,
                shared_read: g.shared_read,
                atomic_write: g.atomic_write,
            })
            .collect()
    }

    fn terminal_behavior(&self, st: &CanonState) -> Option<PsBehavior> {
        st.inner.terminal_behavior()
    }
}

/// [`crate::search::explore_engine`] over the canonical quotient:
/// dedup merges timestamp-renamed states, and the atomic-write
/// commutation rule is in force.
pub fn explore_engine_canonical(
    progs: &[Program],
    cfg: &PsConfig,
    ecfg: &ExploreConfig,
) -> EngineExploration {
    let sys = CanonPsSystem::new(progs, cfg);
    let r = seqwm_explore::explore(&sys, ecfg);
    EngineExploration {
        behaviors: r.behaviors,
        stats: r.stats,
    }
}

/// Fallible variant of [`explore_engine_canonical`] (mirrors
/// [`crate::search::try_explore_engine`]).
pub fn try_explore_engine_canonical(
    progs: &[Program],
    cfg: &PsConfig,
    ecfg: &ExploreConfig,
) -> Result<EngineExploration, ExploreError> {
    let sys = CanonPsSystem::new(progs, cfg);
    let r = seqwm_explore::try_explore(&sys, ecfg)?;
    Ok(EngineExploration {
        behaviors: r.behaviors,
        stats: r.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{engine_config, explore_engine};
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    #[test]
    fn canonical_agrees_with_raw_on_message_passing() {
        let ps = progs(&[
            "store[na](cmp_d, 1); store[rel](cmp_f, 1); return 0;",
            "a := load[acq](cmp_f); if (a == 1) { b := load[na](cmp_d); } else { b := 7; } return b;",
        ]);
        let cfg = PsConfig::default();
        let legacy = crate::machine::explore_legacy(&ps, &cfg);
        for reduction in [false, true] {
            let e = explore_engine_canonical(
                &ps,
                &cfg,
                &ExploreConfig {
                    reduction,
                    ..engine_config(&cfg)
                },
            );
            assert_eq!(e.behaviors, legacy.behaviors, "reduction={reduction}");
        }
    }

    #[test]
    fn atomic_rule_fires_and_preserves_behaviors_on_store_buffering() {
        // Two relaxed writers + cross reads (SB): atomic-heavy, no NA
        // locations, so reduction beyond pure/pure must come from the
        // atomic-write and read rules.
        let ps = progs(&[
            "store[rlx](csb_x, 1); a := load[rlx](csb_y); return a;",
            "store[rlx](csb_y, 1); b := load[rlx](csb_x); return b;",
        ]);
        let cfg = PsConfig::default();
        let raw_full = explore_engine(
            &ps,
            &cfg,
            &ExploreConfig {
                reduction: false,
                ..engine_config(&cfg)
            },
        );
        let canon = explore_engine_canonical(&ps, &cfg, &engine_config(&cfg));
        assert_eq!(canon.behaviors, raw_full.behaviors);
        assert!(canon.stats.atomic_commutes > 0, "atomic rule never fired");
        assert!(
            canon.stats.transitions < raw_full.stats.transitions,
            "canon {} vs raw full {} transitions",
            canon.stats.transitions,
            raw_full.stats.transitions
        );
    }

    #[test]
    fn canonical_dedup_merges_timestamp_renamings() {
        // Even with reduction off, the canonical quotient alone must
        // not explore more states than the raw engine.
        let ps = progs(&[
            "store[rlx](cdm_x, 1); return 0;",
            "store[rlx](cdm_y, 1); return 0;",
        ]);
        let cfg = PsConfig::default();
        let off = ExploreConfig {
            reduction: false,
            ..engine_config(&cfg)
        };
        let raw = explore_engine(&ps, &cfg, &off);
        let canon = explore_engine_canonical(&ps, &cfg, &off);
        assert_eq!(canon.behaviors, raw.behaviors);
        assert!(
            canon.stats.states <= raw.stats.states,
            "canon {} vs raw {} states",
            canon.stats.states,
            raw.stats.states
        );
    }

    #[test]
    fn canonical_fingerprint_is_stable_under_step_reordering() {
        // Execute two independent distinct-location atomic writes in
        // both orders by hand and check the canonical fingerprints of
        // the reachable frontier sets coincide.
        let ps = progs(&[
            "store[rlx](cfs_x, 1); return 0;",
            "store[rlx](cfs_y, 1); return 0;",
        ]);
        let cfg = PsConfig::default();
        let sys = CanonPsSystem::new(&ps, &cfg);
        let init = sys.initial_state();
        let after = |st: &CanonState, agent: usize| -> Vec<CanonState> {
            sys.agent_groups(st)
                .into_iter()
                .filter(|g| g.agent == agent)
                .flat_map(|g| g.transitions)
                .filter_map(|t| match t.target {
                    Target::State(s) => Some(s),
                    _ => None,
                })
                .collect()
        };
        let mut via01: Vec<u128> = after(&init, 0)
            .iter()
            .flat_map(|s| after(s, 1))
            .map(|s| s.canon_fp())
            .collect();
        let mut via10: Vec<u128> = after(&init, 1)
            .iter()
            .flat_map(|s| after(s, 0))
            .map(|s| s.canon_fp())
            .collect();
        via01.sort_unstable();
        via01.dedup();
        via10.sort_unstable();
        via10.dedup();
        assert!(!via01.is_empty());
        assert_eq!(via01, via10, "reordered executions must merge");
    }
}
