//! PS^na adapter for the `seqwm-explore` engine.
//!
//! [`PsSystem`] presents the PS^na machine as a
//! [`TransitionSystem`]: one agent group per thread, with the same
//! step enumeration, certification filter and UB emission rules as the
//! seed explorer ([`crate::machine::explore_legacy`]) — the
//! differential test `tests/explore_differential.rs` holds the two to
//! byte-identical behavior sets over the whole litmus corpus.
//!
//! Reduction flags:
//!
//! * a thread group is `shared_pure` iff none of its steps changes the
//!   memory or the global SC view (reads, fulfill-free silent/choice
//!   steps, syscalls, failures). Pure groups of different threads
//!   commute, which licenses sleep-set skipping.
//! * a thread group is `local` iff its program step is a silent
//!   computation, a choice, or a syscall, the thread has no
//!   outstanding promises, and every enumerated step is an ordinary
//!   state step with unchanged shared state. Such a step neither reads
//!   nor writes memory, so it is independent of *every* other thread's
//!   steps and may be explored as a singleton ample set. (A pure
//!   *read* does not qualify: another thread's write enables new read
//!   values.)

use std::collections::BTreeSet;

use seqwm_explore::{
    AgentGroup, ExploreConfig, ExploreError, ExploreStats, StepTags, Target, Transition,
    TransitionSystem,
};
use seqwm_lang::{Program, Step, WriteMode};

use crate::machine::{Exploration, MachineState, PsBehavior};
use crate::thread::{certify, thread_steps, PsConfig, StepKind};

/// The PS^na machine as an engine-explorable transition system.
pub struct PsSystem<'a> {
    progs: &'a [Program],
    cfg: &'a PsConfig,
}

impl<'a> PsSystem<'a> {
    /// Wraps a parallel composition of programs under a PS^na config.
    pub fn new(progs: &'a [Program], cfg: &'a PsConfig) -> Self {
        PsSystem { progs, cfg }
    }

    /// The wrapped programs.
    pub(crate) fn progs(&self) -> &'a [Program] {
        self.progs
    }

    /// The per-thread agent groups at `st`, with every independence
    /// claim computed — including [`AgentGroup::atomic_write`], which
    /// is only *sound* under a state equality invariant to timestamp
    /// renaming. [`PsSystem`] itself compares raw `MachineState`s
    /// (timestamp values and all), so its `TransitionSystem` impl
    /// strips the atomic claim; the canonicalizing adapter
    /// ([`crate::canon::CanonPsSystem`]) keeps it.
    pub(crate) fn groups_with_claims(
        &self,
        st: &MachineState,
    ) -> Vec<AgentGroup<MachineState, PsBehavior>> {
        let mut out = Vec::with_capacity(st.threads.len());
        for (tid, t) in st.threads.iter().enumerate() {
            let steps = thread_steps(t, &st.mem, &st.sc_view, self.cfg);
            if steps.is_empty() {
                continue;
            }
            let mut transitions = Vec::with_capacity(steps.len());
            let mut shared_pure = true;
            let mut all_plain = true;
            let mut sc_unchanged = true;
            for step in steps {
                let tags = StepTags {
                    racy: matches!(step.kind, StepKind::RacyRead(_) | StepKind::RacyWrite(_)),
                    promise: step.kind == StepKind::Promise,
                };
                // machine: failure and racy-write abort the machine with ⊥
                // and are never certified.
                if matches!(step.kind, StepKind::Failure | StepKind::RacyWrite(_)) {
                    all_plain = false;
                    transitions.push(Transition {
                        target: Target::Behavior(PsBehavior::Ub),
                        tags,
                    });
                    continue;
                }
                if step.kind != StepKind::Normal {
                    all_plain = false;
                }
                sc_unchanged &= step.sc_view == st.sc_view;
                shared_pure &= step.memory == st.mem && step.sc_view == st.sc_view;
                // machine: normal requires certification of the acting
                // thread (trivial when it has no promises).
                if !step.thread.promises.is_empty()
                    && !certify(&step.thread, &step.memory, &step.sc_view, self.cfg)
                {
                    transitions.push(Transition {
                        target: Target::Pruned,
                        tags,
                    });
                    continue;
                }
                let mut next = st.clone();
                next.threads[tid] = step.thread;
                next.mem = step.memory;
                next.sc_view = step.sc_view;
                transitions.push(Transition {
                    target: Target::State(next),
                    tags,
                });
            }
            let local = shared_pure
                && all_plain
                && t.promises.is_empty()
                && matches!(
                    t.prog.step(),
                    Step::Silent(_) | Step::Choose(_) | Step::Syscall { .. }
                );
            // Non-atomic-write commutation: a promise-free thread at an
            // NA write whose enumerated steps are all ordinary state
            // steps (no racy-write UB, no promise steps) with the
            // global SC view unchanged only appends to its own
            // location's timeline and advances its own view of that
            // location — so two such groups at distinct locations
            // commute (see `AgentGroup::na_write`).
            let na_write = match t.prog.step() {
                Step::Write {
                    loc,
                    mode: WriteMode::Na,
                    ..
                } if all_plain && sc_unchanged && t.promises.is_empty() => {
                    Some(seqwm_explore::fp64(&loc))
                }
                _ => None,
            };
            // Read commutation: a promise-free thread at a read whose
            // enumerated steps are all ordinary shared-pure state steps
            // only advances its own view; the set of readable messages
            // at `loc` and the read's effect on the reader are both
            // untouched by any step that does not write `loc`, so the
            // group commutes with other reads and with writes to
            // distinct locations (see `AgentGroup::shared_read`).
            let shared_read = match t.prog.step() {
                Step::Read { loc, .. } if shared_pure && all_plain && t.promises.is_empty() => {
                    Some(seqwm_explore::fp64(&loc))
                }
                _ => None,
            };
            // Atomic-write commutation: same shape as the NA rule, for
            // rlx/rel writes. The two execution orders of a
            // distinct-location pair reach states that differ only in
            // which dense timestamps (and joined views) each write
            // picked — equal under the canonical quotient, not under
            // raw state equality, hence the claim-stripping note on
            // [`Self::groups_with_claims`].
            let atomic_write = match t.prog.step() {
                Step::Write { loc, mode, .. }
                    if mode != WriteMode::Na
                        && all_plain
                        && sc_unchanged
                        && t.promises.is_empty() =>
                {
                    Some(seqwm_explore::fp64(&loc))
                }
                _ => None,
            };
            out.push(AgentGroup {
                agent: tid,
                transitions,
                shared_pure,
                local,
                na_write,
                shared_read,
                atomic_write,
            });
        }
        out
    }
}

impl TransitionSystem for PsSystem<'_> {
    type State = MachineState;
    type Behavior = PsBehavior;

    fn initial_state(&self) -> MachineState {
        MachineState::new(self.progs)
    }

    fn agent_groups(&self, st: &MachineState) -> Vec<AgentGroup<MachineState, PsBehavior>> {
        let mut out = self.groups_with_claims(st);
        for g in &mut out {
            // Raw `MachineState` equality distinguishes the timestamp
            // choices of reordered atomic writes, so the atomic-write
            // rule would drop re-visits that are NOT re-visits under
            // this state space; only the canonical adapter may claim it.
            g.atomic_write = None;
        }
        out
    }

    fn terminal_behavior(&self, st: &MachineState) -> Option<PsBehavior> {
        st.terminal_behavior()
    }
}

/// An engine exploration of a PS^na machine: behavior set + engine
/// statistics.
#[derive(Clone, Debug)]
pub struct EngineExploration {
    /// The set of observable behaviors found.
    pub behaviors: BTreeSet<PsBehavior>,
    /// Engine statistics (states, dedup, reduction, workers, time).
    pub stats: ExploreStats,
}

impl EngineExploration {
    /// Projects onto the legacy [`Exploration`] shape.
    pub fn to_exploration(&self) -> Exploration {
        Exploration {
            behaviors: self.behaviors.clone(),
            states: self.stats.states,
            truncated: self.stats.truncated,
            racy: self.stats.racy_steps > 0,
            promise_steps: self.stats.promise_steps,
        }
    }
}

/// The engine configuration matching a [`PsConfig`]'s bounds:
/// sequential, reduced, fingerprint-deduplicated.
pub fn engine_config(cfg: &PsConfig) -> ExploreConfig {
    ExploreConfig {
        max_states: cfg.max_states,
        max_depth: cfg.max_machine_steps,
        ..ExploreConfig::default()
    }
}

/// Explores `progs` under `cfg` with the engine, with full control of
/// engine knobs (workers, strategy, reduction, visited mode, budgets).
pub fn explore_engine(
    progs: &[Program],
    cfg: &PsConfig,
    ecfg: &ExploreConfig,
) -> EngineExploration {
    let sys = PsSystem::new(progs, cfg);
    let r = seqwm_explore::explore(&sys, ecfg);
    EngineExploration {
        behaviors: r.behaviors,
        stats: r.stats,
    }
}

/// Fallible variant of [`explore_engine`]: rejects misconfigurations
/// (a checkpoint/resume request under a non-frontier strategy, an
/// empty checkpoint path) with a structured [`ExploreError`] instead
/// of silently degrading. Use this from CLI paths where the user
/// asked for durability explicitly and deserves a diagnostic.
pub fn try_explore_engine(
    progs: &[Program],
    cfg: &PsConfig,
    ecfg: &ExploreConfig,
) -> Result<EngineExploration, ExploreError> {
    let sys = PsSystem::new(progs, cfg);
    let r = seqwm_explore::try_explore(&sys, ecfg)?;
    Ok(EngineExploration {
        behaviors: r.behaviors,
        stats: r.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    #[test]
    fn engine_matches_legacy_on_message_passing() {
        let ps = progs(&[
            "store[na](smp_d, 1); store[rel](smp_f, 1); return 0;",
            "a := load[acq](smp_f); if (a == 1) { b := load[na](smp_d); } else { b := 7; } return b;",
        ]);
        let cfg = PsConfig::default();
        let legacy = crate::machine::explore_legacy(&ps, &cfg);
        for workers in [1, 2] {
            for reduction in [false, true] {
                let e = explore_engine(
                    &ps,
                    &cfg,
                    &ExploreConfig {
                        workers,
                        reduction,
                        ..engine_config(&cfg)
                    },
                );
                assert_eq!(
                    e.behaviors, legacy.behaviors,
                    "workers={workers} reduction={reduction}"
                );
                assert_eq!(e.stats.racy_steps > 0, legacy.racy);
            }
        }
    }

    #[test]
    fn reduction_explores_fewer_states() {
        // Four independent threads: the interleaving product collapses.
        let ps = progs(&[
            "a := 1; a := a + 1; return a;",
            "b := 2; b := b + 1; return b;",
            "c := 3; c := c + 1; return c;",
            "d := 4; d := d + 1; return d;",
        ]);
        let cfg = PsConfig::default();
        let full = explore_engine(
            &ps,
            &cfg,
            &ExploreConfig {
                reduction: false,
                ..engine_config(&cfg)
            },
        );
        let reduced = explore_engine(&ps, &cfg, &engine_config(&cfg));
        assert_eq!(full.behaviors, reduced.behaviors);
        assert!(
            reduced.stats.states * 2 < full.stats.states,
            "reduced {} vs full {}",
            reduced.stats.states,
            full.stats.states
        );
    }

    #[test]
    fn na_write_commutation_fires_on_disjoint_na_writers() {
        // Three promise-free threads writing distinct non-atomic
        // locations: no group is shared-pure (memory changes), so all
        // reduction must come from the NA-write rule.
        let ps = progs(&[
            "store[na](snw_a, 1); store[na](snw_a, 2); return 0;",
            "store[na](snw_b, 1); store[na](snw_b, 2); return 0;",
            "store[na](snw_c, 1); store[na](snw_c, 2); return 0;",
        ]);
        let cfg = PsConfig::default();
        let legacy = crate::machine::explore_legacy(&ps, &cfg);
        let full = explore_engine(
            &ps,
            &cfg,
            &ExploreConfig {
                reduction: false,
                ..engine_config(&cfg)
            },
        );
        let reduced = explore_engine(&ps, &cfg, &engine_config(&cfg));
        assert_eq!(full.behaviors, legacy.behaviors);
        assert_eq!(full.behaviors, reduced.behaviors);
        assert!(reduced.stats.na_commutes > 0, "NA rule never fired");
        assert!(
            reduced.stats.transitions < full.stats.transitions,
            "reduced {} vs full {} transitions",
            reduced.stats.transitions,
            full.stats.transitions
        );
        assert!(reduced.stats.dedup_hits < full.stats.dedup_hits);
    }

    #[test]
    fn engine_certification_filter_prunes() {
        // LB with promises: certification runs and some promise steps
        // are filtered, matching the legacy explorer's behavior set.
        let ps = progs(&[
            "a := load[rlx](slb_x); store[rlx](slb_y, 1); return a;",
            "b := load[rlx](slb_y); store[rlx](slb_x, 1); return b;",
        ]);
        let cfg = PsConfig::with_promises(&[&ps[0], &ps[1]]);
        let legacy = crate::machine::explore_legacy(&ps, &cfg);
        let e = explore_engine(&ps, &cfg, &engine_config(&cfg));
        assert_eq!(e.behaviors, legacy.behaviors);
        assert!(e.stats.promise_steps > 0, "promise steps observed");
    }
}
