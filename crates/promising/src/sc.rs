//! A sequentially consistent (SC) baseline machine.
//!
//! SC is the strongest model the paper's DRF guarantees relate to:
//! race-free programs behave the same under PS^na and under an
//! interleaving semantics with a single flat memory. This module provides
//! that interleaving semantics (reusing the [`PsBehavior`] type), used as
//! a baseline by the DRF experiments and benchmarks.

use std::collections::{BTreeMap, BTreeSet};

use seqwm_explore::{AgentGroup, ExploreConfig, Transition, TransitionSystem};
use seqwm_lang::{ChoiceSet, Loc, ProgState, Program, Step, Value};

use crate::machine::PsBehavior;

/// Exploration configuration for the SC machine.
#[derive(Clone, Debug)]
pub struct ScConfig {
    /// Depth bound on interleaving exploration.
    pub max_steps: usize,
    /// Bound on visited states.
    pub max_states: usize,
    /// Defined values used to resolve `freeze` of `undef`.
    pub choose_domain: Vec<i64>,
}

impl Default for ScConfig {
    fn default() -> Self {
        ScConfig {
            max_steps: 256,
            max_states: 500_000,
            choose_domain: vec![0, 1],
        }
    }
}

/// An SC machine state: one [`ProgState`] per thread over a single
/// flat memory.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ScState {
    threads: Vec<ProgState>,
    prints: Vec<Vec<Value>>,
    mem: BTreeMap<Loc, Value>,
}

impl ScState {
    /// The per-thread program states (used by model-level monitors to
    /// inspect each thread's pending access).
    pub fn thread_states(&self) -> &[ProgState] {
        &self.threads
    }

    fn terminal(&self) -> Option<PsBehavior> {
        let mut returns = Vec::with_capacity(self.threads.len());
        for t in &self.threads {
            returns.push(t.returned()?);
        }
        Some(PsBehavior::Returns {
            returns,
            prints: self.prints.clone(),
        })
    }
}

/// The result of an SC exploration.
#[derive(Clone, Debug)]
pub struct ScExploration {
    /// Behaviors found.
    pub behaviors: BTreeSet<PsBehavior>,
    /// Distinct states visited.
    pub states: usize,
    /// Whether a bound was hit.
    pub truncated: bool,
}

/// The SC interleaving machine as an engine-explorable system.
///
/// Public so model-level backends (`seqwm-models`) can wrap it with
/// monitoring adapters; ordinary callers use [`explore_sc`].
pub struct ScSystem<'a> {
    progs: &'a [Program],
    cfg: &'a ScConfig,
}

impl<'a> ScSystem<'a> {
    /// A new SC system over `progs` with `cfg` bounds.
    pub fn new(progs: &'a [Program], cfg: &'a ScConfig) -> Self {
        ScSystem { progs, cfg }
    }
}

impl TransitionSystem for ScSystem<'_> {
    type State = ScState;
    type Behavior = PsBehavior;

    fn initial_state(&self) -> ScState {
        ScState {
            threads: self.progs.iter().map(ProgState::new).collect(),
            prints: vec![Vec::new(); self.progs.len()],
            mem: BTreeMap::new(),
        }
    }

    fn agent_groups(&self, st: &ScState) -> Vec<AgentGroup<ScState, PsBehavior>> {
        let mut out = Vec::with_capacity(st.threads.len());
        for tid in 0..st.threads.len() {
            let t = &st.threads[tid];
            let mut transitions: Vec<Transition<ScState, PsBehavior>> = Vec::new();
            // Memory-preserving steps of distinct threads commute;
            // thread-internal steps (silent/choose/syscall) touch no
            // shared state at all and qualify as ample candidates.
            let mut shared_pure = true;
            let mut local = false;
            let mut na_write = None;
            let mut shared_read = None;
            let mut atomic_write = None;
            match t.step() {
                Step::Terminated(_) => {}
                Step::Fail => {
                    transitions.push(Transition::behavior(PsBehavior::Ub));
                }
                Step::Silent(next) => {
                    let mut s = st.clone();
                    s.threads[tid] = next;
                    transitions.push(Transition::state(s));
                    local = true;
                }
                Step::Choose(cs) => {
                    let choices = match &cs {
                        ChoiceSet::Explicit(vs) => vs.clone(),
                        ChoiceSet::AnyDefined => self
                            .cfg
                            .choose_domain
                            .iter()
                            .map(|&n| Value::Int(n))
                            .collect(),
                    };
                    for v in choices {
                        let mut s = st.clone();
                        s.threads[tid] = t.resume_choose(v);
                        transitions.push(Transition::state(s));
                    }
                    local = true;
                }
                Step::Read { loc, .. } => {
                    let v = st.mem.get(&loc).copied().unwrap_or_default();
                    let mut s = st.clone();
                    s.threads[tid] = t.resume_read(v);
                    transitions.push(Transition::state(s));
                    // An SC read touches exactly its own key and writes
                    // nothing: independent of other reads and of writes
                    // to distinct keys.
                    shared_read = Some(seqwm_explore::fp64(&loc));
                }
                Step::Write {
                    loc,
                    mode,
                    val,
                    next,
                } => {
                    let mut s = st.clone();
                    s.mem.insert(loc, val);
                    s.threads[tid] = next;
                    transitions.push(Transition::state(s));
                    shared_pure = false;
                    // SC memory is a flat map, so a write's only shared
                    // effect is its own key and distinct-key writes
                    // commute *structurally* — the state equality the
                    // `atomic_write` contract demands holds of the flat
                    // map with no quotient needed. Claim the NA rule
                    // for non-atomic writes and the atomic rule for the
                    // rest.
                    if mode == seqwm_lang::WriteMode::Na {
                        na_write = Some(seqwm_explore::fp64(&loc));
                    } else {
                        atomic_write = Some(seqwm_explore::fp64(&loc));
                    }
                }
                Step::Rmw { loc, .. } => {
                    let read = st.mem.get(&loc).copied().unwrap_or_default();
                    let res = t.resume_rmw(read);
                    let mut s = st.clone();
                    if let Some(w) = res.write {
                        s.mem.insert(loc, w);
                        shared_pure = false;
                    }
                    s.threads[tid] = res.next;
                    transitions.push(Transition::state(s));
                }
                Step::Fence { next, .. } => {
                    let mut s = st.clone();
                    s.threads[tid] = next;
                    transitions.push(Transition::state(s));
                    local = true;
                }
                Step::Syscall { val, next } => {
                    let mut s = st.clone();
                    s.prints[tid].push(val);
                    s.threads[tid] = next;
                    transitions.push(Transition::state(s));
                    local = true;
                }
            }
            if transitions.is_empty() {
                continue;
            }
            out.push(AgentGroup {
                agent: tid,
                transitions,
                shared_pure,
                local,
                na_write,
                shared_read,
                atomic_write,
            });
        }
        out
    }

    fn terminal_behavior(&self, st: &ScState) -> Option<PsBehavior> {
        st.terminal()
    }
}

/// Explores all SC interleavings of `progs` (via the `seqwm-explore`
/// engine: sequential, interleaving-reduced, fingerprint-deduplicated).
pub fn explore_sc(progs: &[Program], cfg: &ScConfig) -> ScExploration {
    explore_sc_engine(
        progs,
        cfg,
        &ExploreConfig {
            max_states: cfg.max_states,
            max_depth: cfg.max_steps,
            ..ExploreConfig::default()
        },
    )
}

/// [`explore_sc`] with full control of engine knobs.
pub fn explore_sc_engine(progs: &[Program], cfg: &ScConfig, ecfg: &ExploreConfig) -> ScExploration {
    let sys = ScSystem { progs, cfg };
    let r = seqwm_explore::explore(&sys, ecfg);
    ScExploration {
        behaviors: r.behaviors,
        states: r.stats.states,
        truncated: r.stats.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    fn returns(e: &ScExploration) -> BTreeSet<Vec<Value>> {
        e.behaviors
            .iter()
            .filter_map(|b| match b {
                PsBehavior::Returns { returns, .. } => Some(returns.clone()),
                PsBehavior::Ub => None,
            })
            .collect()
    }

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&n| Value::Int(n)).collect()
    }

    #[test]
    fn sc_forbids_store_buffering_weak_outcome() {
        let e = explore_sc(
            &progs(&[
                "store[rlx](scsb_x, 1); a := load[rlx](scsb_y); return a;",
                "store[rlx](scsb_y, 1); b := load[rlx](scsb_x); return b;",
            ]),
            &ScConfig::default(),
        );
        let rs = returns(&e);
        assert!(!rs.contains(&ints(&[0, 0])), "SC forbids both-zero in SB");
        assert!(rs.contains(&ints(&[1, 1])));
        assert!(rs.contains(&ints(&[0, 1])));
        assert!(rs.contains(&ints(&[1, 0])));
    }

    #[test]
    fn sc_interleaves_all_orders() {
        let e = explore_sc(
            &progs(&[
                "store[na](sci_x, 1); return 0;",
                "a := load[na](sci_x); return a;",
            ]),
            &ScConfig::default(),
        );
        let rs = returns(&e);
        assert!(rs.contains(&ints(&[0, 0])));
        assert!(rs.contains(&ints(&[0, 1])));
    }

    #[test]
    fn sc_ub_on_abort() {
        let e = explore_sc(&progs(&["abort;"]), &ScConfig::default());
        assert!(e.behaviors.contains(&PsBehavior::Ub));
    }

    #[test]
    fn sc_rmw_is_atomic() {
        // Two fetch-and-adds: the counter always ends at 2 (returns sum to 1).
        let e = explore_sc(
            &progs(&[
                "a := fadd[acqrel](scr_c, 1); return a;",
                "b := fadd[acqrel](scr_c, 1); c := load[rlx](scr_c); return b;",
            ]),
            &ScConfig::default(),
        );
        let rs = returns(&e);
        // One thread reads 0, the other 1 — never both 0.
        assert!(!rs.contains(&ints(&[0, 0])));
        assert!(rs.contains(&ints(&[0, 1])) || rs.contains(&ints(&[1, 0])));
    }
}
