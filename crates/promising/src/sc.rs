//! A sequentially consistent (SC) baseline machine.
//!
//! SC is the strongest model the paper's DRF guarantees relate to:
//! race-free programs behave the same under PS^na and under an
//! interleaving semantics with a single flat memory. This module provides
//! that interleaving semantics (reusing the [`PsBehavior`] type), used as
//! a baseline by the DRF experiments and benchmarks.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use seqwm_lang::{ChoiceSet, Loc, ProgState, Program, Step, Value};

use crate::machine::PsBehavior;

/// Exploration configuration for the SC machine.
#[derive(Clone, Debug)]
pub struct ScConfig {
    /// Depth bound on interleaving exploration.
    pub max_steps: usize,
    /// Bound on visited states.
    pub max_states: usize,
    /// Defined values used to resolve `freeze` of `undef`.
    pub choose_domain: Vec<i64>,
}

impl Default for ScConfig {
    fn default() -> Self {
        ScConfig {
            max_steps: 256,
            max_states: 500_000,
            choose_domain: vec![0, 1],
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ScState {
    threads: Vec<ProgState>,
    prints: Vec<Vec<Value>>,
    mem: BTreeMap<Loc, Value>,
}

impl ScState {
    fn terminal(&self) -> Option<PsBehavior> {
        let mut returns = Vec::with_capacity(self.threads.len());
        for t in &self.threads {
            returns.push(t.returned()?);
        }
        Some(PsBehavior::Returns {
            returns,
            prints: self.prints.clone(),
        })
    }
}

/// The result of an SC exploration.
#[derive(Clone, Debug)]
pub struct ScExploration {
    /// Behaviors found.
    pub behaviors: BTreeSet<PsBehavior>,
    /// Distinct states visited.
    pub states: usize,
    /// Whether a bound was hit.
    pub truncated: bool,
}

/// Explores all SC interleavings of `progs`.
pub fn explore_sc(progs: &[Program], cfg: &ScConfig) -> ScExploration {
    let init = ScState {
        threads: progs.iter().map(ProgState::new).collect(),
        prints: vec![Vec::new(); progs.len()],
        mem: BTreeMap::new(),
    };
    let mut visited: HashSet<ScState> = HashSet::new();
    let mut out = ScExploration {
        behaviors: BTreeSet::new(),
        states: 0,
        truncated: false,
    };
    let mut stack = vec![(init, 0usize)];
    while let Some((st, depth)) = stack.pop() {
        if !visited.insert(st.clone()) {
            continue;
        }
        out.states += 1;
        if out.states >= cfg.max_states {
            out.truncated = true;
            break;
        }
        if let Some(b) = st.terminal() {
            out.behaviors.insert(b);
            continue;
        }
        if depth >= cfg.max_steps {
            out.truncated = true;
            continue;
        }
        for tid in 0..st.threads.len() {
            let t = &st.threads[tid];
            let mut succs: Vec<ScState> = Vec::new();
            match t.step() {
                Step::Terminated(_) => {}
                Step::Fail => {
                    out.behaviors.insert(PsBehavior::Ub);
                }
                Step::Silent(next) => {
                    let mut s = st.clone();
                    s.threads[tid] = next;
                    succs.push(s);
                }
                Step::Choose(cs) => {
                    let choices = match &cs {
                        ChoiceSet::Explicit(vs) => vs.clone(),
                        ChoiceSet::AnyDefined => {
                            cfg.choose_domain.iter().map(|&n| Value::Int(n)).collect()
                        }
                    };
                    for v in choices {
                        let mut s = st.clone();
                        s.threads[tid] = t.resume_choose(v);
                        succs.push(s);
                    }
                }
                Step::Read { loc, .. } => {
                    let v = st.mem.get(&loc).copied().unwrap_or_default();
                    let mut s = st.clone();
                    s.threads[tid] = t.resume_read(v);
                    succs.push(s);
                }
                Step::Write { loc, val, next, .. } => {
                    let mut s = st.clone();
                    s.mem.insert(loc, val);
                    s.threads[tid] = next;
                    succs.push(s);
                }
                Step::Rmw { loc, .. } => {
                    let read = st.mem.get(&loc).copied().unwrap_or_default();
                    let res = t.resume_rmw(read);
                    let mut s = st.clone();
                    if let Some(w) = res.write {
                        s.mem.insert(loc, w);
                    }
                    s.threads[tid] = res.next;
                    succs.push(s);
                }
                Step::Fence { next, .. } => {
                    let mut s = st.clone();
                    s.threads[tid] = next;
                    succs.push(s);
                }
                Step::Syscall { val, next } => {
                    let mut s = st.clone();
                    s.prints[tid].push(val);
                    s.threads[tid] = next;
                    succs.push(s);
                }
            }
            for s in succs {
                stack.push((s, depth + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    fn returns(e: &ScExploration) -> BTreeSet<Vec<Value>> {
        e.behaviors
            .iter()
            .filter_map(|b| match b {
                PsBehavior::Returns { returns, .. } => Some(returns.clone()),
                PsBehavior::Ub => None,
            })
            .collect()
    }

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&n| Value::Int(n)).collect()
    }

    #[test]
    fn sc_forbids_store_buffering_weak_outcome() {
        let e = explore_sc(
            &progs(&[
                "store[rlx](scsb_x, 1); a := load[rlx](scsb_y); return a;",
                "store[rlx](scsb_y, 1); b := load[rlx](scsb_x); return b;",
            ]),
            &ScConfig::default(),
        );
        let rs = returns(&e);
        assert!(!rs.contains(&ints(&[0, 0])), "SC forbids both-zero in SB");
        assert!(rs.contains(&ints(&[1, 1])));
        assert!(rs.contains(&ints(&[0, 1])));
        assert!(rs.contains(&ints(&[1, 0])));
    }

    #[test]
    fn sc_interleaves_all_orders() {
        let e = explore_sc(
            &progs(&[
                "store[na](sci_x, 1); return 0;",
                "a := load[na](sci_x); return a;",
            ]),
            &ScConfig::default(),
        );
        let rs = returns(&e);
        assert!(rs.contains(&ints(&[0, 0])));
        assert!(rs.contains(&ints(&[0, 1])));
    }

    #[test]
    fn sc_ub_on_abort() {
        let e = explore_sc(&progs(&["abort;"]), &ScConfig::default());
        assert!(e.behaviors.contains(&PsBehavior::Ub));
    }

    #[test]
    fn sc_rmw_is_atomic() {
        // Two fetch-and-adds: the counter always ends at 2 (returns sum to 1).
        let e = explore_sc(
            &progs(&[
                "a := fadd[acqrel](scr_c, 1); return a;",
                "b := fadd[acqrel](scr_c, 1); c := load[rlx](scr_c); return b;",
            ]),
            &ScConfig::default(),
        );
        let rs = returns(&e);
        // One thread reads 0, the other 1 — never both 0.
        assert!(!rs.contains(&ints(&[0, 0])));
        assert!(rs.contains(&ints(&[0, 1])) || rs.contains(&ints(&[1, 0])));
    }
}
