//! The PS^na memory: timestamped, interval-shaped messages, including the
//! valueless non-atomic messages (`NAMsg`) used for race detection (Fig. 5).
//!
//! Each message occupies a timestamp interval `(from, to]`; intervals of
//! messages to the same location are disjoint. Interval adjacency
//! (`m2.from = m1.to`) is what makes atomic read-modify-writes atomic: an
//! RMW reading `m1` must write a message attached to `m1`, and only one
//! message can ever attach there.
//!
//! [`PsMemory::insert_slots`] enumerates a *canonical* set of insertion
//! candidates — per gap, one slot attached to the left neighbour and one
//! detached slot leaving room on both sides — which covers all distinct
//! relative orderings and adjacency choices reachable by bounded runs
//! (timestamps are dense, so only order and adjacency are observable).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use seqwm_lang::{Loc, Value};

use crate::time::Timestamp;
use crate::view::View;

/// A message `⟨x@(from,to], v, V⟩`, or a valueless non-atomic message
/// `x@(from,to]` when `payload` is `None`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Message {
    /// Location.
    pub loc: Loc,
    /// Left end of the timestamp interval (exclusive).
    pub from: Timestamp,
    /// Right end of the timestamp interval (inclusive) — *the* timestamp of
    /// the message.
    pub to: Timestamp,
    /// The value, or `None` for a valueless `NAMsg` race marker.
    pub payload: Option<Value>,
    /// The message view (always `⊥` for non-atomic messages and `NAMsg`).
    pub view: View,
}

impl Message {
    /// The initialization message `⟨x@(0,0], 0, ⊥⟩`.
    pub fn init(loc: Loc) -> Message {
        Message {
            loc,
            from: Timestamp::ZERO,
            to: Timestamp::ZERO,
            payload: Some(Value::ZERO),
            view: View::bottom(),
        }
    }

    /// Is this a valueless non-atomic message (`NAMsg`)?
    pub fn is_na_marker(&self) -> bool {
        self.payload.is_none()
    }

    /// The key identifying this message within a memory.
    pub fn key(&self) -> MsgKey {
        (self.loc, self.to)
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.payload {
            Some(v) => write!(
                f,
                "⟨{}@({},{}],{},{}⟩",
                self.loc, self.from, self.to, v, self.view
            ),
            None => write!(f, "⟨{}@({},{}]⟩", self.loc, self.from, self.to),
        }
    }
}

/// Identifies a message: its location and its (unique per location)
/// timestamp `to`.
pub type MsgKey = (Loc, Timestamp);

/// A thread's outstanding promise set (keys into the shared memory).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PromiseSet(pub BTreeSet<MsgKey>);

impl PromiseSet {
    /// The empty promise set.
    pub fn new() -> Self {
        PromiseSet::default()
    }

    /// Is the promise set empty (certification goal)?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Does this set contain the message?
    pub fn contains(&self, key: &MsgKey) -> bool {
        self.0.contains(key)
    }

    /// Adds a promise.
    pub fn insert(&mut self, key: MsgKey) {
        self.0.insert(key);
    }

    /// Fulfills (removes) a promise; returns whether it was present.
    pub fn remove(&mut self, key: &MsgKey) -> bool {
        self.0.remove(key)
    }

    /// Iterates over promise keys.
    pub fn iter(&self) -> impl Iterator<Item = &MsgKey> + '_ {
        self.0.iter()
    }
}

/// A candidate insertion slot returned by [`PsMemory::insert_slots`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Slot {
    /// Left end (exclusive) of the new interval.
    pub from: Timestamp,
    /// Right end (inclusive) of the new interval.
    pub to: Timestamp,
    /// Whether the slot is attached to the previous message
    /// (`from == prev.to`).
    pub attached: bool,
}

/// The shared memory: per-location lists of messages sorted by timestamp.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PsMemory {
    msgs: BTreeMap<Loc, Vec<Message>>,
}

impl PsMemory {
    /// The initial memory with an initialization message for each location.
    pub fn init<I: IntoIterator<Item = Loc>>(locs: I) -> Self {
        let mut m = PsMemory::default();
        for loc in locs {
            m.msgs.insert(loc, vec![Message::init(loc)]);
        }
        m
    }

    /// The messages of a location, sorted by timestamp.
    pub fn messages(&self, loc: Loc) -> &[Message] {
        self.msgs.get(&loc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All locations with at least one message.
    pub fn locs(&self) -> impl Iterator<Item = Loc> + '_ {
        self.msgs.keys().copied()
    }

    /// Finds a message by key.
    pub fn find(&self, key: &MsgKey) -> Option<&Message> {
        self.messages(key.0).iter().find(|m| m.to == key.1)
    }

    /// The latest message of a location.
    ///
    /// # Panics
    ///
    /// Panics if the location has no messages (memory not initialized).
    pub fn latest(&self, loc: Loc) -> &Message {
        self.messages(loc).last().expect("location initialized")
    }

    /// Canonical insertion candidates for a location: per gap between
    /// consecutive messages, an attached slot and a detached slot; plus an
    /// attached and a detached slot after the last message.
    pub fn insert_slots(&self, loc: Loc) -> Vec<Slot> {
        let msgs = self.messages(loc);
        let mut out = Vec::new();
        for w in msgs.windows(2) {
            let (g0, g1) = (w[0].to, w[1].from);
            if g0 < g1 {
                let mid = Timestamp::between(g0, g1);
                out.push(Slot {
                    from: g0,
                    to: mid,
                    attached: true,
                });
                let lq = Timestamp::left_quarter(g0, g1);
                out.push(Slot {
                    from: lq,
                    to: mid,
                    attached: false,
                });
            }
        }
        if let Some(last) = msgs.last() {
            let t0 = last.to;
            let t1 = t0.succ();
            out.push(Slot {
                from: t0,
                to: t1,
                attached: true,
            });
            out.push(Slot {
                from: Timestamp::between(t0, t1),
                to: t1,
                attached: false,
            });
        }
        out
    }

    /// The slot directly attached to message `key` (for RMWs), if free.
    pub fn attached_slot(&self, key: &MsgKey) -> Option<Slot> {
        let msgs = self.messages(key.0);
        let idx = msgs.iter().position(|m| m.to == key.1)?;
        let g0 = msgs[idx].to;
        let g1 = msgs.get(idx + 1).map(|m| m.from);
        match g1 {
            Some(g1) if g0 < g1 => Some(Slot {
                from: g0,
                to: Timestamp::between(g0, g1),
                attached: true,
            }),
            Some(_) => None, // next message already attached
            None => Some(Slot {
                from: g0,
                to: g0.succ(),
                attached: true,
            }),
        }
    }

    /// Adds a message (memory: new).
    ///
    /// # Panics
    ///
    /// Panics if the message's interval is empty or overlaps an existing
    /// message — exploration must only use slots from [`Self::insert_slots`]
    /// or [`Self::attached_slot`].
    pub fn add(&mut self, msg: Message) {
        assert!(msg.from < msg.to, "message interval must be non-empty");
        let list = self.msgs.entry(msg.loc).or_default();
        for m in list.iter() {
            let disjoint = msg.to <= m.from || msg.from >= m.to;
            assert!(
                disjoint,
                "overlapping message intervals at {}: ({},{}] vs ({},{}]",
                msg.loc, msg.from, msg.to, m.from, m.to
            );
        }
        let pos = list.partition_point(|m| m.to < msg.to);
        list.insert(pos, msg);
    }

    /// Lowers a promised message (the `lower` rule): the value may be
    /// raised to `undef` (`v ⊑ v′`), the view may be lowered (`V′ ⊑ V`).
    ///
    /// Returns `false` (and leaves the memory unchanged) if the conditions
    /// do not hold or the message does not exist.
    pub fn lower(&mut self, key: &MsgKey, new_val: Value, new_view: View) -> bool {
        let Some(list) = self.msgs.get_mut(&key.0) else {
            return false;
        };
        let Some(m) = list.iter_mut().find(|m| m.to == key.1) else {
            return false;
        };
        let Some(old_val) = m.payload else {
            return false; // NAMsg markers carry no value
        };
        if !old_val.refines(new_val) || !new_view.leq(&m.view) {
            return false;
        }
        m.payload = Some(new_val);
        m.view = new_view;
        true
    }

    /// Is an access racy? (`race-helper` of Fig. 5): there is a message to
    /// `x`, not among the thread's own promises, ahead of the thread's view,
    /// and — for atomic accesses — it is a valueless non-atomic message.
    pub fn is_racy(
        &self,
        view_ts: Timestamp,
        promises: &PromiseSet,
        loc: Loc,
        atomic_access: bool,
    ) -> bool {
        self.messages(loc).iter().any(|m| {
            view_ts < m.to && !promises.contains(&m.key()) && (!atomic_access || m.is_na_marker())
        })
    }

    /// Readable messages for a thread with view-timestamp `ts` on `loc`:
    /// valued messages with `ts ≤ m.to`.
    pub fn readable(&self, loc: Loc, ts: Timestamp) -> impl Iterator<Item = &Message> + '_ {
        self.messages(loc)
            .iter()
            .filter(move |m| !m.is_na_marker() && ts <= m.to)
    }
}

impl fmt::Display for PsMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (loc, list) in &self.msgs {
            write!(f, "{loc}: ")?;
            for m in list {
                write!(f, "{m} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Loc {
        Loc::new("mem_x")
    }

    fn msg(loc: Loc, slot: Slot, v: i64) -> Message {
        Message {
            loc,
            from: slot.from,
            to: slot.to,
            payload: Some(Value::Int(v)),
            view: View::bottom(),
        }
    }

    #[test]
    fn init_memory_has_zero_messages() {
        let m = PsMemory::init([x()]);
        assert_eq!(m.messages(x()).len(), 1);
        assert_eq!(m.latest(x()).payload, Some(Value::ZERO));
        assert_eq!(m.latest(x()).to, Timestamp::ZERO);
    }

    #[test]
    fn append_and_order() {
        let mut m = PsMemory::init([x()]);
        let slots = m.insert_slots(x());
        // Only tail slots exist initially (init occupies (0,0]).
        assert_eq!(slots.len(), 2);
        let tail = slots[0];
        assert!(tail.attached);
        m.add(msg(x(), tail, 1));
        assert_eq!(m.latest(x()).payload, Some(Value::Int(1)));
        // Now a further append goes after it.
        let slots = m.insert_slots(x());
        let tail2 = slots.iter().rev().find(|s| s.attached).copied().unwrap();
        m.add(msg(x(), tail2, 2));
        assert_eq!(m.messages(x()).len(), 3);
        assert!(m.messages(x()).windows(2).all(|w| w[0].to <= w[1].from));
    }

    #[test]
    fn detached_slot_leaves_gap_for_later_insert() {
        let mut m = PsMemory::init([x()]);
        let detached = m
            .insert_slots(x())
            .into_iter()
            .find(|s| !s.attached)
            .unwrap();
        m.add(msg(x(), detached, 1));
        // The gap before the detached message admits another insertion.
        let slots = m.insert_slots(x());
        assert!(slots
            .iter()
            .any(|s| s.to <= detached.from || s.to < detached.to));
        let inner = slots
            .iter()
            .find(|s| s.to <= m.messages(x())[1].from)
            .copied();
        assert!(inner.is_some(), "gap slot available: {slots:?}");
        m.add(msg(x(), inner.unwrap(), 2));
        assert_eq!(m.messages(x()).len(), 3);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_is_rejected() {
        let mut m = PsMemory::init([x()]);
        let tail = m.insert_slots(x())[0];
        m.add(msg(x(), tail, 1));
        m.add(msg(x(), tail, 2)); // same slot again: overlap
    }

    #[test]
    fn attached_slot_is_unique() {
        let mut m = PsMemory::init([x()]);
        let init_key = (x(), Timestamp::ZERO);
        let s = m.attached_slot(&init_key).unwrap();
        assert!(s.attached && s.from == Timestamp::ZERO);
        m.add(msg(x(), s, 1));
        // Attaching to init again is impossible.
        assert!(m.attached_slot(&init_key).is_none());
        // But attaching to the new message works.
        let k2 = (x(), s.to);
        assert!(m.attached_slot(&k2).is_some());
    }

    #[test]
    fn race_detection_na_vs_atomic() {
        let mut m = PsMemory::init([x()]);
        let tail = m.insert_slots(x())[0];
        // A valued na message ahead of the view.
        m.add(msg(x(), tail, 1));
        let p = PromiseSet::new();
        // na access: races with any unseen message.
        assert!(m.is_racy(Timestamp::ZERO, &p, x(), false));
        // atomic access: races only with valueless NAMsg markers.
        assert!(!m.is_racy(Timestamp::ZERO, &p, x(), true));
        // Add a marker: now atomic accesses race too.
        let tail2 = m
            .insert_slots(x())
            .into_iter()
            .rev()
            .find(|s| s.attached)
            .unwrap();
        m.add(Message {
            loc: x(),
            from: tail2.from,
            to: tail2.to,
            payload: None,
            view: View::bottom(),
        });
        assert!(m.is_racy(Timestamp::ZERO, &p, x(), true));
        // A thread whose view covers everything does not race.
        assert!(!m.is_racy(tail2.to, &p, x(), false));
    }

    #[test]
    fn own_promises_do_not_race() {
        let mut m = PsMemory::init([x()]);
        let tail = m.insert_slots(x())[0];
        m.add(msg(x(), tail, 1));
        let mut p = PromiseSet::new();
        p.insert((x(), tail.to));
        assert!(!m.is_racy(Timestamp::ZERO, &p, x(), false));
    }

    #[test]
    fn lower_raises_value_to_undef_and_lowers_view() {
        let mut m = PsMemory::init([x()]);
        let tail = m.insert_slots(x())[0];
        m.add(Message {
            loc: x(),
            from: tail.from,
            to: tail.to,
            payload: Some(Value::Int(1)),
            view: View::singleton(x(), tail.to),
        });
        let key = (x(), tail.to);
        // Raising 1 → undef with view lowered to ⊥ is allowed.
        assert!(m.lower(&key, Value::Undef, View::bottom()));
        assert_eq!(m.find(&key).unwrap().payload, Some(Value::Undef));
        // Changing undef back to a different defined value is not.
        assert!(!m.lower(&key, Value::Int(2), View::bottom()));
    }

    #[test]
    fn readable_respects_view() {
        let mut m = PsMemory::init([x()]);
        let tail = m.insert_slots(x())[0];
        m.add(msg(x(), tail, 1));
        let all: Vec<_> = m.readable(x(), Timestamp::ZERO).collect();
        assert_eq!(all.len(), 2); // init + new
        let only_new: Vec<_> = m.readable(x(), tail.to).collect();
        assert_eq!(only_new.len(), 1);
        assert_eq!(only_new[0].payload, Some(Value::Int(1)));
    }
}
