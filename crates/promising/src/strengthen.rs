//! Access-mode strengthening (§5, "Results"): replacing non-atomic
//! accesses by atomic ones is sound in PS^na.
//!
//! The paper proves this in Coq and uses it to derive the correctness of
//! mapping schemes to hardware (non-atomics and relaxed accesses compile
//! to the same plain machine accesses, so soundness of compilation reduces
//! to soundness of strengthening plus the known PS2.1→hardware mappings).
//!
//! This module implements the transformation ([`strengthen_na`]) and the
//! differential check ([`strengthening_sound`]): for every behavior of the
//! strengthened program there is a matching behavior of the original —
//! the strengthened program can only have *fewer* behaviors (races
//! disappear, `undef` reads become concrete).

use seqwm_lang::{Program, ReadMode, Stmt, WriteMode};

use crate::machine::{explore, ps_behaviors_refine, PsBehavior};
use crate::thread::PsConfig;

/// Strengthens every non-atomic access to a relaxed atomic access.
pub fn strengthen_na(prog: &Program) -> Program {
    Program::new(strengthen_stmt(&prog.body))
}

fn strengthen_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Load(r, x, ReadMode::Na) => Stmt::Load(*r, *x, ReadMode::Rlx),
        Stmt::Store(x, WriteMode::Na, e) => Stmt::Store(*x, WriteMode::Rlx, e.clone()),
        Stmt::Seq(a, b) => Stmt::Seq(Box::new(strengthen_stmt(a)), Box::new(strengthen_stmt(b))),
        Stmt::If(c, a, b) => Stmt::If(
            c.clone(),
            Box::new(strengthen_stmt(a)),
            Box::new(strengthen_stmt(b)),
        ),
        Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(strengthen_stmt(b))),
        other => other.clone(),
    }
}

/// Differentially checks the strengthening soundness claim on a parallel
/// program: `behaviors(strengthen(progs)) ⊑ behaviors(progs)` (Def. 5.3).
///
/// Returns the first unmatched strengthened behavior on failure.
///
/// # Errors
///
/// An unmatched behavior would refute the §5 claim (or this
/// reproduction); none is known.
pub fn strengthening_sound(progs: &[Program], cfg: &PsConfig) -> Result<(), PsBehavior> {
    let strengthened: Vec<Program> = progs.iter().map(strengthen_na).collect();
    let original = explore(progs, cfg);
    let stronger = explore(&strengthened, cfg);
    ps_behaviors_refine(&stronger.behaviors, &original.behaviors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    #[test]
    fn strengthening_rewrites_all_na_accesses() {
        let p = parse_program(
            "store[na](st_x, 1); a := load[na](st_x);
             if (a == 1) { store[na](st_x, 2); } while (a < 1) { b := load[na](st_y); a := a + 1; }",
        )
        .unwrap();
        let q = strengthen_na(&p);
        assert!(q.na_locs().is_empty(), "no na accesses remain: {q}");
        assert_eq!(q.atomic_locs().len(), 2);
    }

    #[test]
    fn strengthening_eliminates_ww_race_ub() {
        let ps = progs(&[
            "store[na](sw_x, 1); return 0;",
            "store[na](sw_x, 2); return 0;",
        ]);
        // The racy original admits UB; the strengthened version must not,
        // and in particular refines the original.
        assert!(strengthening_sound(&ps, &PsConfig::default()).is_ok());
        let strengthened: Vec<Program> = ps.iter().map(strengthen_na).collect();
        let e = explore(&strengthened, &PsConfig::default());
        assert!(!e.behaviors.contains(&PsBehavior::Ub));
        assert!(!e.racy);
    }

    #[test]
    fn strengthening_sound_on_mp_and_sb() {
        let mp = progs(&[
            "store[na](sm_d, 1); store[rel](sm_f, 1); return 0;",
            "a := load[acq](sm_f); if (a == 1) { b := load[na](sm_d); } return a;",
        ]);
        assert!(strengthening_sound(&mp, &PsConfig::default()).is_ok());
        let sb = progs(&[
            "store[na](ss_x, 1); a := load[na](ss_y); return a;",
            "store[na](ss_y, 1); b := load[na](ss_x); return b;",
        ]);
        assert!(strengthening_sound(&sb, &PsConfig::default()).is_ok());
    }

    #[test]
    fn weakening_is_not_sound() {
        // Sanity: the converse direction (rlx → na) is NOT sound — the
        // weakened program gains UB behaviors the original lacks.
        let rlx = progs(&[
            "store[rlx](swk_x, 1); return 0;",
            "store[rlx](swk_x, 2); return 0;",
        ]);
        let weakened = progs(&[
            "store[na](swk_x, 1); return 0;",
            "store[na](swk_x, 2); return 0;",
        ]);
        let cfg = PsConfig::default();
        let orig = explore(&rlx, &cfg);
        let weak = explore(&weakened, &cfg);
        assert!(
            ps_behaviors_refine(&weak.behaviors, &orig.behaviors).is_err(),
            "weakening introduces UB"
        );
    }
}
