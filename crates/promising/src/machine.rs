//! PS^na machine states, behaviors (Def. 5.2), behavioral refinement
//! (Def. 5.3), and bounded-exhaustive exploration.
//!
//! A machine state `⟨𝕋, M⟩` maps thread identifiers to thread states and
//! holds the shared memory (plus the global SC-fence view of the
//! full model). `machine: normal` steps require *certification*: after its
//! step, the acting thread must be able to fulfill all its outstanding
//! promises running alone. `machine: failure` aborts the whole machine
//! with the behavior `⊥`.
//!
//! [`explore`] enumerates all machine executions up to the bounds of
//! [`PsConfig`], collecting the set of observable behaviors.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use seqwm_lang::{Program, Value};

use crate::memory::PsMemory;
use crate::thread::{certify, thread_steps, PsConfig, StepKind, ThreadState};
use crate::view::View;

/// A whole-machine state `⟨𝕋, M⟩` (+ SC view).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MachineState {
    /// Per-thread states, indexed by thread id.
    pub threads: Vec<ThreadState>,
    /// The shared memory.
    pub mem: PsMemory,
    /// The global SC-fence view.
    pub sc_view: View,
}

impl MachineState {
    /// The initial machine state for a parallel composition of programs.
    pub fn new(progs: &[Program]) -> Self {
        let mut locs = BTreeSet::new();
        for p in progs {
            locs.extend(p.locs());
        }
        MachineState {
            threads: progs.iter().map(ThreadState::new).collect(),
            mem: PsMemory::init(locs),
            sc_view: View::zero(),
        }
    }

    /// If every thread has terminated, the machine's behavior.
    pub fn terminal_behavior(&self) -> Option<PsBehavior> {
        let mut returns = Vec::with_capacity(self.threads.len());
        for t in &self.threads {
            returns.push(t.returned()?);
        }
        Some(PsBehavior::Returns {
            returns,
            prints: self.threads.iter().map(|t| t.prints.clone()).collect(),
        })
    }
}

/// A machine behavior (Def. 5.2): per-thread return values (and syscall
/// outputs, following the Coq development where behaviors are syscall
/// sequences), or erroneous termination `⊥`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PsBehavior {
    /// Erroneous termination (UB reached).
    Ub,
    /// Normal termination.
    Returns {
        /// Return value of each thread.
        returns: Vec<Value>,
        /// Values printed by each thread, in order.
        prints: Vec<Vec<Value>>,
    },
}

impl PsBehavior {
    /// The behavior refinement `r_tgt ⊑ r_src` of Def. 5.3: source UB
    /// matches everything; otherwise pointwise value refinement on returns
    /// and prints.
    pub fn refines(&self, src: &PsBehavior) -> bool {
        match (self, src) {
            (_, PsBehavior::Ub) => true,
            (PsBehavior::Ub, _) => false,
            (
                PsBehavior::Returns {
                    returns: tr,
                    prints: tp,
                },
                PsBehavior::Returns {
                    returns: sr,
                    prints: sp,
                },
            ) => {
                tr.len() == sr.len()
                    && tr.iter().zip(sr).all(|(a, b)| a.refines(*b))
                    && tp.len() == sp.len()
                    && tp.iter().zip(sp).all(|(a, b)| {
                        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.refines(*y))
                    })
            }
        }
    }
}

impl fmt::Display for PsBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsBehavior::Ub => write!(f, "⊥"),
            PsBehavior::Returns { returns, prints } => {
                write!(f, "(")?;
                for (i, v) in returns.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∥ ")?;
                    }
                    write!(f, "{v}")?;
                    if !prints[i].is_empty() {
                        write!(
                            f,
                            " [prints: {}]",
                            prints[i]
                                .iter()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        )?;
                    }
                }
                write!(f, ")")
            }
        }
    }
}

/// The result of a bounded-exhaustive exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The set of observable behaviors found.
    pub behaviors: BTreeSet<PsBehavior>,
    /// Number of distinct machine states visited.
    pub states: usize,
    /// Whether any exploration bound was hit (behaviors may be missing).
    pub truncated: bool,
    /// Whether any racy access (read or write) was encountered.
    pub racy: bool,
    /// Number of promise steps taken across all executions.
    pub promise_steps: usize,
}

/// Explores all machine executions of `progs` (one thread each) under
/// `cfg`, returning the behavior set.
///
/// This is a thin wrapper over the `seqwm-explore` engine (sequential,
/// interleaving-reduced, fingerprint-deduplicated — see
/// [`crate::search`]); use [`crate::search::explore_engine`] directly
/// for parallel workers, other strategies, or full statistics. The
/// seed explorer survives as [`explore_legacy`] and anchors the
/// differential test suite.
pub fn explore(progs: &[Program], cfg: &PsConfig) -> Exploration {
    crate::search::explore_engine(progs, cfg, &crate::search::engine_config(cfg)).to_exploration()
}

/// The seed explorer: a single-threaded DFS over full-state clones.
/// Kept as the differential-testing oracle for the engine.
pub fn explore_legacy(progs: &[Program], cfg: &PsConfig) -> Exploration {
    let init = MachineState::new(progs);
    let mut visited: HashSet<MachineState> = HashSet::new();
    let mut result = Exploration {
        behaviors: BTreeSet::new(),
        states: 0,
        truncated: false,
        racy: false,
        promise_steps: 0,
    };
    let mut stack: Vec<(MachineState, usize)> = vec![(init, 0)];
    while let Some((st, depth)) = stack.pop() {
        if !visited.insert(st.clone()) {
            continue;
        }
        result.states += 1;
        if result.states >= cfg.max_states {
            result.truncated = true;
            // Drain: terminal states already on the stack are real,
            // fully-explored behaviors — report them instead of
            // silently dropping them with the truncation flag.
            while let Some((rest, _)) = stack.pop() {
                if visited.contains(&rest) {
                    continue;
                }
                if let Some(b) = rest.terminal_behavior() {
                    result.behaviors.insert(b);
                }
            }
            break;
        }
        if let Some(b) = st.terminal_behavior() {
            result.behaviors.insert(b);
            continue;
        }
        if depth >= cfg.max_machine_steps {
            result.truncated = true;
            continue;
        }
        for (tid, t) in st.threads.iter().enumerate() {
            for step in thread_steps(t, &st.mem, &st.sc_view, cfg) {
                match step.kind {
                    StepKind::Failure => {
                        result.behaviors.insert(PsBehavior::Ub);
                        continue;
                    }
                    StepKind::RacyWrite(_) => {
                        result.racy = true;
                        result.behaviors.insert(PsBehavior::Ub);
                        continue;
                    }
                    StepKind::RacyRead(_) => result.racy = true,
                    StepKind::Promise => result.promise_steps += 1,
                    StepKind::Normal => {}
                }
                // machine: normal requires certification of the acting
                // thread (trivial when it has no promises).
                if !step.thread.promises.is_empty()
                    && !certify(&step.thread, &step.memory, &step.sc_view, cfg)
                {
                    continue;
                }
                let mut next = st.clone();
                next.threads[tid] = step.thread;
                next.mem = step.memory;
                next.sc_view = step.sc_view;
                stack.push((next, depth + 1));
            }
        }
    }
    result
}

/// Checks the PS^na behavioral refinement (Def. 5.3) between two behavior
/// sets: every target behavior must be matched by a source behavior.
/// Returns the first unmatched target behavior.
pub fn ps_behaviors_refine(
    tgt: &BTreeSet<PsBehavior>,
    src: &BTreeSet<PsBehavior>,
) -> Result<(), PsBehavior> {
    for tb in tgt {
        if !src.iter().any(|sb| tb.refines(sb)) {
            return Err(tb.clone());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    fn returns(behaviors: &BTreeSet<PsBehavior>) -> BTreeSet<Vec<Value>> {
        behaviors
            .iter()
            .filter_map(|b| match b {
                PsBehavior::Returns { returns, .. } => Some(returns.clone()),
                PsBehavior::Ub => None,
            })
            .collect()
    }

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&n| Value::Int(n)).collect()
    }

    #[test]
    fn single_thread_sequential_execution() {
        let e = explore(
            &progs(&["store[na](psm_x, 1); a := load[na](psm_x); return a;"]),
            &PsConfig::default(),
        );
        assert!(!e.truncated);
        assert!(returns(&e.behaviors).contains(&ints(&[1])));
        assert!(!e.behaviors.contains(&PsBehavior::Ub));
    }

    #[test]
    fn message_passing_rel_acq_is_safe() {
        // MP: data na, flag rel/acq — the classic race-free idiom.
        let e = explore(
            &progs(&[
                "store[na](mp_d, 1); store[rel](mp_f, 1); return 0;",
                "a := load[acq](mp_f); if (a == 1) { b := load[na](mp_d); } else { b := 0 - 1; } return b;",
            ]),
            &PsConfig::default(),
        );
        assert!(!e.truncated, "exploration within bounds");
        let rs = returns(&e.behaviors);
        // Reader sees flag=1 → must see data=1.
        assert!(rs.contains(&ints(&[0, 1])));
        // Reader misses flag → returns -1.
        assert!(rs.contains(&ints(&[0, -1])));
        // Never: flag seen but stale data (release/acquire synchronization).
        assert!(!rs.contains(&ints(&[0, 0])));
        assert!(!e.behaviors.contains(&PsBehavior::Ub), "MP is race-free");
    }

    #[test]
    fn message_passing_rlx_flag_is_racy() {
        // Same MP but with a relaxed flag: the data accesses race.
        let e = explore(
            &progs(&[
                "store[na](mq_d, 1); store[rlx](mq_f, 1); return 0;",
                "a := load[rlx](mq_f); if (a == 1) { b := load[na](mq_d); } else { b := 0 - 1; } return b;",
            ]),
            &PsConfig::default(),
        );
        assert!(e.racy, "rlx flag does not prevent the data race");
        // The racy read returns undef.
        assert!(returns(&e.behaviors).contains(&ints(&[0, 1])) || e.racy);
    }

    #[test]
    fn store_buffering_weak_outcome_allowed() {
        // SB with rlx accesses: both threads may read 0.
        let e = explore(
            &progs(&[
                "store[rlx](sb_x, 1); a := load[rlx](sb_y); return a;",
                "store[rlx](sb_y, 1); b := load[rlx](sb_x); return b;",
            ]),
            &PsConfig::default(),
        );
        let rs = returns(&e.behaviors);
        assert!(rs.contains(&ints(&[0, 0])), "SB weak outcome");
        assert!(rs.contains(&ints(&[1, 1])));
        assert!(rs.contains(&ints(&[0, 1])));
        assert!(rs.contains(&ints(&[1, 0])));
    }

    #[test]
    fn store_buffering_sc_fences_forbid_weak_outcome() {
        let e = explore(
            &progs(&[
                "store[rlx](sbf_x, 1); fence[sc]; a := load[rlx](sbf_y); return a;",
                "store[rlx](sbf_y, 1); fence[sc]; b := load[rlx](sbf_x); return b;",
            ]),
            &PsConfig::default(),
        );
        let rs = returns(&e.behaviors);
        assert!(
            !rs.contains(&ints(&[0, 0])),
            "SC fences forbid both-0: {rs:?}"
        );
        assert!(rs.contains(&ints(&[1, 1])));
    }

    #[test]
    fn load_buffering_requires_promises() {
        // LB: a := x_rlx; y_rlx := 1  ∥  b := y_rlx; x_rlx := 1.
        let srcs = [
            "a := load[rlx](lb_x); store[rlx](lb_y, 1); return a;",
            "b := load[rlx](lb_y); store[rlx](lb_x, 1); return b;",
        ];
        // Promise-free: (1,1) unreachable.
        let e = explore(&progs(&srcs), &PsConfig::default());
        assert!(!returns(&e.behaviors).contains(&ints(&[1, 1])));
        // With promises: (1,1) reachable.
        let ps = progs(&srcs);
        let cfg = PsConfig::with_promises(&[&ps[0], &ps[1]]);
        let e = explore(&ps, &cfg);
        assert!(
            returns(&e.behaviors).contains(&ints(&[1, 1])),
            "LB weak outcome via promises: {:?}",
            returns(&e.behaviors)
        );
    }

    #[test]
    fn coherence_read_read() {
        // CoRR: once a thread reads x=1 it cannot read the older x=0.
        let e = explore(
            &progs(&[
                "store[rlx](corr_x, 1); return 0;",
                "a := load[rlx](corr_x); b := load[rlx](corr_x); if (a == 1) { if (b == 0) { return 1; } } return 0;",
            ]),
            &PsConfig::default(),
        );
        assert!(
            !returns(&e.behaviors).contains(&ints(&[0, 1])),
            "CoRR violation"
        );
    }

    #[test]
    fn write_write_race_is_ub() {
        let e = explore(
            &progs(&[
                "store[na](ww_x, 1); return 0;",
                "store[na](ww_x, 2); return 0;",
            ]),
            &PsConfig::default(),
        );
        assert!(
            e.behaviors.contains(&PsBehavior::Ub),
            "na/na write race → UB"
        );
        assert!(e.racy);
    }

    #[test]
    fn atomic_na_mixed_race_detected_via_markers() {
        // na write ∥ rlx read on the same location: the marker variant
        // makes the atomic read racy (undef), and the na write itself
        // races with nothing (the rlx messages are seen… the *write-write*
        // case needs the atomic write).
        let e = explore(
            &progs(&[
                "store[na](mix_x, 1); return 0;",
                "store[rlx](mix_x, 2); return 0;",
            ]),
            &PsConfig::default(),
        );
        // na write racing with the unseen rlx message → UB.
        assert!(e.behaviors.contains(&PsBehavior::Ub));
    }

    #[test]
    fn behavior_refinement_order() {
        let ub: BTreeSet<_> = [PsBehavior::Ub].into_iter().collect();
        let one: BTreeSet<_> = [PsBehavior::Returns {
            returns: ints(&[1]),
            prints: vec![vec![]],
        }]
        .into_iter()
        .collect();
        let undef: BTreeSet<_> = [PsBehavior::Returns {
            returns: vec![Value::Undef],
            prints: vec![vec![]],
        }]
        .into_iter()
        .collect();
        assert!(
            ps_behaviors_refine(&one, &ub).is_ok(),
            "UB source matches all"
        );
        assert!(
            ps_behaviors_refine(&one, &undef).is_ok(),
            "undef source matches"
        );
        assert!(ps_behaviors_refine(&undef, &one).is_err());
        assert!(ps_behaviors_refine(&ub, &one).is_err());
    }

    #[test]
    fn prints_are_observable() {
        let e = explore(&progs(&["print(7); return 0;"]), &PsConfig::default());
        match e.behaviors.iter().next().unwrap() {
            PsBehavior::Returns { prints, .. } => {
                assert_eq!(prints[0], vec![Value::Int(7)]);
            }
            PsBehavior::Ub => panic!("unexpected UB"),
        }
    }

    #[test]
    fn example_5_1_promise_reads_undef() {
        // π1: a := x_na; y_rlx := 1   π2: b := y_rlx; if b=1 { x_na := 1 }
        // π1 may promise y=1; then π2 writes x=1; π1's na read races → undef.
        let srcs = [
            "a := load[na](e51_x); store[rlx](e51_y, 1); return a;",
            "b := load[rlx](e51_y); if (b == 1) { store[na](e51_x, 1); } return b;",
        ];
        let ps = progs(&srcs);
        let cfg = PsConfig::with_promises(&[&ps[0], &ps[1]]);
        let e = explore(&ps, &cfg);
        let rs = returns(&e.behaviors);
        assert!(
            rs.contains(&vec![Value::Undef, Value::Int(1)]),
            "π1 reads undef after its promise is consumed: {rs:?}"
        );
    }
}
