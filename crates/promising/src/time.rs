//! Exact rational timestamps (`Time ≜ {0} ∪ ℚ⁺`, Fig. 5).
//!
//! The promising semantics needs a *dense* total order on timestamps: a new
//! message may always be inserted between two existing ones. We implement
//! non-negative rationals with `u64` numerator/denominator, comparisons in
//! `u128` (no overflow for the exploration depths this crate supports), and
//! normalization by gcd.

use std::cmp::Ordering;
use std::fmt;

/// A non-negative rational timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Timestamp {
    num: u64,
    den: u64, // ≥ 1, gcd(num, den) = 1
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Timestamp {
    /// Time zero (the timestamp of initialization messages).
    pub const ZERO: Timestamp = Timestamp { num: 0, den: 1 };

    /// Constructs `num/den`, normalized.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Timestamp {
        assert!(den != 0, "timestamp denominator must be non-zero");
        let g = gcd(num, den);
        Timestamp {
            num: num / g,
            den: den / g,
        }
    }

    /// Constructs the integer timestamp `n`.
    pub fn int(n: u64) -> Timestamp {
        Timestamp { num: n, den: 1 }
    }

    /// `self + 1`.
    #[must_use]
    pub fn succ(self) -> Timestamp {
        Timestamp::new(self.num + self.den, self.den)
    }

    /// A timestamp strictly between `a` and `b` (their midpoint).
    ///
    /// # Panics
    ///
    /// Panics if `a >= b` (density would be violated).
    pub fn between(a: Timestamp, b: Timestamp) -> Timestamp {
        assert!(a < b, "between requires a < b");
        // (a + b) / 2 = (a.num·b.den + b.num·a.den) / (2·a.den·b.den)
        let num = (a.num as u128) * (b.den as u128) + (b.num as u128) * (a.den as u128);
        let den = 2u128 * (a.den as u128) * (b.den as u128);
        // Reduce in u128 first so the result fits u64 in practice.
        let g = gcd128(num, den);
        let (num, den) = (num / g, den / g);
        assert!(
            num <= u64::MAX as u128 && den <= u64::MAX as u128,
            "timestamp arithmetic overflow (exploration too deep)"
        );
        Timestamp::new(num as u64, den as u64)
    }

    /// A timestamp strictly inside the *left half* of `(a, b)` — used for
    /// "detached" insertions that leave room on both sides.
    pub fn left_quarter(a: Timestamp, b: Timestamp) -> Timestamp {
        Timestamp::between(a, Timestamp::between(a, b))
    }

    /// Is this timestamp zero?
    pub fn is_zero(self) -> bool {
        self.num == 0
    }
}

fn gcd128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl PartialOrd for Timestamp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timestamp {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = (self.num as u128) * (other.den as u128);
        let rhs = (other.num as u128) * (self.den as u128);
        lhs.cmp(&rhs)
    }
}

impl Default for Timestamp {
    fn default() -> Self {
        Timestamp::ZERO
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_normalization() {
        assert!(Timestamp::new(1, 2) < Timestamp::int(1));
        assert!(Timestamp::ZERO < Timestamp::new(1, 100));
        assert_eq!(Timestamp::new(2, 4), Timestamp::new(1, 2));
        assert_eq!(Timestamp::new(6, 3), Timestamp::int(2));
    }

    #[test]
    fn succ_increments() {
        assert_eq!(Timestamp::ZERO.succ(), Timestamp::int(1));
        assert_eq!(Timestamp::new(1, 2).succ(), Timestamp::new(3, 2));
    }

    #[test]
    fn between_is_strictly_inside() {
        let a = Timestamp::int(1);
        let b = Timestamp::int(2);
        let m = Timestamp::between(a, b);
        assert!(a < m && m < b);
        // Density: can always keep splitting.
        let mut lo = a;
        let mut hi = b;
        for _ in 0..20 {
            let mid = Timestamp::between(lo, hi);
            assert!(lo < mid && mid < hi);
            hi = mid;
            lo = Timestamp::between(lo, hi);
            assert!(lo < hi);
        }
    }

    #[test]
    fn left_quarter_leaves_room() {
        let a = Timestamp::int(0);
        let b = Timestamp::int(4);
        let q = Timestamp::left_quarter(a, b);
        assert!(a < q && q < Timestamp::between(a, b));
    }

    #[test]
    #[should_panic(expected = "between requires a < b")]
    fn between_rejects_empty_interval() {
        let _ = Timestamp::between(Timestamp::int(1), Timestamp::int(1));
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp::int(3).to_string(), "3");
        assert_eq!(Timestamp::new(1, 2).to_string(), "1/2");
    }
}
