//! Thread and message views (`View ≜ (Loc → Time) ∪ {⊥}`, Fig. 5).
//!
//! A view records, per location, the timestamp of the latest message the
//! thread has observed. The bottom view `⊥` (strictly below every other
//! view) marks messages written non-atomically: such messages transfer no
//! ordering information when read.

use std::collections::BTreeMap;
use std::fmt;

use seqwm_lang::Loc;

use crate::time::Timestamp;

/// A view: `⊥` or a total map `Loc → Time` (default timestamp `0`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum View {
    /// The bottom view, strictly below every map view.
    Bottom,
    /// A map view (locations not present map to timestamp `0`).
    Map(BTreeMap<Loc, Timestamp>),
}

impl View {
    /// The bottom view `⊥`.
    pub fn bottom() -> View {
        View::Bottom
    }

    /// The zero view (all locations at timestamp `0`).
    pub fn zero() -> View {
        View::Map(BTreeMap::new())
    }

    /// The singleton view `[x ↦ t]`.
    pub fn singleton(x: Loc, t: Timestamp) -> View {
        let mut m = BTreeMap::new();
        if !t.is_zero() {
            m.insert(x, t);
        }
        View::Map(m)
    }

    /// Is this the bottom view?
    pub fn is_bottom(&self) -> bool {
        matches!(self, View::Bottom)
    }

    /// The observed timestamp for `x` (`⊥` observes nothing, i.e. `0`).
    pub fn get(&self, x: Loc) -> Timestamp {
        match self {
            View::Bottom => Timestamp::ZERO,
            View::Map(m) => m.get(&x).copied().unwrap_or(Timestamp::ZERO),
        }
    }

    /// Functional update `V[x ↦ max(V(x), t)]`. `⊥` is promoted to a map.
    #[must_use]
    pub fn bumped(&self, x: Loc, t: Timestamp) -> View {
        let mut v = match self {
            View::Bottom => BTreeMap::new(),
            View::Map(m) => m.clone(),
        };
        let cur = v.get(&x).copied().unwrap_or(Timestamp::ZERO);
        if t > cur {
            v.insert(x, t);
        }
        View::Map(v)
    }

    /// The join `V ⊔ W` (pointwise maximum; `⊥` is the unit).
    #[must_use]
    pub fn join(&self, other: &View) -> View {
        match (self, other) {
            (View::Bottom, w) => w.clone(),
            (v, View::Bottom) => v.clone(),
            (View::Map(a), View::Map(b)) => {
                let mut out = a.clone();
                for (&x, &t) in b {
                    let cur = out.get(&x).copied().unwrap_or(Timestamp::ZERO);
                    if t > cur {
                        out.insert(x, t);
                    }
                }
                View::Map(out)
            }
        }
    }

    /// The order `V ⊑ W` (pointwise; `⊥` below everything).
    pub fn leq(&self, other: &View) -> bool {
        match (self, other) {
            (View::Bottom, _) => true,
            (View::Map(_), View::Bottom) => false,
            (View::Map(a), View::Map(b)) => a
                .iter()
                .all(|(&x, &t)| t <= b.get(&x).copied().unwrap_or(Timestamp::ZERO)),
        }
    }
}

impl Default for View {
    fn default() -> Self {
        View::zero()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            View::Bottom => write!(f, "⊥"),
            View::Map(m) => {
                write!(f, "[")?;
                for (i, (x, t)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}@{t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Loc {
        Loc::new("view_x")
    }
    fn y() -> Loc {
        Loc::new("view_y")
    }

    #[test]
    fn bottom_is_least() {
        let v = View::singleton(x(), Timestamp::int(1));
        assert!(View::bottom().leq(&v));
        assert!(View::bottom().leq(&View::zero()));
        assert!(!v.leq(&View::bottom()));
        assert!(View::zero().leq(&v));
    }

    #[test]
    fn join_is_pointwise_max() {
        let a = View::singleton(x(), Timestamp::int(2));
        let b = View::singleton(y(), Timestamp::int(3));
        let j = a.join(&b);
        assert_eq!(j.get(x()), Timestamp::int(2));
        assert_eq!(j.get(y()), Timestamp::int(3));
        let k = a.join(&View::singleton(x(), Timestamp::int(1)));
        assert_eq!(k.get(x()), Timestamp::int(2));
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let a = View::singleton(x(), Timestamp::int(2));
        assert_eq!(a.join(&View::bottom()), a);
        assert_eq!(View::bottom().join(&a), a);
    }

    #[test]
    fn bumped_only_raises() {
        let v = View::singleton(x(), Timestamp::int(2));
        assert_eq!(v.bumped(x(), Timestamp::int(1)).get(x()), Timestamp::int(2));
        assert_eq!(v.bumped(x(), Timestamp::int(5)).get(x()), Timestamp::int(5));
    }

    #[test]
    fn singleton_zero_normalizes() {
        // [x ↦ 0] is the zero view (canonical representation).
        assert_eq!(View::singleton(x(), Timestamp::ZERO), View::zero());
    }

    #[test]
    fn leq_is_a_partial_order_on_samples() {
        let samples = [
            View::bottom(),
            View::zero(),
            View::singleton(x(), Timestamp::int(1)),
            View::singleton(y(), Timestamp::int(1)),
            View::singleton(x(), Timestamp::int(2)),
        ];
        for a in &samples {
            assert!(a.leq(a));
            for b in &samples {
                for c in &samples {
                    if a.leq(b) && b.leq(c) {
                        assert!(a.leq(c));
                    }
                }
                if a.leq(b) && b.leq(a) {
                    assert_eq!(a, b);
                }
            }
        }
    }
}
