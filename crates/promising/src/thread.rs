//! PS^na thread states and thread-configuration steps (Fig. 5).
//!
//! A thread state `T = ⟨σ, V, P⟩` couples the program state with the
//! thread's view and its outstanding promise set. [`thread_steps`]
//! enumerates all thread-configuration transitions
//! `⟨T, M⟩ → ⟨T′, M′⟩` under a [`PsConfig`] bounding the semantics'
//! unbounded non-determinism (promise values/slots, extra non-atomic
//! messages), and [`certify`] implements the certification requirement of
//! `machine: normal`: the thread, running alone, must be able to fulfill
//! all its outstanding promises.

use std::collections::HashSet;

use seqwm_lang::{ChoiceSet, FenceMode, Loc, ProgState, Program, ReadMode, Step, Value, WriteMode};

use crate::memory::{Message, MsgKey, PromiseSet, PsMemory, Slot};
use crate::tview::TView;
use crate::view::View;

/// Exploration configuration for PS^na.
#[derive(Clone, Debug)]
pub struct PsConfig {
    /// Allow promise steps at all (off = promise-free fragment, which is
    /// the release/acquire baseline machine).
    pub allow_promises: bool,
    /// Maximum number of promise steps a single thread may take.
    pub max_promises_per_thread: u32,
    /// Values promised messages may carry.
    pub promise_values: Vec<Value>,
    /// May non-atomic writes additionally insert a valueless `NAMsg` race
    /// marker? (Required for atomic/non-atomic race detection.)
    pub na_race_markers: bool,
    /// Extra values that multi-message non-atomic writes may insert before
    /// the final message (App. B); empty disables extra valued messages.
    pub na_extra_values: Vec<Value>,
    /// Allow multi-message non-atomic writes at all (App. B). When off, a
    /// non-atomic write adds/fulfills exactly one valued message — the
    /// single-message semantics App. B shows to be too weak.
    pub na_multi_message: bool,
    /// Depth bound on machine exploration.
    pub max_machine_steps: usize,
    /// Step bound for certification search.
    pub max_cert_steps: usize,
    /// Bound on messages per location (caps promise/write explosion).
    pub max_msgs_per_loc: usize,
    /// Bound on visited machine states.
    pub max_states: usize,
    /// Defined values used to resolve `freeze` of `undef`.
    pub choose_domain: Vec<i64>,
}

impl Default for PsConfig {
    fn default() -> Self {
        PsConfig {
            allow_promises: false,
            max_promises_per_thread: 1,
            promise_values: vec![Value::Int(1)],
            na_race_markers: true,
            na_extra_values: Vec::new(),
            na_multi_message: true,
            max_machine_steps: 64,
            max_cert_steps: 32,
            max_msgs_per_loc: 6,
            max_states: 200_000,
            choose_domain: vec![0, 1],
        }
    }
}

impl PsConfig {
    /// A config with promises enabled, seeded with the constants of the
    /// given programs as promise values.
    pub fn with_promises(progs: &[&Program]) -> Self {
        let mut values: Vec<Value> = Vec::new();
        for p in progs {
            for c in p.constants() {
                let v = Value::Int(c);
                if !values.contains(&v) {
                    values.push(v);
                }
            }
        }
        if values.is_empty() {
            values.push(Value::Int(1));
        }
        PsConfig {
            allow_promises: true,
            promise_values: values,
            ..PsConfig::default()
        }
    }
}

/// A PS^na thread state `⟨σ, V, P⟩` (plus bookkeeping: syscall outputs and
/// the number of promise steps taken, for budgeting).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ThreadState {
    /// The program state `σ`.
    pub prog: ProgState,
    /// The thread view (full PS2.1-style three-component view; the
    /// paper's Fig. 5 single view is its `cur` component).
    pub view: TView,
    /// Outstanding promises `P`.
    pub promises: PromiseSet,
    /// Values printed so far (part of the observable behavior).
    pub prints: Vec<Value>,
    /// Number of promise steps taken (budget accounting).
    pub promises_made: u32,
}

impl ThreadState {
    /// The initial thread state for a program.
    pub fn new(prog: &Program) -> Self {
        ThreadState {
            prog: ProgState::new(prog),
            view: TView::zero(),
            promises: PromiseSet::new(),
            prints: Vec::new(),
            promises_made: 0,
        }
    }

    /// Has this thread terminated normally?
    pub fn returned(&self) -> Option<Value> {
        self.prog.returned()
    }

    /// The side condition of `racy-write` and `fail`:
    /// `∀m ∈ P. V(m.loc) < m.t`.
    fn promises_ahead_of_view(&self) -> bool {
        self.promises
            .iter()
            .all(|&(loc, to)| self.view.ts(loc) < to)
    }
}

/// Classification of a thread step (consumed by the machine layer).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// An ordinary step.
    Normal,
    /// The thread reached `⊥` (machine: failure).
    Failure,
    /// A racy non-atomic or atomic read returning `undef` (ordinary step,
    /// recorded for DRF analyses).
    RacyRead(Loc),
    /// A racy write: undefined behaviour (machine: failure), recorded for
    /// DRF analyses.
    RacyWrite(Loc),
    /// A promise step (ordinary, but distinguished for statistics).
    Promise,
}

/// One enumerated thread-configuration step.
#[derive(Clone, Debug)]
pub struct ThreadStep {
    /// Successor thread state.
    pub thread: ThreadState,
    /// Successor memory.
    pub memory: PsMemory,
    /// Successor global SC-fence view.
    pub sc_view: View,
    /// Step classification.
    pub kind: StepKind,
}

fn msg_count_ok(mem: &PsMemory, loc: Loc, cfg: &PsConfig) -> bool {
    mem.messages(loc).len() < cfg.max_msgs_per_loc
}

/// Enumerates all thread-configuration steps `⟨T, M⟩ → ⟨T′, M′⟩` of Fig. 5
/// (read, write, racy accesses, promise, lower, RMW, fences, silent,
/// choose, fail), bounded by `cfg`.
pub fn thread_steps(
    t: &ThreadState,
    mem: &PsMemory,
    sc_view: &View,
    cfg: &PsConfig,
) -> Vec<ThreadStep> {
    let mut out = Vec::new();
    let push =
        |out: &mut Vec<ThreadStep>, thread: ThreadState, memory: PsMemory, kind: StepKind| {
            out.push(ThreadStep {
                thread,
                memory,
                sc_view: sc_view.clone(),
                kind,
            });
        };

    // Promise and lower steps are always available (before the program
    // step), subject to budget.
    if cfg.allow_promises && t.promises_made < cfg.max_promises_per_thread {
        enumerate_promises(t, mem, sc_view, cfg, &mut out);
    }
    enumerate_lowers(t, mem, sc_view, &mut out);

    match t.prog.step() {
        Step::Terminated(_) => {}
        // (fail)
        Step::Fail => {
            if t.promises_ahead_of_view() {
                let mut nt = t.clone();
                nt.promises = PromiseSet::new();
                push(&mut out, nt, mem.clone(), StepKind::Failure);
            }
        }
        // (silent)
        Step::Silent(next) => {
            let mut nt = t.clone();
            nt.prog = next;
            push(&mut out, nt, mem.clone(), StepKind::Normal);
        }
        // (choose)
        Step::Choose(cs) => {
            let choices = match &cs {
                ChoiceSet::Explicit(vs) => vs.clone(),
                ChoiceSet::AnyDefined => cfg.choose_domain.iter().map(|&n| Value::Int(n)).collect(),
            };
            for v in choices {
                let mut nt = t.clone();
                nt.prog = t.prog.resume_choose(v);
                push(&mut out, nt, mem.clone(), StepKind::Normal);
            }
        }
        // (read) and (racy-read)
        Step::Read { loc, mode } => {
            let ts = t.view.ts(loc);
            for m in mem.readable(loc, ts) {
                let mut nt = t.clone();
                nt.prog = t.prog.resume_read(m.payload.expect("readable is valued"));
                nt.view.read(loc, m.to, &m.view, mode == ReadMode::Acq);
                push(&mut out, nt, mem.clone(), StepKind::Normal);
            }
            if mem.is_racy(ts, &t.promises, loc, mode.is_atomic()) {
                let mut nt = t.clone();
                nt.prog = t.prog.resume_read(Value::Undef);
                push(&mut out, nt, mem.clone(), StepKind::RacyRead(loc));
            }
        }
        // (write) and (racy-write)
        Step::Write {
            loc,
            mode,
            val,
            next,
        } => {
            enumerate_writes(t, mem, sc_view, cfg, loc, mode, val, &next, &mut out);
            if mem.is_racy(t.view.ts(loc), &t.promises, loc, mode.is_atomic())
                && t.promises_ahead_of_view()
            {
                let mut nt = t.clone();
                nt.prog = ProgState::bottom();
                nt.promises = PromiseSet::new();
                push(&mut out, nt, mem.clone(), StepKind::RacyWrite(loc));
            }
        }
        // RMW: read a message and write attached to it (atomicity by
        // interval adjacency). A racy RMW is treated as UB (conservative;
        // the paper's fragment omits RMW/race interaction).
        Step::Rmw { loc, mode } => {
            let ts = t.view.ts(loc);
            for m in mem.readable(loc, ts) {
                let res = t.prog.resume_rmw(m.payload.expect("valued"));
                let mut read_view = t.view.clone();
                read_view.read(loc, m.to, &m.view, mode.read_mode() == ReadMode::Acq);
                match res.write {
                    None => {
                        // Failed CAS: behaves as a plain read.
                        let mut nt = t.clone();
                        nt.prog = res.next;
                        nt.view = read_view;
                        let kind = if nt.prog.is_failed() {
                            if !t.promises_ahead_of_view() {
                                continue;
                            }
                            nt.promises = PromiseSet::new();
                            StepKind::Failure
                        } else {
                            StepKind::Normal
                        };
                        push(&mut out, nt, mem.clone(), kind);
                    }
                    Some(wv) => {
                        let Some(slot) = mem.attached_slot(&m.key()) else {
                            continue;
                        };
                        if !msg_count_ok(mem, loc, cfg) {
                            continue;
                        }
                        if mode.write_mode() == WriteMode::Rel && !release_ok(t, mem, loc) {
                            continue;
                        }
                        let mut write_view = read_view.clone();
                        // The read message's view is threaded into the
                        // update's message view (release sequences).
                        let msg_view = write_view.write(
                            loc,
                            slot.to,
                            mode.write_mode() == WriteMode::Rel,
                            false,
                            &m.view,
                        );
                        let mut nm = mem.clone();
                        nm.add(Message {
                            loc,
                            from: slot.from,
                            to: slot.to,
                            payload: Some(wv),
                            view: msg_view,
                        });
                        let mut nt = t.clone();
                        nt.prog = res.next;
                        nt.view = write_view;
                        push(&mut out, nt, nm, StepKind::Normal);
                    }
                }
            }
            if mem.is_racy(ts, &t.promises, loc, true) && t.promises_ahead_of_view() {
                let mut nt = t.clone();
                nt.prog = ProgState::bottom();
                nt.promises = PromiseSet::new();
                push(&mut out, nt, mem.clone(), StepKind::RacyWrite(loc));
            }
        }
        // Fences (full three-view semantics): acquire fences transfer the
        // acquire view into the current view, release fences raise the
        // per-location release views to `cur` (and require outstanding
        // valued promises to be `⊥`-viewed), SC fences additionally join
        // with the global SC view.
        Step::Fence { mode, next } => {
            let rel_ok = !mode.is_release() || release_ok_all(t, mem);
            if rel_ok {
                let mut nt = t.clone();
                nt.prog = next;
                if mode.is_acquire() {
                    nt.view.acquire_fence();
                }
                if mode == FenceMode::Sc {
                    let new_sc = nt.view.sc_fence(sc_view, mem.locs());
                    out.push(ThreadStep {
                        thread: nt,
                        memory: mem.clone(),
                        sc_view: new_sc,
                        kind: StepKind::Normal,
                    });
                } else {
                    if mode.is_release() {
                        nt.view.release_fence(mem.locs());
                    }
                    push(&mut out, nt, mem.clone(), StepKind::Normal);
                }
            }
        }
        Step::Syscall { val, next } => {
            let mut nt = t.clone();
            nt.prog = next;
            nt.prints.push(val);
            push(&mut out, nt, mem.clone(), StepKind::Normal);
        }
    }
    out
}

/// The release-write side condition on location `x`:
/// `∀m ∈ P|Msg_x . m.view = ⊥`.
fn release_ok(t: &ThreadState, mem: &PsMemory, x: Loc) -> bool {
    t.promises.iter().all(|key| {
        key.0 != x
            || mem
                .find(key)
                .is_none_or(|m| m.is_na_marker() || m.view.is_bottom())
    })
}

/// The release-fence side condition (all locations).
fn release_ok_all(t: &ThreadState, mem: &PsMemory) -> bool {
    t.promises.iter().all(|key| {
        mem.find(key)
            .is_none_or(|m| m.is_na_marker() || m.view.is_bottom())
    })
}

#[allow(clippy::too_many_arguments)]
fn enumerate_writes(
    t: &ThreadState,
    mem: &PsMemory,
    sc_view: &View,
    cfg: &PsConfig,
    loc: Loc,
    mode: WriteMode,
    val: Value,
    next: &ProgState,
    out: &mut Vec<ThreadStep>,
) {
    let vts = t.view.ts(loc);
    let mut emit = |thread: ThreadState, memory: PsMemory| {
        out.push(ThreadStep {
            thread,
            memory,
            sc_view: sc_view.clone(),
            kind: StepKind::Normal,
        });
    };

    // --- memory: new — fresh message at a canonical slot. ---
    if msg_count_ok(mem, loc, cfg) {
        for slot in mem.insert_slots(loc) {
            if slot.to <= vts {
                continue; // write requires V(x) < t
            }
            match mode {
                WriteMode::Na => {
                    // Plain variant: just the final message (view ⊥).
                    let mut nm = mem.clone();
                    nm.add(Message {
                        loc,
                        from: slot.from,
                        to: slot.to,
                        payload: Some(val),
                        view: View::bottom(),
                    });
                    let mut nt = t.clone();
                    nt.prog = next.clone();
                    let _ = nt.view.write(loc, slot.to, false, true, &View::bottom());
                    emit(nt, nm);
                    // Marked variant: also insert a valueless NAMsg race
                    // marker before the final message (memory: na-write
                    // with n = 1).
                    if cfg.na_race_markers {
                        if let Some((marker, final_msg)) = split_slot(loc, slot, val) {
                            let mut nm = mem.clone();
                            nm.add(marker);
                            let final_to = final_msg.to;
                            nm.add(final_msg);
                            let mut nt = t.clone();
                            nt.prog = next.clone();
                            let _ = nt.view.write(loc, final_to, false, true, &View::bottom());
                            emit(nt, nm);
                        }
                    }
                    // A fresh final message can fulfill ⊥-view helper
                    // promises on the way (memory: na-write with a fulfill
                    // among the helper steps — App. B).
                    if cfg.na_multi_message {
                        for helper in t.promises.iter().copied().filter(|k| k.0 == loc) {
                            let Some(h) = mem.find(&helper) else { continue };
                            if h.is_na_marker() || !h.view.is_bottom() {
                                continue;
                            }
                            if h.to >= slot.to || vts >= h.to {
                                continue;
                            }
                            let mut nm = mem.clone();
                            nm.add(Message {
                                loc,
                                from: slot.from,
                                to: slot.to,
                                payload: Some(val),
                                view: View::bottom(),
                            });
                            let mut nt = t.clone();
                            nt.prog = next.clone();
                            let _ = nt.view.write(loc, slot.to, false, true, &View::bottom());
                            nt.promises.remove(&helper);
                            emit(nt, nm);
                        }
                    }
                    // Extra-value variants (App. B): an additional *valued*
                    // ⊥-view message before the final one.
                    for &extra in if cfg.na_multi_message {
                        cfg.na_extra_values.as_slice()
                    } else {
                        &[]
                    } {
                        if let Some((mut extra_msg, final_msg)) = split_slot(loc, slot, val) {
                            extra_msg.payload = Some(extra);
                            let mut nm = mem.clone();
                            nm.add(extra_msg);
                            let final_to = final_msg.to;
                            nm.add(final_msg);
                            let mut nt = t.clone();
                            nt.prog = next.clone();
                            let _ = nt.view.write(loc, final_to, false, true, &View::bottom());
                            emit(nt, nm);
                        }
                    }
                }
                WriteMode::Rlx => {
                    let mut nt = t.clone();
                    nt.prog = next.clone();
                    let msg_view = nt.view.write(loc, slot.to, false, false, &View::bottom());
                    let mut nm = mem.clone();
                    nm.add(Message {
                        loc,
                        from: slot.from,
                        to: slot.to,
                        payload: Some(val),
                        view: msg_view,
                    });
                    emit(nt, nm);
                }
                WriteMode::Rel => {
                    if !release_ok(t, mem, loc) {
                        continue;
                    }
                    let mut nt = t.clone();
                    nt.prog = next.clone();
                    let msg_view = nt.view.write(loc, slot.to, true, false, &View::bottom());
                    let mut nm = mem.clone();
                    nm.add(Message {
                        loc,
                        from: slot.from,
                        to: slot.to,
                        payload: Some(val),
                        view: msg_view,
                    });
                    emit(nt, nm);
                }
            }
        }
    }

    // --- memory: fulfill — the written message is an outstanding promise. ---
    let own: Vec<MsgKey> = t.promises.iter().copied().filter(|k| k.0 == loc).collect();
    for key in own {
        let Some(m) = mem.find(&key) else { continue };
        if m.is_na_marker() || m.payload != Some(val) || vts >= m.to {
            continue;
        }
        let view_ok = match mode {
            WriteMode::Na => m.view.is_bottom(),
            WriteMode::Rlx => {
                // The fulfilled message's view must equal what the write
                // would produce.
                let mut probe = t.view.clone();
                m.view == probe.write(loc, m.to, false, false, &View::bottom())
            }
            // Release writes cannot fulfill (the side condition forces all
            // promises on x to be ⊥-viewed while Vm = V′ is not ⊥).
            WriteMode::Rel => false,
        };
        if !view_ok {
            continue;
        }
        let mut nt = t.clone();
        nt.prog = next.clone();
        let _ = nt
            .view
            .write(loc, m.to, false, mode == WriteMode::Na, &View::bottom());
        nt.promises.remove(&key);
        out.push(ThreadStep {
            thread: nt,
            memory: mem.clone(),
            sc_view: sc_view.clone(),
            kind: StepKind::Normal,
        });
        // Multi-message na-write: fulfill another ⊥-view promise on the way
        // (a helper message of memory: na-write) before fulfilling `key`…
        if mode == WriteMode::Na && cfg.na_multi_message {
            for helper in t
                .promises
                .iter()
                .copied()
                .filter(|k| k.0 == loc && *k != key)
            {
                let Some(h) = mem.find(&helper) else { continue };
                if h.to >= m.to || vts >= h.to || !(h.view.is_bottom()) {
                    continue;
                }
                let mut nt = t.clone();
                nt.prog = next.clone();
                let _ = nt.view.write(loc, m.to, false, true, &View::bottom());
                nt.promises.remove(&key);
                nt.promises.remove(&helper);
                out.push(ThreadStep {
                    thread: nt,
                    memory: mem.clone(),
                    sc_view: sc_view.clone(),
                    kind: StepKind::Normal,
                });
            }
        }
    }
}

/// Splits a slot into a marker/extra interval followed by the final
/// interval (both inside the original slot).
fn split_slot(loc: Loc, slot: Slot, final_val: Value) -> Option<(Message, Message)> {
    use crate::time::Timestamp;
    if slot.from >= slot.to {
        return None;
    }
    let mid = Timestamp::between(slot.from, slot.to);
    let marker = Message {
        loc,
        from: slot.from,
        to: mid,
        payload: None,
        view: View::bottom(),
    };
    let final_msg = Message {
        loc,
        from: mid,
        to: slot.to,
        payload: Some(final_val),
        view: View::bottom(),
    };
    Some((marker, final_msg))
}

/// Enumerates promise steps: a fresh message (valued, with `⊥` or
/// singleton view, or a valueless marker) at a canonical slot on any
/// location the thread may later write.
fn enumerate_promises(
    t: &ThreadState,
    mem: &PsMemory,
    sc_view: &View,
    cfg: &PsConfig,
    out: &mut Vec<ThreadStep>,
) {
    // Prune: a promise on a location the remaining program never writes
    // can never be certified, so enumerating it only wastes exploration.
    let writable = t.prog.may_write_locs();
    for loc in mem.locs().collect::<Vec<_>>() {
        if !writable.contains(&loc) {
            continue;
        }
        if mem.messages(loc).len() >= cfg.max_msgs_per_loc {
            continue;
        }
        for slot in mem.insert_slots(loc) {
            if slot.to <= t.view.ts(loc) {
                continue;
            }
            // Note: valueless NAMsg promises are not enumerated — this
            // implementation never fulfills a marker, so such a promise can
            // never be certified (a documented exploration bound).
            let mut variants: Vec<Message> = Vec::new();
            for &v in &cfg.promise_values {
                variants.push(Message {
                    loc,
                    from: slot.from,
                    to: slot.to,
                    payload: Some(v),
                    view: View::bottom(),
                });
                variants.push(Message {
                    loc,
                    from: slot.from,
                    to: slot.to,
                    payload: Some(v),
                    view: View::singleton(loc, slot.to),
                });
            }
            for msg in variants {
                let mut nm = mem.clone();
                let key = msg.key();
                nm.add(msg);
                let mut nt = t.clone();
                nt.promises.insert(key);
                nt.promises_made += 1;
                out.push(ThreadStep {
                    thread: nt,
                    memory: nm,
                    sc_view: sc_view.clone(),
                    kind: StepKind::Promise,
                });
            }
        }
    }
}

/// Enumerates lower steps on outstanding promises: raise the value to
/// `undef` and/or lower the view to `⊥`.
fn enumerate_lowers(t: &ThreadState, mem: &PsMemory, sc_view: &View, out: &mut Vec<ThreadStep>) {
    for key in t.promises.iter() {
        let Some(m) = mem.find(key) else { continue };
        let Some(v) = m.payload else { continue };
        let mut candidates: Vec<(Value, View)> = Vec::new();
        if v != Value::Undef {
            candidates.push((Value::Undef, m.view.clone()));
        }
        if !m.view.is_bottom() {
            candidates.push((v, View::bottom()));
            if v != Value::Undef {
                candidates.push((Value::Undef, View::bottom()));
            }
        }
        for (nv, nview) in candidates {
            let mut nm = mem.clone();
            if nm.lower(key, nv, nview) {
                out.push(ThreadStep {
                    thread: t.clone(),
                    memory: nm,
                    sc_view: sc_view.clone(),
                    kind: StepKind::Normal,
                });
            }
        }
    }
}

/// Certification (`machine: normal`): running alone, the thread must be
/// able to reach an empty promise set (without making new promises).
///
/// Bounded DFS; a thread with no promises is trivially certified.
pub fn certify(t: &ThreadState, mem: &PsMemory, sc_view: &View, cfg: &PsConfig) -> bool {
    if t.promises.is_empty() {
        return true;
    }
    let cert_cfg = PsConfig {
        allow_promises: false,
        ..cfg.clone()
    };
    let mut visited: HashSet<(ThreadState, PsMemory)> = HashSet::new();
    let mut stack = vec![(t.clone(), mem.clone(), sc_view.clone(), 0usize)];
    while let Some((ct, cm, csc, depth)) = stack.pop() {
        if ct.promises.is_empty() {
            return true;
        }
        if depth >= cfg.max_cert_steps {
            continue;
        }
        if !visited.insert((ct.clone(), cm.clone())) {
            continue;
        }
        for step in thread_steps(&ct, &cm, &csc, &cert_cfg) {
            if matches!(step.kind, StepKind::Failure | StepKind::RacyWrite(_)) {
                continue; // failure does not fulfill promises
            }
            stack.push((step.thread, step.memory, step.sc_view, depth + 1));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn setup(src: &str, locs: &[&str]) -> (ThreadState, PsMemory, View, PsConfig) {
        let p = parse_program(src).unwrap();
        let mut t = ThreadState::new(&p);
        // Skip administrative silent steps (sequence decomposition) so the
        // thread is parked at its first memory access.
        while let Step::Silent(next) = t.prog.step() {
            t.prog = next;
        }
        let mem = PsMemory::init(locs.iter().map(|n| Loc::new(n)));
        (t, mem, View::zero(), PsConfig::default())
    }

    fn skip_silent(mut t: ThreadState) -> ThreadState {
        while let Step::Silent(next) = t.prog.step() {
            t.prog = next;
        }
        t
    }

    fn run_to_quiescence(
        mut t: ThreadState,
        mut mem: PsMemory,
        mut sc: View,
        cfg: &PsConfig,
        pick: impl Fn(&[ThreadStep]) -> usize,
    ) -> (ThreadState, PsMemory, View) {
        loop {
            let steps = thread_steps(&t, &mem, &sc, cfg);
            if steps.is_empty() {
                return (t, mem, sc);
            }
            let i = pick(&steps);
            let s = steps.into_iter().nth(i).unwrap();
            t = s.thread;
            mem = s.memory;
            sc = s.sc_view;
        }
    }

    #[test]
    fn straight_line_write_then_read() {
        let (t, mem, sc, cfg) = setup(
            "store[rlx](tsx, 1); a := load[rlx](tsx); return a;",
            &["tsx"],
        );
        // Always pick the first step: writes append at the attached tail
        // slot first, reads can then pick any message — first readable is
        // init, so pick the *last* read branch (the new message).
        let (t, _, _) = run_to_quiescence(t, mem, sc, &cfg, |steps| steps.len() - 1);
        assert_eq!(t.returned(), Some(Value::Int(1)));
    }

    #[test]
    fn read_can_also_read_stale_init() {
        let (t, mem, sc, cfg) = setup("a := load[rlx](trx); return a;", &["trx"]);
        let mut mem2 = mem.clone();
        let slot = mem2.insert_slots(Loc::new("trx"))[0];
        mem2.add(Message {
            loc: Loc::new("trx"),
            from: slot.from,
            to: slot.to,
            payload: Some(Value::Int(5)),
            view: View::singleton(Loc::new("trx"), slot.to),
        });
        let steps = thread_steps(&t, &mem2, &sc, &cfg);
        // Two readable messages: init (0) and 5.
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn acquire_read_joins_message_view() {
        let x = Loc::new("tax");
        let y = Loc::new("tay");
        let (t, mut mem, sc, cfg) = setup("a := load[acq](tax);", &["tax", "tay"]);
        let slot = mem.insert_slots(x)[0];
        let msg_view = View::singleton(y, crate::time::Timestamp::int(9));
        mem.add(Message {
            loc: x,
            from: slot.from,
            to: slot.to,
            payload: Some(Value::Int(1)),
            view: msg_view.clone(),
        });
        let steps = thread_steps(&t, &mem, &sc, &cfg);
        let acq_branch = steps
            .iter()
            .find(|s| s.thread.view.ts(y) == crate::time::Timestamp::int(9))
            .expect("acquire read joins message view");
        assert_eq!(acq_branch.thread.view.ts(x), slot.to);
    }

    #[test]
    fn na_write_has_plain_and_marked_variants() {
        let (t, mem, sc, cfg) = setup("store[na](tnx, 2);", &["tnx"]);
        let steps = thread_steps(&t, &mem, &sc, &cfg);
        let x = Loc::new("tnx");
        // Each slot yields a plain and (with markers on) a marked variant.
        let plain = steps
            .iter()
            .filter(|s| s.memory.messages(x).iter().all(|m| !m.is_na_marker()))
            .count();
        let marked = steps
            .iter()
            .filter(|s| s.memory.messages(x).iter().any(|m| m.is_na_marker()))
            .count();
        assert!(plain >= 1);
        assert!(marked >= 1);
        // All written messages have bottom views.
        for s in &steps {
            for m in s.memory.messages(x).iter().skip(1) {
                assert!(m.view.is_bottom());
            }
        }
    }

    #[test]
    fn racy_read_branch_exists() {
        let x = Loc::new("trr");
        let (t, mut mem, sc, cfg) = setup("a := load[na](trr); return a;", &["trr"]);
        let slot = mem.insert_slots(x)[0];
        mem.add(Message {
            loc: x,
            from: slot.from,
            to: slot.to,
            payload: Some(Value::Int(1)),
            view: View::singleton(x, slot.to),
        });
        let steps = thread_steps(&t, &mem, &sc, &cfg);
        assert!(steps
            .iter()
            .any(|s| matches!(s.kind, StepKind::RacyRead(l) if l == x)));
        // The racy branch leaves the view unchanged and reads undef.
        let racy = steps
            .iter()
            .find(|s| matches!(s.kind, StepKind::RacyRead(_)))
            .unwrap();
        assert_eq!(racy.thread.view, t.view);
    }

    #[test]
    fn racy_write_is_failure() {
        let x = Loc::new("trw");
        let (t, mut mem, sc, cfg) = setup("store[na](trw, 1);", &["trw"]);
        let slot = mem.insert_slots(x)[0];
        mem.add(Message {
            loc: x,
            from: slot.from,
            to: slot.to,
            payload: Some(Value::Int(9)),
            view: View::singleton(x, slot.to),
        });
        let steps = thread_steps(&t, &mem, &sc, &cfg);
        assert!(steps
            .iter()
            .any(|s| matches!(s.kind, StepKind::RacyWrite(_))));
    }

    #[test]
    fn release_write_carries_thread_view() {
        let x = Loc::new("tvx");
        let y = Loc::new("tvy");
        let (t, mem, sc, cfg) = setup("store[na](tvy, 1); store[rel](tvx, 1);", &["tvx", "tvy"]);
        // Run the na write (pick the plain tail variant = first step).
        let steps = thread_steps(&t, &mem, &sc, &cfg);
        let s1 = steps.into_iter().next().unwrap();
        let t1 = skip_silent(s1.thread);
        let steps = thread_steps(&t1, &s1.memory, &s1.sc_view, &cfg);
        // Find a release step; its message view must cover y.
        let rel = steps
            .iter()
            .find(|s| {
                s.memory
                    .messages(x)
                    .iter()
                    .any(|m| !m.view.is_bottom() && m.view.get(y) > crate::time::Timestamp::ZERO)
            })
            .expect("release write publishes thread view");
        assert!(rel.kind == StepKind::Normal);
    }

    #[test]
    fn promise_and_certify() {
        let p = parse_program("store[rlx](tpx, 1);").unwrap();
        let t = ThreadState::new(&p);
        let mem = PsMemory::init([Loc::new("tpx")]);
        let cfg = PsConfig {
            allow_promises: true,
            promise_values: vec![Value::Int(1)],
            ..PsConfig::default()
        };
        let steps = thread_steps(&t, &mem, &View::zero(), &cfg);
        let promise = steps
            .iter()
            .find(|s| {
                s.kind == StepKind::Promise
                    && s.memory
                        .messages(Loc::new("tpx"))
                        .iter()
                        .any(|m| m.payload == Some(Value::Int(1)) && !m.view.is_bottom())
            })
            .expect("promise step enumerated");
        // The thread can certify: it will write x=1 rlx.
        assert!(certify(
            &promise.thread,
            &promise.memory,
            &View::zero(),
            &cfg
        ));
    }

    #[test]
    fn uncertifiable_promise_rejected() {
        // Thread never writes x = 7, so promising it cannot be certified.
        let p = parse_program("store[rlx](tux, 1);").unwrap();
        let t = ThreadState::new(&p);
        let mem = PsMemory::init([Loc::new("tux")]);
        let cfg = PsConfig {
            allow_promises: true,
            promise_values: vec![Value::Int(7)],
            ..PsConfig::default()
        };
        let steps = thread_steps(&t, &mem, &View::zero(), &cfg);
        let bad = steps
            .iter()
            .find(|s| {
                s.kind == StepKind::Promise
                    && s.memory
                        .messages(Loc::new("tux"))
                        .iter()
                        .any(|m| m.payload == Some(Value::Int(7)) && !m.view.is_bottom())
            })
            .expect("promise enumerated");
        assert!(!certify(&bad.thread, &bad.memory, &View::zero(), &cfg));
    }

    #[test]
    fn fulfill_requires_matching_view_flavor() {
        // Promise with rlx view gets fulfilled by a rlx write of the same value.
        let p = parse_program("store[rlx](tfx, 3);").unwrap();
        let t = ThreadState::new(&p);
        let x = Loc::new("tfx");
        let mut mem = PsMemory::init([x]);
        let slot = mem.insert_slots(x)[0];
        mem.add(Message {
            loc: x,
            from: slot.from,
            to: slot.to,
            payload: Some(Value::Int(3)),
            view: View::singleton(x, slot.to),
        });
        let mut tt = t.clone();
        tt.promises.insert((x, slot.to));
        let cfg = PsConfig::default();
        let steps = thread_steps(&tt, &mem, &View::zero(), &cfg);
        let fulfilled = steps
            .iter()
            .find(|s| s.thread.promises.is_empty() && s.kind == StepKind::Normal)
            .expect("fulfillment step");
        assert_eq!(fulfilled.thread.view.ts(x), slot.to);
    }

    #[test]
    fn sc_fence_joins_global_view() {
        let x = Loc::new("tscx");
        let (t, mem, _, cfg) = setup("fence[sc];", &["tscx"]);
        let sc = View::singleton(x, crate::time::Timestamp::int(4));
        let steps = thread_steps(&t, &mem, &sc, &cfg);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].thread.view.ts(x), crate::time::Timestamp::int(4));
        assert_eq!(steps[0].sc_view.get(x), crate::time::Timestamp::int(4));
    }
}
