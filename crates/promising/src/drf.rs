//! Data-race-freedom (DRF) guarantees (§5 "Results", following [8]).
//!
//! PS^na ports the DRF guarantees of PS2.1: defensive programmers who avoid
//! certain races may reason in a stronger, simpler model. This module
//! provides executable checks:
//!
//! * [`race_report`] — is a parallel program racy at all (any racy read or
//!   write reachable)?
//! * [`drf_check`] — for race-free programs, compares the behavior sets of
//!   full PS^na, the promise-free fragment (the release/acquire baseline),
//!   and SC. The DRF guarantee predicts that for programs that are
//!   race-free *and* whose atomics are acquire/release-synchronized, the
//!   sets coincide (up to the exploration bounds).

use std::collections::BTreeSet;

use seqwm_lang::Program;

use crate::machine::{explore, PsBehavior};
use crate::sc::{explore_sc, ScConfig};
use crate::thread::PsConfig;

/// The racy-ness verdict for a parallel program.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Any racy access reachable (read or write)?
    pub racy: bool,
    /// A racy *write* (UB) reachable?
    pub ub_reachable: bool,
    /// States explored.
    pub states: usize,
    /// Whether bounds were hit.
    pub truncated: bool,
}

/// Explores the program under full PS^na and reports reachable races.
pub fn race_report(progs: &[Program], cfg: &PsConfig) -> RaceReport {
    let e = explore(progs, cfg);
    RaceReport {
        racy: e.racy,
        ub_reachable: e.behaviors.contains(&PsBehavior::Ub),
        states: e.states,
        truncated: e.truncated,
    }
}

/// A three-way model comparison for the DRF guarantees.
#[derive(Clone, Debug)]
pub struct DrfReport {
    /// Racy under PS^na?
    pub racy: bool,
    /// Behaviors under full PS^na (with promises).
    pub ps_behaviors: BTreeSet<PsBehavior>,
    /// Behaviors under the promise-free fragment (RA baseline).
    pub ra_behaviors: BTreeSet<PsBehavior>,
    /// Behaviors under SC.
    pub sc_behaviors: BTreeSet<PsBehavior>,
    /// `ps == ra` (the promise-free DRF guarantee held on this program)?
    pub ps_equals_ra: bool,
    /// `ra == sc` (the DRF-SC guarantee held on this program)?
    pub ra_equals_sc: bool,
}

/// Runs the three machines and compares behavior sets.
///
/// `promises` enables promise steps for the full-PS^na run (pass `false`
/// for programs where promises cannot matter, to save exploration time).
pub fn drf_check(progs: &[Program], promises: bool) -> DrfReport {
    let prog_refs: Vec<&Program> = progs.iter().collect();
    let ps_cfg = if promises {
        PsConfig::with_promises(&prog_refs)
    } else {
        PsConfig::default()
    };
    let ra_cfg = PsConfig {
        allow_promises: false,
        ..PsConfig::default()
    };
    let ps = explore(progs, &ps_cfg);
    let ra = explore(progs, &ra_cfg);
    let sc = explore_sc(progs, &ScConfig::default());
    DrfReport {
        racy: ps.racy,
        ps_equals_ra: ps.behaviors == ra.behaviors,
        ra_equals_sc: ra.behaviors == sc.behaviors,
        ps_behaviors: ps.behaviors,
        ra_behaviors: ra.behaviors,
        sc_behaviors: sc.behaviors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    #[test]
    fn mp_is_race_free_and_drf() {
        let ps = progs(&[
            "store[na](drf_d, 1); store[rel](drf_f, 1); return 0;",
            "a := load[acq](drf_f); if (a == 1) { b := load[na](drf_d); } return a;",
        ]);
        let report = drf_check(&ps, true);
        assert!(!report.racy, "MP is race-free");
        assert!(report.ps_equals_ra, "promises do not add behaviors to MP");
    }

    #[test]
    fn ww_race_is_detected() {
        let ps = progs(&[
            "store[na](drfw_x, 1); return 0;",
            "store[na](drfw_x, 2); return 0;",
        ]);
        let r = race_report(&ps, &PsConfig::default());
        assert!(r.racy);
        assert!(r.ub_reachable);
    }

    #[test]
    fn race_free_single_thread() {
        let ps = progs(&["store[na](drfs_x, 1); a := load[na](drfs_x); return a;"]);
        let r = race_report(&ps, &PsConfig::default());
        assert!(!r.racy);
        assert!(!r.ub_reachable);
    }

    #[test]
    fn sb_rlx_is_race_free_but_not_sc() {
        // SB with rlx atomics: no *races* (all accesses atomic), but the
        // behavior set is strictly weaker than SC — DRF-SC needs more than
        // race freedom w.r.t. rlx atomics.
        let ps = progs(&[
            "store[rlx](drsb_x, 1); a := load[rlx](drsb_y); return a;",
            "store[rlx](drsb_y, 1); b := load[rlx](drsb_x); return b;",
        ]);
        let report = drf_check(&ps, false);
        assert!(!report.racy);
        assert!(!report.ra_equals_sc, "rlx SB is weaker than SC");
        assert!(
            report.sc_behaviors.is_subset(&report.ra_behaviors),
            "SC behaviors are contained in RA behaviors"
        );
    }

    #[test]
    fn sc_subset_of_ra_subset_of_ps() {
        // On an arbitrary (race-free) atomic program, SC ⊆ RA ⊆ PS^na.
        let ps = progs(&[
            "store[rel](incl_x, 1); a := load[acq](incl_y); return a;",
            "store[rel](incl_y, 1); b := load[acq](incl_x); return b;",
        ]);
        let report = drf_check(&ps, true);
        assert!(report.sc_behaviors.is_subset(&report.ra_behaviors));
        assert!(report.ra_behaviors.is_subset(&report.ps_behaviors));
    }
}
