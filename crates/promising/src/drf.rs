//! Data-race-freedom (DRF) guarantees (§5 "Results", following [8]).
//!
//! PS^na ports the DRF guarantees of PS2.1: defensive programmers who avoid
//! certain races may reason in a stronger, simpler model. This module
//! provides executable checks:
//!
//! * [`race_report`] — is a parallel program racy at all (any racy read or
//!   write reachable)?
//! * [`drf_check`] — for race-free programs, compares the behavior sets of
//!   full PS^na, the promise-free fragment (the release/acquire baseline),
//!   and SC. The DRF guarantee predicts that for programs that are
//!   race-free *and* whose atomics are acquire/release-synchronized, the
//!   sets coincide (up to the exploration bounds).
//!
//! Every verdict here is **fuel-aware**: an enumeration cut short by a
//! state/step bound surfaces as [`DrfEquality::Inconclusive`] (or
//! [`RaceVerdict::Inconclusive`]), never as a coincidence or divergence
//! verdict computed from incomplete behavior sets — the same discipline
//! `RefineError::Truncated` enforces for the SEQ checker. A *found* race
//! is definitive even under truncation (the witness is real); only the
//! absence of races and the equality of behavior sets demand exhaustion.

use std::collections::BTreeSet;
use std::fmt;

use seqwm_lang::Program;

use crate::machine::{explore, PsBehavior};
use crate::sc::{explore_sc, ScConfig};
use crate::thread::PsConfig;

/// The three-valued race verdict of a bounded enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaceVerdict {
    /// The exhaustive enumeration reached no racy access.
    RaceFree,
    /// A racy access is reachable (definitive even if bounds were also
    /// hit: the witness execution is real).
    Racy,
    /// No race found, but the enumeration was truncated — a race may
    /// hide beyond the bound.
    Inconclusive,
}

impl fmt::Display for RaceVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceVerdict::RaceFree => write!(f, "race-free"),
            RaceVerdict::Racy => write!(f, "racy"),
            RaceVerdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// The racy-ness verdict for a parallel program.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Any racy access reachable (read or write)?
    pub racy: bool,
    /// A racy *write* (UB) reachable?
    pub ub_reachable: bool,
    /// States explored (the fuel this check spent).
    pub states: usize,
    /// Whether bounds were hit.
    pub truncated: bool,
}

impl RaceReport {
    /// The fuel-aware verdict: `racy` wins over truncation (a found
    /// race is a real witness), but "no race found" under truncation is
    /// [`RaceVerdict::Inconclusive`], not [`RaceVerdict::RaceFree`].
    pub fn verdict(&self) -> RaceVerdict {
        if self.racy {
            RaceVerdict::Racy
        } else if self.truncated {
            RaceVerdict::Inconclusive
        } else {
            RaceVerdict::RaceFree
        }
    }
}

/// Explores the program under full PS^na and reports reachable races.
pub fn race_report(progs: &[Program], cfg: &PsConfig) -> RaceReport {
    let e = explore(progs, cfg);
    RaceReport {
        racy: e.racy,
        ub_reachable: e.behaviors.contains(&PsBehavior::Ub),
        states: e.states,
        truncated: e.truncated,
    }
}

/// A fuel-aware equality verdict between two behavior enumerations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DrfEquality {
    /// Both enumerations exhausted their state spaces and the sets are
    /// equal.
    Equal,
    /// Both enumerations exhausted their state spaces and the sets
    /// differ.
    Diverges,
    /// At least one enumeration was truncated: the sets are not
    /// comparable (missing elements could fabricate either verdict).
    Inconclusive,
}

impl DrfEquality {
    fn of(
        a: &BTreeSet<PsBehavior>,
        a_truncated: bool,
        b: &BTreeSet<PsBehavior>,
        b_truncated: bool,
    ) -> DrfEquality {
        if a_truncated || b_truncated {
            DrfEquality::Inconclusive
        } else if a == b {
            DrfEquality::Equal
        } else {
            DrfEquality::Diverges
        }
    }

    /// Did the guarantee definitively hold?
    pub fn holds(self) -> bool {
        self == DrfEquality::Equal
    }
}

impl fmt::Display for DrfEquality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrfEquality::Equal => write!(f, "equal"),
            DrfEquality::Diverges => write!(f, "diverges"),
            DrfEquality::Inconclusive => write!(f, "INCONCLUSIVE (truncated)"),
        }
    }
}

/// Exploration budgets for [`drf_check_with`]: caps on the three
/// enumerations so a pathological program degrades to
/// [`DrfEquality::Inconclusive`] instead of running unbounded.
#[derive(Clone, Debug, Default)]
pub struct DrfBudget {
    /// Bounds for the two PS^na-family runs (`max_states`,
    /// `max_machine_steps`, `max_msgs_per_loc` are the effective caps).
    pub ps: PsConfig,
    /// Bounds for the SC run.
    pub sc: ScConfig,
}

/// A three-way model comparison for the DRF guarantees.
#[derive(Clone, Debug)]
pub struct DrfReport {
    /// Racy under PS^na?
    pub racy: bool,
    /// Was *any* of the three enumerations truncated?
    pub truncated: bool,
    /// Behaviors under full PS^na (with promises).
    pub ps_behaviors: BTreeSet<PsBehavior>,
    /// Behaviors under the promise-free fragment (RA baseline).
    pub ra_behaviors: BTreeSet<PsBehavior>,
    /// Behaviors under SC.
    pub sc_behaviors: BTreeSet<PsBehavior>,
    /// `ps == ra` (the promise-free DRF guarantee), fuel-aware.
    pub ps_vs_ra: DrfEquality,
    /// `ra == sc` (the DRF-SC guarantee), fuel-aware.
    pub ra_vs_sc: DrfEquality,
    /// Total states across the three runs (fuel spent).
    pub states: usize,
}

impl DrfReport {
    /// Did the promise-free guarantee definitively hold?
    pub fn ps_equals_ra(&self) -> bool {
        self.ps_vs_ra.holds()
    }

    /// Did the DRF-SC guarantee definitively hold?
    pub fn ra_equals_sc(&self) -> bool {
        self.ra_vs_sc.holds()
    }
}

/// Runs the three machines and compares behavior sets under the
/// default budget.
///
/// `promises` enables promise steps for the full-PS^na run (pass `false`
/// for programs where promises cannot matter, to save exploration time).
pub fn drf_check(progs: &[Program], promises: bool) -> DrfReport {
    drf_check_with(progs, promises, &DrfBudget::default())
}

/// [`drf_check`] under explicit exploration budgets. Truncation in any
/// run makes the affected equality verdicts
/// [`DrfEquality::Inconclusive`] — never a coincidence or divergence
/// computed from an incomplete set.
pub fn drf_check_with(progs: &[Program], promises: bool, budget: &DrfBudget) -> DrfReport {
    let prog_refs: Vec<&Program> = progs.iter().collect();
    let ps_cfg = if promises {
        PsConfig {
            allow_promises: true,
            promise_values: PsConfig::with_promises(&prog_refs).promise_values,
            ..budget.ps.clone()
        }
    } else {
        PsConfig {
            allow_promises: false,
            ..budget.ps.clone()
        }
    };
    let ra_cfg = PsConfig {
        allow_promises: false,
        ..budget.ps.clone()
    };
    let ps = explore(progs, &ps_cfg);
    let ra = explore(progs, &ra_cfg);
    let sc = explore_sc(progs, &budget.sc);
    DrfReport {
        racy: ps.racy,
        truncated: ps.truncated || ra.truncated || sc.truncated,
        ps_vs_ra: DrfEquality::of(&ps.behaviors, ps.truncated, &ra.behaviors, ra.truncated),
        ra_vs_sc: DrfEquality::of(&ra.behaviors, ra.truncated, &sc.behaviors, sc.truncated),
        states: ps.states + ra.states + sc.states,
        ps_behaviors: ps.behaviors,
        ra_behaviors: ra.behaviors,
        sc_behaviors: sc.behaviors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn progs(srcs: &[&str]) -> Vec<Program> {
        srcs.iter().map(|s| parse_program(s).unwrap()).collect()
    }

    #[test]
    fn mp_is_race_free_and_drf() {
        let ps = progs(&[
            "store[na](drf_d, 1); store[rel](drf_f, 1); return 0;",
            "a := load[acq](drf_f); if (a == 1) { b := load[na](drf_d); } return a;",
        ]);
        let report = drf_check(&ps, true);
        assert!(!report.racy, "MP is race-free");
        assert!(!report.truncated);
        assert_eq!(
            report.ps_vs_ra,
            DrfEquality::Equal,
            "promises do not add behaviors to MP"
        );
        assert!(report.ps_equals_ra());
    }

    #[test]
    fn ww_race_is_detected() {
        let ps = progs(&[
            "store[na](drfw_x, 1); return 0;",
            "store[na](drfw_x, 2); return 0;",
        ]);
        let r = race_report(&ps, &PsConfig::default());
        assert!(r.racy);
        assert!(r.ub_reachable);
        assert_eq!(r.verdict(), RaceVerdict::Racy);
    }

    #[test]
    fn race_free_single_thread() {
        let ps = progs(&["store[na](drfs_x, 1); a := load[na](drfs_x); return a;"]);
        let r = race_report(&ps, &PsConfig::default());
        assert!(!r.racy);
        assert!(!r.ub_reachable);
        assert_eq!(r.verdict(), RaceVerdict::RaceFree);
    }

    #[test]
    fn sb_rlx_is_race_free_but_not_sc() {
        // SB with rlx atomics: no *races* (all accesses atomic), but the
        // behavior set is strictly weaker than SC — DRF-SC needs more than
        // race freedom w.r.t. rlx atomics.
        let ps = progs(&[
            "store[rlx](drsb_x, 1); a := load[rlx](drsb_y); return a;",
            "store[rlx](drsb_y, 1); b := load[rlx](drsb_x); return b;",
        ]);
        let report = drf_check(&ps, false);
        assert!(!report.racy);
        assert_eq!(
            report.ra_vs_sc,
            DrfEquality::Diverges,
            "rlx SB is weaker than SC"
        );
        assert!(
            report.sc_behaviors.is_subset(&report.ra_behaviors),
            "SC behaviors are contained in RA behaviors"
        );
    }

    #[test]
    fn sc_subset_of_ra_subset_of_ps() {
        // On an arbitrary (race-free) atomic program, SC ⊆ RA ⊆ PS^na.
        let ps = progs(&[
            "store[rel](incl_x, 1); a := load[acq](incl_y); return a;",
            "store[rel](incl_y, 1); b := load[acq](incl_x); return b;",
        ]);
        let report = drf_check(&ps, true);
        assert!(report.sc_behaviors.is_subset(&report.ra_behaviors));
        assert!(report.ra_behaviors.is_subset(&report.ps_behaviors));
    }

    #[test]
    fn truncated_enumeration_is_inconclusive_not_divergent() {
        // A state budget of 1 truncates every run; the report must say
        // Inconclusive — even though the (incomplete) sets would
        // coincidentally compare equal or unequal.
        let ps = progs(&[
            "store[rel](drft_x, 1); a := load[acq](drft_y); return a;",
            "store[rel](drft_y, 1); b := load[acq](drft_x); return b;",
        ]);
        let budget = DrfBudget {
            ps: PsConfig {
                max_states: 1,
                ..PsConfig::default()
            },
            sc: ScConfig {
                max_states: 1,
                ..ScConfig::default()
            },
        };
        let report = drf_check_with(&ps, false, &budget);
        assert!(report.truncated);
        assert_eq!(report.ps_vs_ra, DrfEquality::Inconclusive);
        assert_eq!(report.ra_vs_sc, DrfEquality::Inconclusive);
        assert!(!report.ps_equals_ra(), "inconclusive never claims equality");
        assert!(!report.ra_equals_sc());
    }

    #[test]
    fn truncated_race_scan_is_inconclusive() {
        // No race found within one state ≠ race-free.
        let ps = progs(&[
            "store[na](drfi_x, 1); return 0;",
            "store[na](drfi_x, 2); return 0;",
        ]);
        let r = race_report(
            &ps,
            &PsConfig {
                max_states: 1,
                ..PsConfig::default()
            },
        );
        assert!(r.truncated);
        assert_eq!(r.verdict(), RaceVerdict::Inconclusive);
    }
}
