//! The full PS2.1-style thread view `TView = ⟨rel, cur, acq⟩`.
//!
//! The paper's Fig. 5 presents a simplified fragment with a single thread
//! view; the Coq development (and PS2.1 itself) uses three components:
//!
//! * `cur` — the current view: what the thread has definitely observed
//!   (constrains reads/writes, detects races);
//! * `acq` — the acquire view: what the thread will have observed after
//!   its next acquire fence (collects message views of relaxed reads);
//! * `rel(x)` — the per-location release view: what a relaxed write to
//!   `x` publishes (raised by release writes to `x` and release fences).
//!
//! With `rel = ⊥` everywhere and no fences, the rules collapse to the
//! paper's single-view fragment. The three-view state is what makes
//! *fence-based* synchronization (release fence + relaxed flag write ↔
//! relaxed flag read + acquire fence) sound, which the litmus corpus
//! exercises.

use std::collections::BTreeMap;
use std::fmt;

use seqwm_lang::Loc;

use crate::time::Timestamp;
use crate::view::View;

/// A three-component thread view.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TView {
    /// The current view.
    pub cur: View,
    /// The acquire view (`cur ⊑ acq` invariant).
    pub acq: View,
    /// Per-location release views (absent = zero view).
    rel: BTreeMap<Loc, View>,
}

impl TView {
    /// The initial thread view (everything at timestamp zero).
    pub fn zero() -> TView {
        TView {
            cur: View::zero(),
            acq: View::zero(),
            rel: BTreeMap::new(),
        }
    }

    /// The release view for location `x`.
    pub fn rel(&self, x: Loc) -> View {
        self.rel.get(&x).cloned().unwrap_or_else(View::zero)
    }

    /// All non-default per-location release views, in location order.
    /// Used by the canonicalizing state quotient (`crate::canon`),
    /// which must visit every timestamp stored in a thread view.
    pub fn rel_entries(&self) -> impl Iterator<Item = (&Loc, &View)> + '_ {
        self.rel.iter()
    }

    /// The current observed timestamp for `x` (used by read/write side
    /// conditions and race detection).
    pub fn ts(&self, x: Loc) -> Timestamp {
        self.cur.get(x)
    }

    /// Applies a read of message `(x@t, view)` with the given acquire-ness,
    /// per the PS read rule:
    ///
    /// * `cur ⊔= [x↦t]` (and `⊔= view` if acquiring),
    /// * `acq ⊔= [x↦t] ⊔ view`.
    pub fn read(&mut self, x: Loc, t: Timestamp, msg_view: &View, acquire: bool) {
        self.cur = self.cur.bumped(x, t);
        self.acq = self.acq.bumped(x, t).join(msg_view);
        if acquire {
            self.cur = self.cur.join(msg_view);
        }
        debug_assert!(self.cur.leq(&self.acq));
    }

    /// Applies a write to `x` at timestamp `t`:
    ///
    /// * `cur ⊔= [x↦t]`, `acq ⊔= [x↦t]`,
    /// * if releasing, `rel(x) := cur` (after the bump).
    ///
    /// Returns the view to attach to the message: `⊥` for non-atomic
    /// writes (callers pass `na = true`), `rel(x) ⊔ [x↦t] ⊔ extra` for
    /// relaxed writes, `cur ⊔ extra` for release writes. `extra` threads
    /// the read-message view of RMWs (release sequences).
    pub fn write(&mut self, x: Loc, t: Timestamp, releasing: bool, na: bool, extra: &View) -> View {
        self.cur = self.cur.bumped(x, t);
        self.acq = self.acq.bumped(x, t);
        if na {
            return View::bottom();
        }
        if releasing {
            let v = self.cur.join(extra);
            self.rel.insert(x, v.clone());
            v
        } else {
            self.rel(x).bumped(x, t).join(extra)
        }
    }

    /// An acquire fence: `cur := acq`.
    pub fn acquire_fence(&mut self) {
        self.cur = self.acq.clone();
    }

    /// A release fence: `rel(x) := cur` for every location written so far
    /// or later (we raise the *default*, by recording `cur` as a floor for
    /// all locations: implemented by setting every existing entry and a
    /// global floor).
    pub fn release_fence(&mut self, locs: impl Iterator<Item = Loc>) {
        for x in locs {
            let merged = self.rel(x).join(&self.cur);
            self.rel.insert(x, merged);
        }
    }

    /// An SC fence (PS2-style approximation): join with the global SC
    /// view, act as an acquire-release fence, and return the new SC view.
    #[must_use]
    pub fn sc_fence(&mut self, sc: &View, locs: impl Iterator<Item = Loc>) -> View {
        self.cur = self.cur.join(sc);
        self.acq = self.acq.join(&self.cur);
        self.release_fence(locs);
        self.cur.clone()
    }
}

impl Default for TView {
    fn default() -> Self {
        TView::zero()
    }
}

impl fmt::Display for TView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨cur={}, acq={}⟩", self.cur, self.acq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Loc {
        Loc::new("tv_x")
    }
    fn y() -> Loc {
        Loc::new("tv_y")
    }

    #[test]
    fn relaxed_read_defers_message_view_to_acq() {
        let mut v = TView::zero();
        let msg_view = View::singleton(y(), Timestamp::int(5));
        v.read(x(), Timestamp::int(1), &msg_view, false);
        assert_eq!(v.cur.get(x()), Timestamp::int(1));
        assert_eq!(
            v.cur.get(y()),
            Timestamp::ZERO,
            "rlx read does not raise cur(y)"
        );
        assert_eq!(v.acq.get(y()), Timestamp::int(5), "…but acq records it");
        // The acquire fence transfers it.
        v.acquire_fence();
        assert_eq!(v.cur.get(y()), Timestamp::int(5));
    }

    #[test]
    fn acquire_read_joins_immediately() {
        let mut v = TView::zero();
        let msg_view = View::singleton(y(), Timestamp::int(5));
        v.read(x(), Timestamp::int(1), &msg_view, true);
        assert_eq!(v.cur.get(y()), Timestamp::int(5));
    }

    #[test]
    fn release_write_publishes_cur_and_sets_rel() {
        let mut v = TView::zero();
        v.read(y(), Timestamp::int(3), &View::bottom(), false);
        let msg = v.write(x(), Timestamp::int(1), true, false, &View::bottom());
        assert_eq!(msg.get(y()), Timestamp::int(3));
        assert_eq!(msg.get(x()), Timestamp::int(1));
        // A later relaxed write to x still carries the release view.
        let msg2 = v.write(x(), Timestamp::int(2), false, false, &View::bottom());
        assert_eq!(
            msg2.get(y()),
            Timestamp::int(3),
            "release sequence via rel(x)"
        );
    }

    #[test]
    fn relaxed_write_without_release_carries_only_its_timestamp() {
        let mut v = TView::zero();
        v.read(y(), Timestamp::int(3), &View::bottom(), false);
        let msg = v.write(x(), Timestamp::int(1), false, false, &View::bottom());
        assert_eq!(msg.get(y()), Timestamp::ZERO);
        assert_eq!(msg.get(x()), Timestamp::int(1));
    }

    #[test]
    fn release_fence_then_relaxed_write_synchronizes() {
        let mut v = TView::zero();
        v.read(y(), Timestamp::int(3), &View::bottom(), false);
        v.release_fence([x(), y()].into_iter());
        let msg = v.write(x(), Timestamp::int(1), false, false, &View::bottom());
        assert_eq!(msg.get(y()), Timestamp::int(3), "rel fence floor published");
    }

    #[test]
    fn na_write_has_bottom_view() {
        let mut v = TView::zero();
        v.read(y(), Timestamp::int(3), &View::bottom(), false);
        let msg = v.write(x(), Timestamp::int(1), false, true, &View::bottom());
        assert!(msg.is_bottom());
        assert_eq!(v.cur.get(x()), Timestamp::int(1));
    }

    #[test]
    fn sc_fence_joins_global_view() {
        let mut v = TView::zero();
        let sc = View::singleton(y(), Timestamp::int(7));
        let new_sc = v.sc_fence(&sc, [x(), y()].into_iter());
        assert_eq!(v.cur.get(y()), Timestamp::int(7));
        assert_eq!(new_sc.get(y()), Timestamp::int(7));
    }

    #[test]
    fn cur_leq_acq_invariant() {
        let mut v = TView::zero();
        v.read(
            x(),
            Timestamp::int(1),
            &View::singleton(y(), Timestamp::int(2)),
            false,
        );
        v.write(y(), Timestamp::int(4), false, false, &View::bottom());
        assert!(v.cur.leq(&v.acq));
        v.acquire_fence();
        assert!(v.cur.leq(&v.acq));
    }
}
