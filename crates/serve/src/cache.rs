//! The persistent result store: verdicts keyed by a canonical-text
//! fingerprint so a repeat submission short-circuits to a cache hit.
//!
//! Layout: one JSON file per entry under `<state_dir>/cache/`, named
//! by the 64-bit fingerprint of the canonical key. Each file records
//! the full key text alongside the result, so a fingerprint collision
//! degrades to a miss instead of serving the wrong verdict. Entries
//! are written atomically through [`crate::state`]'s CRC-checked
//! envelope and survive daemon restarts; an entry that fails
//! validation on open — torn, truncated, bit-flipped — is quarantined
//! and counted, never trusted and never fatal. An in-memory index
//! fronts the directory, evicting least-recently-used entries (file
//! included) beyond the configured capacity.
//!
//! Hit/miss/eviction counts are kept both locally (for
//! `server.stats`) and in the global perf counters
//! ([`seqwm_explore::counters`]) so the bench harness sees cache
//! traffic like any other subsystem's work.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use seqwm_explore::counters::{add, SERVE_CACHE_EVICTIONS, SERVE_CACHE_HITS, SERVE_CACHE_MISSES};
use seqwm_explore::fp64;
use seqwm_json::Json;

use crate::state::{self, Quarantine};

/// One cached verdict.
struct Entry {
    /// The full canonical key (collision guard).
    key: String,
    /// The cached result object.
    result: Json,
    /// LRU clock value at last touch.
    last_used: u64,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    clock: u64,
}

/// A persistent, LRU-bounded result cache.
pub struct ResultCache {
    dir: PathBuf,
    capacity: usize,
    inner: Mutex<Inner>,
    quarantine: Quarantine,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time cache statistics for `server.stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
    /// Corrupt entry files quarantined on open.
    pub quarantined: u64,
    /// Entries currently held.
    pub entries: usize,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory and loads the
    /// persisted index. Entry files that fail CRC-envelope validation
    /// are moved to `quarantine_dir` and counted in
    /// [`CacheStats::quarantined`].
    ///
    /// # Errors
    ///
    /// I/O problems creating or scanning the directory. Individual
    /// corrupt entry files are quarantined, not fatal.
    pub fn open(
        dir: impl Into<PathBuf>,
        capacity: usize,
        quarantine_dir: impl Into<PathBuf>,
    ) -> Result<Self, String> {
        let dir = dir.into();
        let quarantine = Quarantine::new(quarantine_dir);
        fs::create_dir_all(&dir).map_err(|e| format!("cannot create cache dir: {e}"))?;
        let mut entries = HashMap::new();
        let listing = fs::read_dir(&dir).map_err(|e| format!("cannot scan cache dir: {e}"))?;
        for item in listing.flatten() {
            let name = item.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            let Ok(fp) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            let payload = match state::read_record(&item.path()) {
                Ok(p) => p,
                Err(_) => {
                    quarantine.take(&item.path());
                    continue;
                }
            };
            let valid = match (payload.get("key"), payload.get("result")) {
                (Some(key), Some(result)) => key
                    .as_str("key")
                    .ok()
                    .map(|k| (k.to_string(), result.clone())),
                _ => None,
            };
            let Some((key, result)) = valid else {
                quarantine.take(&item.path());
                continue;
            };
            entries.insert(
                fp,
                Entry {
                    key,
                    result,
                    last_used: 0,
                },
            );
        }
        let cache = ResultCache {
            dir,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { entries, clock: 0 }),
            quarantine,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        };
        // A directory persisted by a larger-capacity daemon shrinks
        // to fit on open.
        {
            let mut inner = cache.lock();
            while inner.entries.len() > cache.capacity {
                cache.evict_one(&mut inner);
            }
        }
        Ok(cache)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn entry_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.json"))
    }

    /// Looks up a canonical key. Counts a hit or a miss either way.
    pub fn get(&self, key: &str) -> Option<Json> {
        let fp = fp64(&key);
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let found = match inner.entries.get_mut(&fp) {
            Some(e) if e.key == key => {
                e.last_used = clock;
                Some(e.result.clone())
            }
            // Fingerprint collision or vacant: either way, a miss.
            _ => None,
        };
        drop(inner);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            add(&SERVE_CACHE_HITS, 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            add(&SERVE_CACHE_MISSES, 1);
        }
        found
    }

    /// Inserts (or overwrites) a canonical key's result, persisting
    /// it to disk and evicting LRU entries beyond capacity.
    pub fn put(&self, key: &str, result: &Json) {
        let fp = fp64(&key);
        let doc = Json::Obj(vec![
            ("key".to_string(), Json::str(key)),
            ("result".to_string(), result.clone()),
        ]);
        // Cache persistence is best-effort: losing an entry only
        // costs a future re-execution.
        let _ = state::write_record(&self.entry_path(fp), &doc);
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.entries.insert(
            fp,
            Entry {
                key: key.to_string(),
                result: result.clone(),
                last_used: clock,
            },
        );
        while inner.entries.len() > self.capacity {
            self.evict_one(&mut inner);
        }
    }

    /// Removes the least-recently-used entry (index and file).
    fn evict_one(&self, inner: &mut Inner) {
        let Some((&victim, _)) = inner
            .entries
            .iter()
            .min_by_key(|(fp, e)| (e.last_used, **fp))
        else {
            return;
        };
        inner.entries.remove(&victim);
        let _ = fs::remove_file(self.entry_path(victim));
        self.evictions.fetch_add(1, Ordering::Relaxed);
        add(&SERVE_CACHE_EVICTIONS, 1);
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantine.count(),
            entries: self.lock().entries.len(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("seqwm-serve-cache-{}-{tag}", std::process::id()))
    }

    fn result(v: u64) -> Json {
        Json::obj(vec![("answer", Json::num(v))])
    }

    #[test]
    fn hit_after_put_and_miss_before() {
        let dir = temp_dir("basic");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir, 8, dir.join("quarantine")).unwrap();
        assert_eq!(cache.get("k1"), None);
        cache.put("k1", &result(1));
        assert_eq!(cache.get("k1"), Some(result(1)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_reopen() {
        let dir = temp_dir("reopen");
        let _ = fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::open(&dir, 8, dir.join("quarantine")).unwrap();
            cache.put("persist-me", &result(42));
        }
        let cache = ResultCache::open(&dir, 8, dir.join("quarantine")).unwrap();
        assert_eq!(cache.get("persist-me"), Some(result(42)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_removes_files_and_counts() {
        let dir = temp_dir("lru");
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir, 2, dir.join("quarantine")).unwrap();
        cache.put("a", &result(1));
        cache.put("b", &result(2));
        assert!(cache.get("a").is_some()); // a is now fresher than b
        cache.put("c", &result(3)); // evicts b
        assert_eq!(cache.get("b"), None);
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // Only two entry files remain on disk.
        let files = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|f| f.file_name().to_str().is_some_and(|n| n.ends_with(".json")))
            .count();
        assert_eq!(files, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_shrinks_to_capacity() {
        let dir = temp_dir("shrink");
        let _ = fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::open(&dir, 8, dir.join("quarantine")).unwrap();
            for i in 0..6 {
                cache.put(&format!("k{i}"), &result(i));
            }
        }
        let cache = ResultCache::open(&dir, 3, dir.join("quarantine")).unwrap();
        assert_eq!(cache.stats().entries, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_quarantine_on_open() {
        let dir = temp_dir("corrupt");
        let _ = fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::open(&dir, 8, dir.join("quarantine")).unwrap();
            for i in 0..4 {
                cache.put(&format!("k{i}"), &result(i));
            }
        }
        // Corrupt three of the four entry files three different ways:
        // truncation, a flipped payload byte, and full erasure.
        let mut files: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|f| f.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        files.sort();
        assert_eq!(files.len(), 4);
        let text = fs::read_to_string(&files[0]).unwrap();
        fs::write(&files[0], &text[..text.len() / 2]).unwrap();
        let text = fs::read_to_string(&files[1]).unwrap();
        fs::write(&files[1], text.replace("answer", "Answer")).unwrap();
        fs::write(&files[2], "").unwrap();

        let cache = ResultCache::open(&dir, 8, dir.join("quarantine")).unwrap();
        let s = cache.stats();
        assert_eq!(s.quarantined, 3);
        assert_eq!(s.entries, 1);
        let kept = fs::read_dir(dir.join("quarantine"))
            .unwrap()
            .flatten()
            .count();
        assert_eq!(kept, 3, "corrupt files preserved for inspection");
        // The survivor still answers; the daemon never crashed.
        let answered = (0..4)
            .filter(|i| cache.get(&format!("k{i}")).is_some())
            .count();
        assert_eq!(answered, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
