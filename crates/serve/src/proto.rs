//! The wire protocol: newline-delimited JSON-RPC 2.0 over the shared
//! [`seqwm_json::Json`] value type.
//!
//! Each line is one complete JSON document. Requests carry `jsonrpc`,
//! `method`, optional `params` (an object), and an `id`; responses
//! echo the `id` with either `result` or `error {code, message,
//! data?}`. The server additionally emits *notifications* (no `id`,
//! method `job.event`) on a connection that has subscribed to a job's
//! event stream — interleaved with responses, which is why the framing
//! is line-based: a client can dispatch on the presence of `id`.
//!
//! Error codes follow the JSON-RPC 2.0 reserved range plus a small
//! server-defined block (see the [`codes`] module).

use seqwm_json::Json;

/// JSON-RPC error codes used on the wire.
pub mod codes {
    /// Malformed JSON (unparseable line).
    pub const PARSE_ERROR: i64 = -32700;
    /// Structurally valid JSON that is not a valid request object.
    pub const INVALID_REQUEST: i64 = -32600;
    /// Unknown method.
    pub const METHOD_NOT_FOUND: i64 = -32601;
    /// Bad or missing params for a known method.
    pub const INVALID_PARAMS: i64 = -32602;
    /// The job ran but failed (panic incident, oracle violation, …).
    pub const JOB_FAILED: i64 = -32000;
    /// A per-job budget (fuel, deadline, memory, states) was exhausted
    /// before the job could produce a definitive answer.
    pub const BUDGET_EXHAUSTED: i64 = -32001;
    /// The bounded job queue is saturated; the server is shedding
    /// load. The error data carries a `retry_after_ms` hint computed
    /// from queue depth and recent job latency.
    pub const OVERLOADED: i64 = -32002;
    /// The referenced job id does not exist.
    pub const UNKNOWN_JOB: i64 = -32003;
    /// The job was canceled before completion.
    pub const CANCELED: i64 = -32004;
    /// An inbound frame exceeded the configured `--max-frame-bytes`
    /// limit; the connection is closed after this error.
    pub const FRAME_TOO_LARGE: i64 = -32005;
    /// The client failed to deliver a complete frame within the
    /// configured `--read-timeout-ms` deadline (slow-loris defense);
    /// the connection is closed after this error.
    pub const SLOW_CLIENT: i64 = -32006;
    /// The configured `--max-conns` cap is reached; the connection is
    /// rejected immediately.
    pub const TOO_MANY_CONNS: i64 = -32007;
    /// The server is draining toward shutdown and rejects new
    /// submissions; queued work is journaled for the next start.
    pub const DRAINING: i64 = -32008;
}

/// A parsed JSON-RPC request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request id, echoed on the response. JSON-RPC allows
    /// strings, numbers, and null; we carry whatever value arrived.
    pub id: Json,
    /// The method name, e.g. `"refine.check"`.
    pub method: String,
    /// The params object (empty object when absent).
    pub params: Json,
}

/// A protocol-level error: code + message (+ optional structured data).
#[derive(Clone, Debug)]
pub struct RpcError {
    /// One of the [`codes`] constants.
    pub code: i64,
    /// Human-readable summary.
    pub message: String,
    /// Optional structured detail (e.g. which budget tripped).
    pub data: Option<Json>,
}

impl RpcError {
    /// A new error with no structured data.
    pub fn new(code: i64, message: impl Into<String>) -> Self {
        RpcError {
            code,
            message: message.into(),
            data: None,
        }
    }

    /// Attaches structured data.
    pub fn with_data(mut self, data: Json) -> Self {
        self.data = Some(data);
        self
    }

    /// Shorthand for [`codes::INVALID_PARAMS`].
    pub fn invalid_params(message: impl Into<String>) -> Self {
        RpcError::new(codes::INVALID_PARAMS, message)
    }
}

/// Parses one request line. Distinguishes unparseable JSON
/// ([`codes::PARSE_ERROR`]) from a well-formed value that is not a
/// valid request ([`codes::INVALID_REQUEST`]) so the response carries
/// the right code; in both cases the caller answers with `id: null`
/// when no id could be recovered.
///
/// # Errors
///
/// Returns the ready-to-send [`RpcError`] (paired with the best-known
/// id) on any malformed line.
pub fn parse_request(line: &str) -> Result<Request, (Json, RpcError)> {
    let v = Json::parse(line).map_err(|e| (Json::Null, RpcError::new(codes::PARSE_ERROR, e)))?;
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    let bad = |msg: &str| (id.clone(), RpcError::new(codes::INVALID_REQUEST, msg));
    if v.get("jsonrpc").and_then(|j| j.as_str("jsonrpc").ok()) != Some("2.0") {
        return Err(bad("missing jsonrpc: \"2.0\""));
    }
    let method = match v.get("method").map(|m| m.as_str("method")) {
        Some(Ok(m)) => m.to_string(),
        _ => return Err(bad("missing method")),
    };
    let params = match v.get("params") {
        None => Json::Obj(Vec::new()),
        Some(p @ Json::Obj(_)) => p.clone(),
        Some(_) => return Err(bad("params must be an object")),
    };
    Ok(Request { id, method, params })
}

/// Renders a success response line (no trailing newline).
pub fn response(id: &Json, result: Json) -> String {
    Json::Obj(vec![
        ("jsonrpc".to_string(), Json::str("2.0")),
        ("id".to_string(), id.clone()),
        ("result".to_string(), result),
    ])
    .to_string()
}

/// Renders an error response line (no trailing newline).
pub fn error_response(id: &Json, err: &RpcError) -> String {
    let mut e = vec![
        ("code".to_string(), Json::Num(err.code as f64)),
        ("message".to_string(), Json::str(err.message.clone())),
    ];
    if let Some(data) = &err.data {
        e.push(("data".to_string(), data.clone()));
    }
    Json::Obj(vec![
        ("jsonrpc".to_string(), Json::str("2.0")),
        ("id".to_string(), id.clone()),
        ("error".to_string(), Json::Obj(e)),
    ])
    .to_string()
}

/// Renders a notification line (no `id`; used for `job.event`).
pub fn notification(method: &str, params: Json) -> String {
    Json::Obj(vec![
        ("jsonrpc".to_string(), Json::str("2.0")),
        ("method".to_string(), Json::str(method)),
        ("params".to_string(), params),
    ])
    .to_string()
}

// --- typed param readers -------------------------------------------

/// Required string param.
///
/// # Errors
///
/// [`RpcError::invalid_params`] when missing or not a string.
pub fn req_str(params: &Json, key: &str) -> Result<String, RpcError> {
    params
        .get(key)
        .ok_or_else(|| RpcError::invalid_params(format!("missing param {key:?}")))?
        .as_str(key)
        .map(str::to_string)
        .map_err(RpcError::invalid_params)
}

/// Optional string param.
///
/// # Errors
///
/// [`RpcError::invalid_params`] when present but not a string.
pub fn opt_str(params: &Json, key: &str) -> Result<Option<String>, RpcError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str(key)
            .map(|s| Some(s.to_string()))
            .map_err(RpcError::invalid_params),
    }
}

/// Optional unsigned-integer param.
///
/// # Errors
///
/// [`RpcError::invalid_params`] when present but not a non-negative
/// whole number.
pub fn opt_u64(params: &Json, key: &str) -> Result<Option<u64>, RpcError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64(key).map(Some).map_err(RpcError::invalid_params),
    }
}

/// Optional boolean param (defaults to `false`).
///
/// # Errors
///
/// [`RpcError::invalid_params`] when present but not a bool.
pub fn opt_bool(params: &Json, key: &str) -> Result<Option<bool>, RpcError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_bool(key).map(Some).map_err(RpcError::invalid_params),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_request() {
        let r = parse_request(r#"{"jsonrpc":"2.0","id":1,"method":"server.stats"}"#).unwrap();
        assert_eq!(r.method, "server.stats");
        assert_eq!(r.id, Json::Num(1.0));
        assert_eq!(r.params, Json::Obj(Vec::new()));
    }

    #[test]
    fn parse_error_vs_invalid_request() {
        let (id, e) = parse_request("{not json").unwrap_err();
        assert_eq!(e.code, codes::PARSE_ERROR);
        assert_eq!(id, Json::Null);

        let (id, e) = parse_request(r#"{"id":7,"method":"x"}"#).unwrap_err();
        assert_eq!(e.code, codes::INVALID_REQUEST, "missing jsonrpc version");
        assert_eq!(id, Json::Num(7.0), "id recovered for the error reply");

        let (_, e) = parse_request(r#"{"jsonrpc":"2.0","id":1,"params":{}}"#).unwrap_err();
        assert_eq!(e.code, codes::INVALID_REQUEST, "missing method");

        let (_, e) =
            parse_request(r#"{"jsonrpc":"2.0","id":1,"method":"x","params":[1]}"#).unwrap_err();
        assert_eq!(e.code, codes::INVALID_REQUEST, "positional params rejected");
    }

    #[test]
    fn responses_round_trip_through_the_parser() {
        let ok = response(
            &Json::Num(3.0),
            Json::obj(vec![("verdict", Json::str("holds"))]),
        );
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64("id").unwrap(), 3);
        assert_eq!(
            v.get("result")
                .unwrap()
                .get("verdict")
                .unwrap()
                .as_str("v")
                .unwrap(),
            "holds"
        );

        let err = error_response(
            &Json::str("a"),
            &RpcError::new(codes::BUDGET_EXHAUSTED, "fuel exhausted")
                .with_data(Json::obj(vec![("budget", Json::str("fuel"))])),
        );
        let v = Json::parse(&err).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("code").unwrap(), &Json::Num(-32001.0));
        assert_eq!(
            e.get("data")
                .unwrap()
                .get("budget")
                .unwrap()
                .as_str("b")
                .unwrap(),
            "fuel"
        );
    }

    #[test]
    fn notifications_have_no_id() {
        let n = notification("job.event", Json::obj(vec![("job", Json::num(1))]));
        let v = Json::parse(&n).unwrap();
        assert!(v.get("id").is_none());
        assert_eq!(v.get("method").unwrap().as_str("m").unwrap(), "job.event");
    }

    #[test]
    fn typed_param_readers_enforce_types() {
        let p = Json::parse(r#"{"s":"x","n":9,"b":true,"z":null}"#).unwrap();
        assert_eq!(req_str(&p, "s").unwrap(), "x");
        assert_eq!(
            req_str(&p, "missing").unwrap_err().code,
            codes::INVALID_PARAMS
        );
        assert_eq!(opt_str(&p, "z").unwrap(), None);
        assert_eq!(opt_u64(&p, "n").unwrap(), Some(9));
        assert_eq!(opt_u64(&p, "s").unwrap_err().code, codes::INVALID_PARAMS);
        assert_eq!(opt_bool(&p, "b").unwrap(), Some(true));
        assert_eq!(opt_bool(&p, "missing").unwrap(), None);
    }
}
