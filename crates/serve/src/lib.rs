//! `seqwm-serve` — a long-lived verification service.
//!
//! The daemon turns the repo's one-shot verification tools into a
//! service: a TCP socket speaking newline-delimited JSON-RPC 2.0
//! ([`proto`]), a bounded FIFO job queue drained by worker threads
//! ([`server`]), a persistent result cache keyed by canonical-text
//! program fingerprints ([`cache`]), and an on-disk job journal with
//! checkpoint-backed restart recovery ([`job`]).
//!
//! Methods:
//!
//! | method           | effect                                         |
//! |------------------|------------------------------------------------|
//! | `refine.check`   | SEQ refinement of a program pair (synchronous) |
//! | `explore.run`    | promising-semantics exploration (synchronous)  |
//! | `optimize.run`   | validated optimizer run over one program (sync)|
//! | `fuzz.campaign`  | start a fuzzing campaign, returns a job id     |
//! | `job.submit`     | generic async submit (`kind` selects the work) |
//! | `job.status`     | lifecycle snapshot of one job                  |
//! | `job.result`     | block for (or poll) a job's terminal outcome   |
//! | `job.events`     | replay + follow a job's streamed events        |
//! | `job.cancel`     | cancel a queued or running job                 |
//! | `server.stats`   | uptime, queue, job, cache, and perf counters   |
//! | `server.shutdown`| stop the daemon                                |
//!
//! Jobs carry per-request budgets (`fuel`, `deadline_ms`,
//! `max_memory_mb`, `max_states`); a tripped budget is a structured
//! `BUDGET_EXHAUSTED` error on that job, a panicking check is a
//! `JOB_FAILED` incident — the daemon itself never dies with a job.
//! Everything runs on std only, like the rest of the workspace.
//!
//! The daemon also defends itself: per-connection frame deadlines and
//! size caps, a connection cap, admission control with
//! `retry_after_ms` backpressure, graceful drain shutdown, and
//! CRC-checked durable state with quarantine recovery ([`state`]).
//! The `chaos` feature adds a deterministic fault proxy ([`chaos`])
//! for exercising all of it from the integration tests.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod job;
pub mod proto;
pub mod server;
pub mod state;

pub use cache::{CacheStats, ResultCache};
#[cfg(feature = "chaos")]
pub use chaos::{corrupt_file, ChaosAction, ChaosPlan, ChaosProxy, FileChaos};
pub use job::{JobBudgets, JobKind, JobRecord, JobState};
pub use server::{ServeConfig, Server};
pub use state::{Quarantine, RecordError};
