//! Job records: what was submitted, what budgets it carries, where it
//! is in its lifecycle, and how it round-trips through the on-disk
//! journal that survives a daemon restart.
//!
//! Every submitted job is persisted to `<state_dir>/jobs/job-<id>.json`
//! the moment it is accepted, updated on each state transition, and
//! kept after completion so `job.result` keeps answering across
//! restarts. A restarted daemon re-enqueues every journaled job that
//! was still queued or running; explore jobs additionally pick up the
//! engine's periodic checkpoint (`job-<id>.ckpt`) and resume the
//! interrupted frontier instead of starting over.
//!
//! Journal entries are written through [`crate::state`]'s CRC-checked
//! envelope; a torn or corrupted entry is quarantined on load instead
//! of crashing the daemon or silently resurrecting a mangled job.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use seqwm_json::Json;
use seqwm_lang::parser::parse_program;
use seqwm_lang::Program;
use seqwm_models::ModelChoice;
use seqwm_opt::PassKind;

use crate::proto::{codes, opt_bool, opt_str, opt_u64, req_str, RpcError};
use crate::state::{self, Quarantine};

/// What kind of work a job performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// A SEQ refinement check of a program pair.
    Refine,
    /// A promising-semantics state-space exploration.
    Explore,
    /// A differential fuzzing campaign.
    Fuzz,
    /// A validated optimizer run over one program.
    Optimize,
}

impl JobKind {
    /// Stable wire/journal name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Refine => "refine",
            JobKind::Explore => "explore",
            JobKind::Fuzz => "fuzz",
            JobKind::Optimize => "optimize",
        }
    }

    /// Parses a wire/journal name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "refine" => Some(JobKind::Refine),
            "explore" => Some(JobKind::Explore),
            "fuzz" => Some(JobKind::Fuzz),
            "optimize" => Some(JobKind::Optimize),
            _ => None,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished with a result.
    Done,
    /// Finished with a structured error (budget trip, panic, …).
    Failed,
    /// Canceled before or during execution.
    Canceled,
}

impl JobState {
    /// Stable wire/journal name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Parses a wire/journal name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "canceled" => Some(JobState::Canceled),
            _ => None,
        }
    }

    /// True for states no worker will touch again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

/// Per-job resource budgets, parsed from the request params. All are
/// optional; absent means the engine/oracle default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobBudgets {
    /// Wall-clock deadline (explore jobs).
    pub deadline_ms: Option<u64>,
    /// Memory ceiling in MiB (explore jobs).
    pub max_memory_mb: Option<u64>,
    /// Simulation fuel (refine jobs): total expansion steps across all
    /// initial configurations before the check gives up.
    pub fuel: Option<u64>,
    /// State-count ceiling (explore jobs).
    pub max_states: Option<u64>,
    /// In-RAM visited/frontier budget in MiB before the engine spills
    /// cold shards to disk (explore jobs). Defaults to the memory
    /// ceiling when absent.
    pub spill_budget_mb: Option<u64>,
}

impl JobBudgets {
    /// Reads the budget fields out of a params object.
    ///
    /// # Errors
    ///
    /// `INVALID_PARAMS` when a budget field has the wrong type.
    pub fn from_params(params: &Json) -> Result<Self, RpcError> {
        Ok(JobBudgets {
            deadline_ms: opt_u64(params, "deadline_ms")?,
            max_memory_mb: opt_u64(params, "max_memory_mb")?,
            fuel: opt_u64(params, "fuel")?,
            max_states: opt_u64(params, "max_states")?,
            spill_budget_mb: opt_u64(params, "spill_budget_mb")?,
        })
    }
}

/// A terminal error attached to a failed/canceled job.
#[derive(Clone, Debug)]
pub struct JobError {
    /// JSON-RPC error code (one of [`codes`]).
    pub code: i64,
    /// Human-readable message.
    pub message: String,
    /// Optional structured detail.
    pub data: Option<Json>,
}

impl JobError {
    /// Lifts a protocol-level error (e.g. a params problem discovered
    /// only at execution time) into a job outcome.
    pub fn from_rpc(e: RpcError) -> Self {
        JobError {
            code: e.code,
            message: e.message,
            data: e.data,
        }
    }
}

/// One job: submitted params, lifecycle state, and outcome.
pub struct JobRecord {
    /// Server-assigned id, unique across restarts of one state dir.
    pub id: u64,
    /// What kind of work this is.
    pub kind: JobKind,
    /// The submitted params object, kept verbatim so the journal can
    /// rebuild the job after a restart.
    pub params: Json,
    /// Lifecycle state.
    pub state: JobState,
    /// The result object once `Done`.
    pub result: Option<Json>,
    /// The structured error once `Failed`/`Canceled`.
    pub error: Option<JobError>,
    /// True when the result came straight from the result cache.
    pub cached: bool,
    /// True when this job was re-enqueued by a restarted daemon.
    pub recovered: bool,
    /// Streamed events (fuzz progress batches and unique failures),
    /// in emission order; `job.events` replays then follows these.
    pub events: Vec<Json>,
    /// Cooperative cancel flag, checked by long-running work.
    pub cancel: Arc<AtomicBool>,
}

impl JobRecord {
    /// A fresh record in the `Queued` state.
    pub fn new(id: u64, kind: JobKind, params: Json) -> Self {
        JobRecord {
            id,
            kind,
            params,
            state: JobState::Queued,
            result: None,
            error: None,
            cached: false,
            recovered: false,
            events: Vec::new(),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The `job.status` view of this record.
    pub fn status_json(&self) -> Json {
        let mut fields = vec![
            ("job".to_string(), Json::num(self.id)),
            ("kind".to_string(), Json::str(self.kind.as_str())),
            ("state".to_string(), Json::str(self.state.as_str())),
            ("cached".to_string(), Json::Bool(self.cached)),
            ("recovered".to_string(), Json::Bool(self.recovered)),
            ("events".to_string(), Json::num(self.events.len() as u64)),
        ];
        if let Some(e) = &self.error {
            fields.push((
                "error".to_string(),
                Json::Obj(vec![
                    ("code".to_string(), Json::Num(e.code as f64)),
                    ("message".to_string(), Json::str(e.message.clone())),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// The journal document persisted to `job-<id>.json`.
    pub fn journal_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::num(self.id)),
            ("kind".to_string(), Json::str(self.kind.as_str())),
            ("params".to_string(), self.params.clone()),
            ("state".to_string(), Json::str(self.state.as_str())),
            ("cached".to_string(), Json::Bool(self.cached)),
            ("recovered".to_string(), Json::Bool(self.recovered)),
            ("events".to_string(), Json::Arr(self.events.clone())),
        ];
        if let Some(r) = &self.result {
            fields.push(("result".to_string(), r.clone()));
        }
        if let Some(e) = &self.error {
            let mut err = vec![
                ("code".to_string(), Json::Num(e.code as f64)),
                ("message".to_string(), Json::str(e.message.clone())),
            ];
            if let Some(d) = &e.data {
                err.push(("data".to_string(), d.clone()));
            }
            fields.push(("error".to_string(), Json::Obj(err)));
        }
        Json::Obj(fields)
    }

    /// Rebuilds a record from a journal document. Jobs journaled as
    /// queued or running come back `Queued` with `recovered` set — the
    /// daemon died before they finished, so they must run (or resume)
    /// again.
    pub fn from_journal(doc: &Json) -> Option<Self> {
        let id = doc.get("id")?.as_u64("id").ok()?;
        let kind = JobKind::parse(doc.get("kind")?.as_str("kind").ok()?)?;
        let params = doc.get("params")?.clone();
        let state = JobState::parse(doc.get("state")?.as_str("state").ok()?)?;
        let mut rec = JobRecord::new(id, kind, params);
        rec.cached = matches!(doc.get("cached"), Some(Json::Bool(true)));
        if let Some(Json::Arr(events)) = doc.get("events") {
            rec.events = events.clone();
        }
        if state.is_terminal() {
            rec.state = state;
            rec.result = doc.get("result").cloned();
            rec.error = doc.get("error").and_then(|e| {
                // Error codes are negative (JSON-RPC reserved range),
                // so read the raw number instead of the u64 accessor.
                let code = match e.get("code")? {
                    Json::Num(n) => *n as i64,
                    _ => return None,
                };
                Some(JobError {
                    code,
                    message: e.get("message")?.as_str("message").ok()?.to_string(),
                    data: e.get("data").cloned(),
                })
            });
        } else {
            rec.recovered = true;
            // A half-streamed event log from the dead run would be
            // replayed *and* re-emitted by the re-run; start clean.
            rec.events.clear();
        }
        Some(rec)
    }
}

/// Journal file path for a job id.
pub fn journal_path(jobs_dir: &Path, id: u64) -> PathBuf {
    jobs_dir.join(format!("job-{id}.json"))
}

/// Engine checkpoint path for a job id (explore jobs only).
pub fn checkpoint_path(jobs_dir: &Path, id: u64) -> PathBuf {
    jobs_dir.join(format!("job-{id}.ckpt"))
}

/// Atomically writes a job's journal document (CRC-enveloped).
/// Journal persistence is best-effort: a lost journal entry only
/// costs restart recovery for that one job.
pub fn persist(jobs_dir: &Path, rec: &JobRecord) {
    let _ = state::write_record(&journal_path(jobs_dir, rec.id), &rec.journal_json());
}

/// Loads every journaled job from a jobs directory, oldest id first.
/// Entries that fail envelope validation — torn writes, flipped
/// bytes, empty files — or that validate but no longer decode as a
/// job record are moved to `quarantine` and counted there.
pub fn load_journal(jobs_dir: &Path, quarantine: &Quarantine) -> Vec<JobRecord> {
    let mut out = Vec::new();
    let Ok(listing) = fs::read_dir(jobs_dir) else {
        return out;
    };
    for item in listing.flatten() {
        let name = item.file_name();
        let Some(n) = name.to_str() else { continue };
        if !n.starts_with("job-") || !n.ends_with(".json") {
            continue;
        }
        let payload = match state::read_record(&item.path()) {
            Ok(p) => p,
            Err(_) => {
                quarantine.take(&item.path());
                continue;
            }
        };
        let Some(rec) = JobRecord::from_journal(&payload) else {
            quarantine.take(&item.path());
            continue;
        };
        out.push(rec);
    }
    out.sort_by_key(|r| r.id);
    out
}

// ---------------------------------------------------------------------
// Param validation and canonical cache keys
// ---------------------------------------------------------------------

fn parse_named_program(params: &Json, key: &str) -> Result<Program, RpcError> {
    let text = req_str(params, key)?;
    parse_program(&text).map_err(|e| RpcError::invalid_params(format!("{key}: parse error: {e}")))
}

/// Validates the optional `model` param (refine and explore jobs):
/// `"auto"` or a registered backend name.
pub fn model_choice(params: &Json) -> Result<Option<ModelChoice>, RpcError> {
    match opt_str(params, "model")? {
        None => Ok(None),
        Some(s) => ModelChoice::parse(&s).map(Some).ok_or_else(|| {
            RpcError::invalid_params(format!(
                "model: unknown model {s:?} (expected auto|psna|pf|ra|scf|sc)"
            ))
        }),
    }
}

/// Validates refine params and returns `(src, tgt)` parsed.
pub fn refine_programs(params: &Json) -> Result<(Program, Program), RpcError> {
    Ok((
        parse_named_program(params, "src")?,
        parse_named_program(params, "tgt")?,
    ))
}

/// Validates explore params and returns the parsed thread programs.
pub fn explore_programs(params: &Json) -> Result<Vec<Program>, RpcError> {
    let Some(Json::Arr(items)) = params.get("programs") else {
        return Err(RpcError::invalid_params(
            "programs: required array of program texts",
        ));
    };
    if items.is_empty() {
        return Err(RpcError::invalid_params("programs: must be non-empty"));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let text = p
                .as_str(&format!("programs[{i}]"))
                .map_err(RpcError::invalid_params)?;
            parse_program(text)
                .map_err(|e| RpcError::invalid_params(format!("programs[{i}]: parse error: {e}")))
        })
        .collect()
}

/// Validated optimize params: the program, resolved pass list, round
/// count, whether stages are validated, and any declared contexts.
pub struct OptimizeParams {
    /// The program to optimize.
    pub program: Program,
    /// The passes to run, in order.
    pub passes: Vec<PassKind>,
    /// Pipeline repetitions.
    pub rounds: u64,
    /// Discharge each stage's translation-validation obligation?
    pub validate: bool,
    /// Declared context threads for the PS^na obligations.
    pub contexts: Vec<Program>,
}

/// Parses and validates `optimize.run` params.
pub fn optimize_params(params: &Json) -> Result<OptimizeParams, RpcError> {
    let program = parse_named_program(params, "program")?;
    let passes = match opt_str(params, "passes")? {
        None => PassKind::all().to_vec(),
        Some(s) if s == "all" => PassKind::extended(),
        Some(s) => s
            .split(',')
            .map(|name| {
                PassKind::parse(name.trim()).ok_or_else(|| {
                    RpcError::invalid_params(format!("passes: unknown pass {name:?}"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    if passes.is_empty() {
        return Err(RpcError::invalid_params("passes: must name at least one"));
    }
    let rounds = opt_u64(params, "rounds")?.unwrap_or(1).max(1);
    let validate = opt_bool(params, "validate")?.unwrap_or(true);
    let contexts = match params.get("contexts") {
        None => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let text = p
                    .as_str(&format!("contexts[{i}]"))
                    .map_err(RpcError::invalid_params)?;
                parse_program(text).map_err(|e| {
                    RpcError::invalid_params(format!("contexts[{i}]: parse error: {e}"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => {
            return Err(RpcError::invalid_params(
                "contexts: expected array of program texts",
            ))
        }
    };
    Ok(OptimizeParams {
        program,
        passes,
        rounds,
        validate,
        contexts,
    })
}

/// Canonical cache key for a job, or `None` for uncacheable kinds.
///
/// The key is built from the *canonical* (re-rendered) program texts
/// plus every option that can change the verdict, so textually
/// different but structurally identical submissions share an entry.
/// Budgets are deliberately excluded: only definitive results (no
/// truncation, no budget trip) are ever stored, and those are
/// budget-independent. Fuzz campaigns are randomized long-running
/// work and are never cached.
pub fn cache_key(kind: JobKind, params: &Json) -> Result<Option<String>, RpcError> {
    match kind {
        JobKind::Refine => {
            let (src, tgt) = refine_programs(params)?;
            let max_steps = opt_u64(params, "max_steps")?;
            let model = model_choice(params)?.map(ModelChoice::name);
            Ok(Some(format!(
                "refine|max_steps={:?}|model={:?}|src={src}|tgt={tgt}",
                max_steps, model
            )))
        }
        JobKind::Explore => {
            let progs = explore_programs(params)?;
            let promises = opt_bool(params, "promises")?.unwrap_or(false);
            let reduction = opt_bool(params, "reduction")?.unwrap_or(true);
            let model = model_choice(params)?.map(ModelChoice::name);
            let texts: Vec<String> = progs.iter().map(|p| p.to_string()).collect();
            Ok(Some(format!(
                "explore|promises={promises}|reduction={reduction}|model={:?}|{}",
                model,
                texts.join("|")
            )))
        }
        JobKind::Fuzz => {
            // Validate the numeric fields even though there is no key.
            opt_u64(params, "cases")?;
            opt_u64(params, "seed")?;
            opt_u64(params, "max_failures")?;
            Ok(None)
        }
        JobKind::Optimize => {
            let p = optimize_params(params)?;
            let passes: Vec<String> = p.passes.iter().map(|k| k.to_string()).collect();
            let ctxs: Vec<String> = p.contexts.iter().map(|c| c.to_string()).collect();
            Ok(Some(format!(
                "optimize|passes={}|rounds={}|validate={}|program={}|contexts={}",
                passes.join(","),
                p.rounds,
                p.validate,
                p.program,
                ctxs.join("|")
            )))
        }
    }
}

/// The terminal error every canceled job carries.
pub fn canceled_error() -> JobError {
    JobError {
        code: codes::CANCELED,
        message: "job canceled".to_string(),
        data: None,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn refine_params() -> Json {
        Json::obj(vec![
            ("src", Json::str("return 1;")),
            ("tgt", Json::str("return 1;")),
        ])
    }

    #[test]
    fn journal_round_trips_terminal_jobs_verbatim() {
        let mut rec = JobRecord::new(7, JobKind::Refine, refine_params());
        rec.state = JobState::Done;
        rec.result = Some(Json::obj(vec![("verdict", Json::str("holds"))]));
        rec.cached = true;
        rec.events.push(Json::obj(vec![("type", Json::str("x"))]));
        let back = JobRecord::from_journal(&rec.journal_json()).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.kind, JobKind::Refine);
        assert_eq!(back.state, JobState::Done);
        assert_eq!(back.result, rec.result);
        assert!(back.cached);
        assert!(!back.recovered);
        assert_eq!(back.events.len(), 1);
    }

    #[test]
    fn journal_requeues_interrupted_jobs_as_recovered() {
        for state in [JobState::Queued, JobState::Running] {
            let mut rec = JobRecord::new(3, JobKind::Explore, Json::obj(vec![]));
            rec.state = state;
            rec.events.push(Json::Bool(true));
            let back = JobRecord::from_journal(&rec.journal_json()).unwrap();
            assert_eq!(back.state, JobState::Queued);
            assert!(back.recovered);
            assert!(back.events.is_empty(), "stale events must not replay");
        }
    }

    #[test]
    fn journal_round_trips_failed_jobs_with_error() {
        let mut rec = JobRecord::new(9, JobKind::Refine, refine_params());
        rec.state = JobState::Failed;
        rec.error = Some(JobError {
            code: codes::BUDGET_EXHAUSTED,
            message: "fuel exhausted".to_string(),
            data: Some(Json::obj(vec![("budget", Json::str("fuel"))])),
        });
        let back = JobRecord::from_journal(&rec.journal_json()).unwrap();
        assert_eq!(back.state, JobState::Failed);
        let err = back.error.unwrap();
        assert_eq!(err.code, codes::BUDGET_EXHAUSTED);
        assert_eq!(err.message, "fuel exhausted");
        assert!(err.data.is_some());
    }

    #[test]
    fn cache_key_ignores_whitespace_and_budgets() {
        let a = cache_key(
            JobKind::Refine,
            &Json::obj(vec![
                ("src", Json::str("return   1;")),
                ("tgt", Json::str("return 1 ;")),
                ("fuel", Json::num(10)),
            ]),
        )
        .unwrap()
        .unwrap();
        let b = cache_key(JobKind::Refine, &refine_params())
            .unwrap()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cache_key_separates_kinds_and_options() {
        let refine = cache_key(JobKind::Refine, &refine_params())
            .unwrap()
            .unwrap();
        let explore = cache_key(
            JobKind::Explore,
            &Json::obj(vec![("programs", Json::Arr(vec![Json::str("return 1;")]))]),
        )
        .unwrap()
        .unwrap();
        assert_ne!(refine, explore);
        let explore_promises = cache_key(
            JobKind::Explore,
            &Json::obj(vec![
                ("programs", Json::Arr(vec![Json::str("return 1;")])),
                ("promises", Json::Bool(true)),
            ]),
        )
        .unwrap()
        .unwrap();
        assert_ne!(explore, explore_promises);
    }

    #[test]
    fn model_param_validates_and_keys_separately() {
        let base = Json::obj(vec![("programs", Json::Arr(vec![Json::str("return 1;")]))]);
        let with_model = Json::obj(vec![
            ("programs", Json::Arr(vec![Json::str("return 1;")])),
            ("model", Json::str("auto")),
        ]);
        let a = cache_key(JobKind::Explore, &base).unwrap().unwrap();
        let b = cache_key(JobKind::Explore, &with_model).unwrap().unwrap();
        assert_ne!(a, b, "model choice must key its own cache entries");
        let bad = Json::obj(vec![
            ("programs", Json::Arr(vec![Json::str("return 1;")])),
            ("model", Json::str("tso")),
        ]);
        let err = cache_key(JobKind::Explore, &bad).unwrap_err();
        assert_eq!(err.code, codes::INVALID_PARAMS);
    }

    #[test]
    fn fuzz_jobs_are_never_cached() {
        let key = cache_key(JobKind::Fuzz, &Json::obj(vec![("cases", Json::num(5))])).unwrap();
        assert!(key.is_none());
    }

    #[test]
    fn load_journal_quarantines_corrupt_entries() {
        let dir = std::env::temp_dir().join(format!("seqwm-serve-job-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // One good record…
        persist(&dir, &JobRecord::new(1, JobKind::Refine, refine_params()));
        // …one truncated, one empty, one with a flipped byte, and one
        // whose envelope is valid but whose payload is not a job.
        let good = fs::read_to_string(journal_path(&dir, 1)).unwrap();
        fs::write(journal_path(&dir, 2), &good[..good.len() / 2]).unwrap();
        fs::write(journal_path(&dir, 3), "").unwrap();
        fs::write(journal_path(&dir, 4), good.replace("refine", "rEfine")).unwrap();
        fs::write(
            journal_path(&dir, 5),
            state::wrap(&Json::obj(vec![("not", Json::str("a job"))])).to_string(),
        )
        .unwrap();
        let q = Quarantine::new(dir.join("quarantine"));
        let recs = load_journal(&dir, &q);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, 1);
        assert_eq!(q.count(), 4);
        let kept = fs::read_dir(q.dir()).unwrap().flatten().count();
        assert_eq!(kept, 4, "corrupt files preserved for inspection");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_programs_are_rejected_at_validation() {
        let bad = Json::obj(vec![
            ("src", Json::str("store[")),
            ("tgt", Json::str("return 1;")),
        ]);
        let err = cache_key(JobKind::Refine, &bad).unwrap_err();
        assert_eq!(err.code, codes::INVALID_PARAMS);
    }
}
