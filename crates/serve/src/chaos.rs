//! Deterministic chaos injection for the serve hardening tests
//! (feature `chaos`).
//!
//! Mirrors the engine's [`seqwm_explore::FaultPlan`] discipline at
//! the network and filesystem edge: a [`ChaosPlan`] decides, per
//! `(connection index, frame index)`, whether a client→server frame
//! is torn mid-write, the connection is dropped mid-frame, the bytes
//! stall before delivery, or a line of garbage precedes the frame.
//! Decisions are pure functions of `(seed, connection, frame)`
//! derived with the in-tree SplitMix64 mixer — never a shared RNG
//! stream — so a chaos run replays identically across machines and
//! reruns, and a test can compute the exact expectation for every
//! request it sends.
//!
//! [`ChaosProxy`] is the delivery vehicle: an in-process TCP proxy
//! that forwards clients to a real daemon while applying the plan to
//! the client→server direction (the server→client direction is
//! pumped verbatim — the subject under test is the daemon's intake).
//! [`FileChaos`] covers the durable-state axis: truncating, byte
//! flipping, emptying, or garbage-filling the journal/cache files the
//! daemon must quarantine on its next start.

use std::fs;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use seqwm_explore::mix64;

/// What the plan does to one client→server frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Forward the frame untouched.
    Pass,
    /// Write half the frame, flush, pause, then write the rest — a
    /// torn write the server must reassemble under its deadline.
    Tear,
    /// Write half the frame, then sever both directions — a client
    /// dying mid-request.
    Disconnect,
    /// Hold the complete frame for [`ChaosPlan::stall`] first — a
    /// slow client grazing the read deadline.
    Stall,
    /// Send a line of non-JSON garbage before the real frame — the
    /// server must answer `PARSE_ERROR` and keep the connection.
    Garbage,
}

/// A deterministic chaos schedule, seeded by SplitMix64.
///
/// Rates are per-mille and checked in priority order
/// disconnect > tear > garbage > stall, so at most one action applies
/// to a frame and raising one rate never reshuffles another's
/// decisions.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Seed; equal seeds misbehave identically.
    pub seed: u64,
    /// Per-mille probability of [`ChaosAction::Tear`].
    pub tear_per_mille: u16,
    /// Per-mille probability of [`ChaosAction::Disconnect`].
    pub disconnect_per_mille: u16,
    /// Per-mille probability of [`ChaosAction::Stall`].
    pub stall_per_mille: u16,
    /// How long stalled (and torn) frames pause.
    pub stall: Duration,
    /// Per-mille probability of [`ChaosAction::Garbage`].
    pub garbage_per_mille: u16,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0,
            tear_per_mille: 0,
            disconnect_per_mille: 0,
            stall_per_mille: 0,
            stall: Duration::from_millis(20),
            garbage_per_mille: 0,
        }
    }
}

impl ChaosPlan {
    fn roll(&self, conn: u64, frame: u64, salt: u64) -> u64 {
        mix64(self.seed ^ mix64(conn ^ mix64(frame ^ mix64(salt)))) % 1000
    }

    /// The action for frame `frame` on connection `conn`. Pure: a
    /// test can call this to predict exactly what the proxy will do.
    pub fn action(&self, conn: u64, frame: u64) -> ChaosAction {
        if self.roll(conn, frame, 0xC501) < u64::from(self.disconnect_per_mille) {
            ChaosAction::Disconnect
        } else if self.roll(conn, frame, 0xC502) < u64::from(self.tear_per_mille) {
            ChaosAction::Tear
        } else if self.roll(conn, frame, 0xC503) < u64::from(self.garbage_per_mille) {
            ChaosAction::Garbage
        } else if self.roll(conn, frame, 0xC504) < u64::from(self.stall_per_mille) {
            ChaosAction::Stall
        } else {
            ChaosAction::Pass
        }
    }
}

/// An in-process fault proxy: clients connect to [`addr`](Self::addr),
/// frames forward to the upstream daemon through the plan.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy on an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// A human-readable message when the listener cannot be bound.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> Result<ChaosProxy, String> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("chaos proxy cannot bind: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("chaos proxy address: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("seqwm-chaos-accept".to_string())
            .spawn(move || {
                let mut conn_index = 0u64;
                for client in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(client) = client else { continue };
                    let plan = plan.clone();
                    let index = conn_index;
                    conn_index += 1;
                    let _ = std::thread::Builder::new()
                        .name("seqwm-chaos-conn".to_string())
                        .spawn(move || pump_connection(client, upstream, &plan, index));
                }
            })
            .map_err(|e| format!("chaos proxy accept thread: {e}"))?;
        Ok(ChaosProxy {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address clients should connect to instead of the daemon.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. Existing pumps
    /// die with their sockets.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// One proxied connection: the client→server direction is reframed
/// and run through the plan; the server→client direction is a raw
/// byte pump on its own thread.
fn pump_connection(client: TcpStream, upstream: SocketAddr, plan: &ChaosPlan, conn: u64) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(server_read), Ok(client_write)) = (server.try_clone(), client.try_clone()) else {
        return;
    };
    // Server→client: verbatim.
    let down = std::thread::Builder::new()
        .name("seqwm-chaos-down".to_string())
        .spawn(move || pump_raw(server_read, client_write));
    // Client→server: framed, through the plan.
    pump_frames(client, server, plan, conn);
    if let Ok(h) = down {
        let _ = h.join();
    }
}

fn pump_raw(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
                let _ = to.flush();
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn pump_frames(mut client: TcpStream, mut server: TcpStream, plan: &ChaosPlan, conn: u64) {
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut frame_index = 0u64;
    'outer: loop {
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = pending.drain(..=pos).collect();
            let action = plan.action(conn, frame_index);
            frame_index += 1;
            if !deliver(&mut server, &frame, action, plan.stall) {
                let _ = server.shutdown(Shutdown::Both);
                let _ = client.shutdown(Shutdown::Both);
                break 'outer;
            }
        }
        match client.read(&mut chunk) {
            Ok(0) | Err(_) => {
                // Client went away; flush nothing, close the upstream
                // write half so the daemon sees EOF.
                let _ = server.shutdown(Shutdown::Write);
                break;
            }
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
        }
    }
}

/// Applies one action to one frame. Returns false when the connection
/// must be severed (the Disconnect action or a write failure).
fn deliver(server: &mut TcpStream, frame: &[u8], action: ChaosAction, stall: Duration) -> bool {
    let half = frame.len() / 2;
    match action {
        ChaosAction::Pass => server.write_all(frame).is_ok(),
        ChaosAction::Stall => {
            std::thread::sleep(stall);
            server.write_all(frame).is_ok()
        }
        ChaosAction::Tear => {
            if server.write_all(&frame[..half]).is_err() || server.flush().is_err() {
                return false;
            }
            std::thread::sleep(stall);
            server.write_all(&frame[half..]).is_ok()
        }
        ChaosAction::Disconnect => {
            let _ = server.write_all(&frame[..half]);
            let _ = server.flush();
            false
        }
        ChaosAction::Garbage => {
            server
                .write_all(b"\x7b garbage not json \x00\xff\n")
                .is_ok()
                && server.write_all(frame).is_ok()
        }
    }
}

/// A way to corrupt one durable state file on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileChaos {
    /// Keep only the first half of the bytes (a torn write).
    Truncate,
    /// XOR the middle byte (silent media corruption).
    FlipByte,
    /// Replace the contents with nothing.
    Empty,
    /// Replace the contents with non-JSON garbage.
    Garbage,
    /// Replace the file with a same-named directory, so every later
    /// write, rename, or re-create of the path fails persistently — a
    /// sticky write error rather than one-shot corruption.
    DenyWrites,
}

/// Applies a [`FileChaos`] mode to a file in place.
///
/// # Errors
///
/// The underlying I/O error message when the file cannot be read or
/// rewritten.
pub fn corrupt_file(path: &Path, mode: FileChaos) -> Result<(), String> {
    let read = || fs::read(path).map_err(|e| format!("read {}: {e}", path.display()));
    let bytes = match mode {
        FileChaos::Truncate => {
            let b = read()?;
            b[..b.len() / 2].to_vec()
        }
        FileChaos::FlipByte => {
            let mut b = read()?;
            if b.is_empty() {
                return Err(format!("cannot flip a byte of empty {}", path.display()));
            }
            let mid = b.len() / 2;
            b[mid] ^= 0x20;
            b
        }
        FileChaos::Empty => Vec::new(),
        FileChaos::Garbage => b"\x00\xffnot json at all\x01garbage".to_vec(),
        FileChaos::DenyWrites => {
            let _ = fs::remove_file(path);
            return fs::create_dir_all(path)
                .map_err(|e| format!("deny-writes {}: {e}", path.display()));
        }
    };
    fs::write(path, bytes).map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_deterministic_and_seed_dependent() {
        let a = ChaosPlan {
            seed: 1,
            tear_per_mille: 150,
            disconnect_per_mille: 150,
            garbage_per_mille: 150,
            stall_per_mille: 150,
            ..ChaosPlan::default()
        };
        let b = ChaosPlan {
            seed: 2,
            ..a.clone()
        };
        let run = |p: &ChaosPlan| -> Vec<ChaosAction> {
            (0..400).map(|f| p.action(f / 8, f % 8)).collect()
        };
        assert_eq!(run(&a), run(&a), "same seed, same chaos");
        assert_ne!(run(&a), run(&b), "different seed, different chaos");
        let hits = run(&a).iter().filter(|&&x| x != ChaosAction::Pass).count();
        assert!((80..480).contains(&hits), "rate {hits} wildly off ~45%");
    }

    #[test]
    fn zero_rates_always_pass() {
        let plan = ChaosPlan::default();
        for conn in 0..20 {
            for frame in 0..20 {
                assert_eq!(plan.action(conn, frame), ChaosAction::Pass);
            }
        }
    }

    #[test]
    fn file_chaos_modes_change_the_bytes() {
        let dir = std::env::temp_dir().join(format!("seqwm-chaos-file-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for (i, mode) in [
            FileChaos::Truncate,
            FileChaos::FlipByte,
            FileChaos::Empty,
            FileChaos::Garbage,
        ]
        .into_iter()
        .enumerate()
        {
            let path = dir.join(format!("f{i}"));
            fs::write(&path, r#"{"v":1,"crc":"abc","payload":{}}"#).unwrap();
            corrupt_file(&path, mode).unwrap();
            let after = fs::read(&path).unwrap();
            assert_ne!(
                after,
                br#"{"v":1,"crc":"abc","payload":{}}"#.to_vec(),
                "{mode:?} must alter the file"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deny_writes_makes_the_path_unwritable() {
        let dir = std::env::temp_dir().join(format!("seqwm-chaos-deny-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.json");
        fs::write(&path, b"payload").unwrap();
        corrupt_file(&path, FileChaos::DenyWrites).unwrap();
        assert!(path.is_dir(), "the path must now be a directory");
        assert!(
            fs::write(&path, b"retry").is_err(),
            "writes onto the path must keep failing"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
