//! CRC-wrapped durable records and the quarantine protocol.
//!
//! Every state file the daemon trusts on restart — job journal
//! entries and result-cache entries — is written through this module
//! as a versioned envelope:
//!
//! ```json
//! {"v":1,"crc":"<fp64 of the payload's canonical rendering>","payload":{…}}
//! ```
//!
//! On load, a record whose bytes are unreadable, unparseable,
//! missing the envelope, version-mismatched, or checksum-mismatched
//! is **quarantined**: moved to `<state-dir>/quarantine/` (keeping
//! its name, with a numeric suffix on collision) and counted, never
//! trusted and never fatal. A torn write, a flipped bit, or an
//! operator's stray edit costs exactly one record — the daemon
//! starts, reports the count in `server.stats`, and the evidence
//! stays on disk for inspection.
//!
//! The checksum is recomputed from the *parsed* payload's rendering,
//! which works because [`seqwm_json`]'s emitter is canonical: member
//! order is preserved and `parse ∘ to_string` is the identity on
//! everything the daemon writes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use seqwm_explore::fp64;
use seqwm_json::Json;

/// Envelope format version; bumped on incompatible layout changes.
pub const STATE_VERSION: u64 = 1;

/// Why a durable record was rejected (and quarantined).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// The file could not be read at all.
    Unreadable(String),
    /// The bytes were not a valid envelope (bad JSON, missing
    /// fields, wrong version) — torn writes and truncation land here.
    Malformed(String),
    /// The envelope parsed but the payload does not hash to the
    /// recorded checksum — in-place corruption lands here.
    ChecksumMismatch {
        /// The checksum the envelope claims.
        recorded: String,
        /// The checksum the payload actually has.
        actual: String,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Unreadable(m) => write!(f, "unreadable: {m}"),
            RecordError::Malformed(m) => write!(f, "malformed envelope: {m}"),
            RecordError::ChecksumMismatch { recorded, actual } => {
                write!(f, "checksum mismatch: recorded {recorded}, actual {actual}")
            }
        }
    }
}

fn payload_crc(payload: &Json) -> String {
    format!("{:016x}", fp64(&payload.to_string()))
}

/// Wraps a payload in the versioned, checksummed envelope.
pub fn wrap(payload: &Json) -> Json {
    Json::obj(vec![
        ("v", Json::num(STATE_VERSION)),
        ("crc", Json::str(payload_crc(payload))),
        ("payload", payload.clone()),
    ])
}

/// Validates an envelope and returns its payload.
///
/// # Errors
///
/// A [`RecordError`] describing how the record failed validation.
pub fn unwrap(text: &str) -> Result<Json, RecordError> {
    let doc = Json::parse(text).map_err(RecordError::Malformed)?;
    let v = doc
        .get("v")
        .and_then(|v| v.as_u64("v").ok())
        .ok_or_else(|| RecordError::Malformed("missing version field".to_string()))?;
    if v != STATE_VERSION {
        return Err(RecordError::Malformed(format!(
            "unsupported envelope version {v} (expected {STATE_VERSION})"
        )));
    }
    let recorded = doc
        .get("crc")
        .and_then(|c| c.as_str("crc").ok())
        .ok_or_else(|| RecordError::Malformed("missing crc field".to_string()))?
        .to_string();
    let payload = doc
        .get("payload")
        .ok_or_else(|| RecordError::Malformed("missing payload field".to_string()))?;
    let actual = payload_crc(payload);
    if actual != recorded {
        return Err(RecordError::ChecksumMismatch { recorded, actual });
    }
    Ok(payload.clone())
}

/// Atomically writes `payload` (enveloped) to `path`, staging the
/// temp file in `path`'s directory so the rename never crosses a
/// filesystem. Best-effort: returns whether the write landed.
pub fn write_record(path: &Path, payload: &Json) -> bool {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("record");
    let tmp = dir.join(format!(".{stem}-{}.tmp", std::process::id()));
    let ok = fs::write(&tmp, wrap(payload).to_string())
        .and_then(|()| fs::rename(&tmp, path))
        .is_ok();
    if !ok {
        let _ = fs::remove_file(&tmp);
    }
    ok
}

/// Reads and validates the enveloped record at `path`.
///
/// # Errors
///
/// A [`RecordError`] when the file is missing, unreadable, or fails
/// envelope validation.
pub fn read_record(path: &Path) -> Result<Json, RecordError> {
    let text = fs::read_to_string(path).map_err(|e| RecordError::Unreadable(e.to_string()))?;
    unwrap(&text)
}

/// A quarantine destination: a directory files are moved into, plus a
/// running count for `server.stats`.
pub struct Quarantine {
    dir: PathBuf,
    count: AtomicU64,
}

impl Quarantine {
    /// A quarantine rooted at `dir` (created lazily on first use).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Quarantine {
            dir: dir.into(),
            count: AtomicU64::new(0),
        }
    }

    /// The quarantine directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Files quarantined so far (process lifetime).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Moves a corrupt file into the quarantine directory, keeping
    /// its name (suffixing `.1`, `.2`, … on collision). Counts the
    /// file even if every move attempt fails — the record was
    /// rejected either way — but falls back to deleting it so a
    /// permanently corrupt record cannot be re-ingested forever.
    pub fn take(&self, path: &Path) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if fs::create_dir_all(&self.dir).is_err() {
            let _ = fs::remove_file(path);
            return;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("corrupt")
            .to_string();
        let mut dest = self.dir.join(&name);
        let mut n = 0u32;
        while dest.exists() && n < 32 {
            n += 1;
            dest = self.dir.join(format!("{name}.{n}"));
        }
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("seqwm-serve-state-{}-{tag}", std::process::id()))
    }

    fn payload() -> Json {
        Json::obj(vec![
            ("id", Json::num(7)),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ])
    }

    #[test]
    fn wrap_unwrap_round_trips() {
        let text = wrap(&payload()).to_string();
        assert_eq!(unwrap(&text).unwrap(), payload());
    }

    #[test]
    fn corruption_classes_are_distinguished() {
        let text = wrap(&payload()).to_string();

        // Truncation: malformed.
        let torn = &text[..text.len() / 2];
        assert!(matches!(unwrap(torn), Err(RecordError::Malformed(_))));

        // Empty file: malformed.
        assert!(matches!(unwrap(""), Err(RecordError::Malformed(_))));

        // A flipped payload byte: checksum mismatch.
        let flipped = text.replace("true", "false");
        assert!(matches!(
            unwrap(&flipped),
            Err(RecordError::ChecksumMismatch { .. })
        ));

        // A bare (pre-envelope) document: malformed, not trusted.
        assert!(matches!(
            unwrap(&payload().to_string()),
            Err(RecordError::Malformed(_))
        ));

        // Wrong version: malformed.
        let versioned = text.replace("\"v\":1", "\"v\":999");
        assert!(matches!(unwrap(&versioned), Err(RecordError::Malformed(_))));
    }

    #[test]
    fn write_read_round_trips_on_disk() {
        let dir = temp_dir("rw");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rec.json");
        assert!(write_record(&path, &payload()));
        assert_eq!(read_record(&path).unwrap(), payload());
        // No stray temp files left behind.
        let leftovers = fs::read_dir(&dir).unwrap().flatten().count();
        assert_eq!(leftovers, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_and_counts() {
        let dir = temp_dir("quarantine");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let q = Quarantine::new(dir.join("quarantine"));
        for i in 0..2 {
            // Same file name both times: the second move collides and
            // must suffix, not clobber the first piece of evidence.
            let victim = dir.join("job-9.json");
            fs::write(&victim, format!("garbage {i}")).unwrap();
            q.take(&victim);
            assert!(!victim.exists(), "victim must be moved away");
        }
        assert_eq!(q.count(), 2);
        let names: Vec<String> = fs::read_dir(q.dir())
            .unwrap()
            .flatten()
            .filter_map(|f| f.file_name().to_str().map(str::to_string))
            .collect();
        assert_eq!(names.len(), 2, "both corrupt files kept: {names:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
