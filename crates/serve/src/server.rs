//! The daemon: a TCP listener speaking newline-delimited JSON-RPC,
//! a bounded FIFO job queue drained by worker threads, and the glue
//! between wire requests and the verification engines.
//!
//! Fault model: every job runs under `catch_unwind`, so a panicking
//! check becomes a structured `JOB_FAILED` error on that one job, not
//! a dead daemon (the engine additionally quarantines its *internal*
//! faults per the PR 2 fault model). Explore jobs run single-worker
//! with the engine's periodic checkpointing enabled; a killed daemon
//! restarted on the same state dir re-enqueues every journaled
//! non-terminal job, and an explore job whose checkpoint survived
//! resumes its frontier instead of starting over.
//!
//! Hostile-client model: the daemon defends itself at the socket
//! edge. Every connection carries a per-frame read deadline (a
//! slow-loris client that trickles bytes is evicted with
//! `SLOW_CLIENT` and disconnected), a frame-size ceiling
//! (`FRAME_TOO_LARGE`, then disconnect), and the accept loop enforces
//! a connection cap (`TOO_MANY_CONNS`, rejected before a handler
//! thread is spawned). Overload is shed at admission: a saturated
//! queue answers `OVERLOADED` with a `retry_after_ms` hint derived
//! from queue depth and recent job latency, and a draining daemon
//! (`server.shutdown {"drain": true}`) answers `DRAINING` while it
//! finishes running jobs and journals the queued remainder.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use seqwm_explore::counters::CounterSnapshot;
use seqwm_explore::{CheckpointSpec, ExploreWarning, SpillSpec};
use seqwm_fuzz::{run_campaign_with, CampaignEvent, FuzzConfig};
use seqwm_json::Json;
use seqwm_models::{plan_explore, ModelOpts, PlanReport};
use seqwm_opt::pipeline::{Pipeline as OptPipeline, PipelineConfig as OptPipelineConfig};
use seqwm_opt::{optimize_validated_with, ValidationCache, ValidationConfig};
use seqwm_promising::machine::ps_behaviors_refine;
use seqwm_promising::search::{engine_config, try_explore_engine};
use seqwm_promising::thread::PsConfig;
use seqwm_seq::{refines_advanced, refines_simple, RefineConfig, RefineError};

use crate::cache::ResultCache;
use crate::job::{
    cache_key, canceled_error, checkpoint_path, explore_programs, load_journal, model_choice,
    optimize_params, persist, refine_programs, JobBudgets, JobError, JobKind, JobRecord, JobState,
};
use crate::proto::{
    codes, error_response, notification, opt_bool, opt_u64, parse_request, req_str, response,
    Request, RpcError,
};
use crate::state::Quarantine;

/// How long blocked waits sleep between re-checking the stop flag.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// How many recent job latencies feed the `retry_after_ms` estimate.
const LATENCY_WINDOW: usize = 32;

/// Assumed per-job latency before any job has completed.
const DEFAULT_JOB_MS: u64 = 100;

/// Daemon configuration (the `seqwm serve` CLI maps onto this).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind (0 = ephemeral, reported on stdout).
    pub port: u16,
    /// Job worker threads.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions shed
    /// load with [`codes::OVERLOADED`] and a `retry_after_ms` hint.
    pub queue_depth: usize,
    /// State directory: job journal, engine checkpoints, result
    /// cache, fuzz corpora.
    pub state_dir: PathBuf,
    /// Result cache capacity (entries).
    pub cache_capacity: usize,
    /// Engine checkpoint cadence for explore jobs.
    pub checkpoint_every: Duration,
    /// Maximum simultaneously open client connections; excess
    /// connections are rejected with [`codes::TOO_MANY_CONNS`].
    pub max_conns: usize,
    /// Maximum inbound frame (request line) size in bytes; larger
    /// frames draw [`codes::FRAME_TOO_LARGE`] and a disconnect.
    pub max_frame_bytes: usize,
    /// Per-frame read deadline: a client that cannot deliver a
    /// complete newline-terminated frame within this window is
    /// evicted with [`codes::SLOW_CLIENT`]. Also used as the write
    /// timeout so a non-reading client cannot wedge a handler.
    pub read_timeout: Duration,
    /// How long a drain shutdown waits for running jobs before
    /// canceling the stragglers and stopping anyway.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 2,
            queue_depth: 64,
            state_dir: PathBuf::from(".seqwm-serve"),
            cache_capacity: 1024,
            checkpoint_every: Duration::from_millis(200),
            max_conns: 64,
            max_frame_bytes: 1 << 20,
            read_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// The mutable job table behind one mutex.
struct JobTable {
    next_id: u64,
    records: BTreeMap<u64, JobRecord>,
    queue: VecDeque<u64>,
}

/// Everything shared between the accept loop, connection threads, and
/// job workers.
struct Core {
    cfg: ServeConfig,
    addr: SocketAddr,
    jobs_dir: PathBuf,
    fuzz_dir: PathBuf,
    jobs: Mutex<JobTable>,
    /// Signaled when the queue gains a job (workers wait here).
    queue_cv: Condvar,
    /// Signaled on any job state/event change (waiters and streamers).
    update_cv: Condvar,
    cache: ResultCache,
    stop: AtomicBool,
    /// Set by `server.shutdown {"drain": true}`: reject new
    /// submissions, finish running jobs, then stop.
    draining: AtomicBool,
    /// Currently open client connections (accept-loop bookkeeping).
    conns: AtomicUsize,
    /// Corrupt journal entries moved aside at startup.
    journal_quarantine: Quarantine,
    /// Wall-clock latencies of recently completed jobs, feeding the
    /// `retry_after_ms` overload hint.
    latencies: Mutex<VecDeque<u64>>,
    started: Instant,
    counters_base: CounterSnapshot,
    /// Lossy visited-set downgrades taken by explore jobs since start
    /// (spilling is lossless and does not count).
    degradations: AtomicU64,
    /// Jobs served per chosen model backend (model-routed refine and
    /// explore jobs only), surfaced in `server.stats`.
    model_counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl Core {
    fn lock_jobs(&self) -> MutexGuard<'_, JobTable> {
        match self.jobs.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Flips the stop flag and wakes everything, including the accept
    /// loop (via a throwaway self-connection).
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let guard = self.lock_jobs();
        self.queue_cv.notify_all();
        self.update_cv.notify_all();
        drop(guard);
        let _ = TcpStream::connect(self.addr);
    }

    fn record_latency(&self, elapsed: Duration) {
        let mut lats = match self.latencies.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        lats.push_back(elapsed.as_millis() as u64);
        while lats.len() > LATENCY_WINDOW {
            lats.pop_front();
        }
    }

    /// Bumps the served-jobs counter for a chosen model backend.
    fn record_model(&self, name: &'static str) {
        let mut counts = match self.model_counts.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *counts.entry(name).or_insert(0) += 1;
    }

    /// How long a shed client should back off before resubmitting:
    /// the queue's expected service time under the recent average job
    /// latency, spread across the worker pool, clamped to a sane
    /// range.
    fn retry_after_ms(&self, queue_len: usize) -> u64 {
        let avg = {
            let lats = match self.latencies.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            if lats.is_empty() {
                DEFAULT_JOB_MS
            } else {
                lats.iter().sum::<u64>() / lats.len() as u64
            }
        };
        let workers = self.cfg.workers.max(1) as u64;
        ((queue_len as u64 + 1) * avg.max(1) / workers).clamp(10, 60_000)
    }
}

/// A running daemon.
pub struct Server {
    core: Arc<Core>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers journaled jobs from the state dir, and spawns
    /// the accept loop plus worker threads.
    ///
    /// # Errors
    ///
    /// A human-readable message when the socket cannot be bound or the
    /// state directory cannot be created.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let jobs_dir = cfg.state_dir.join("jobs");
        let fuzz_dir = cfg.state_dir.join("fuzz");
        for d in [&jobs_dir, &fuzz_dir] {
            fs::create_dir_all(d)
                .map_err(|e| format!("cannot create state dir {}: {e}", d.display()))?;
        }
        let quarantine_dir = cfg.state_dir.join("quarantine");
        let cache = ResultCache::open(
            cfg.state_dir.join("cache"),
            cfg.cache_capacity,
            &quarantine_dir,
        )?;
        let journal_quarantine = Quarantine::new(&quarantine_dir);
        let bind_to = (cfg.host.as_str(), cfg.port)
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {}:{}: {e}", cfg.host, cfg.port))?
            .next()
            .ok_or_else(|| format!("cannot resolve {}:{}", cfg.host, cfg.port))?;
        let listener = TcpListener::bind(bind_to)
            .map_err(|e| format!("cannot bind {}:{}: {e}", cfg.host, cfg.port))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;

        // Restart recovery: every journaled non-terminal job goes back
        // on the queue (oldest first); terminal jobs stay queryable.
        let mut table = JobTable {
            next_id: 1,
            records: BTreeMap::new(),
            queue: VecDeque::new(),
        };
        for rec in load_journal(&jobs_dir, &journal_quarantine) {
            table.next_id = table.next_id.max(rec.id + 1);
            if rec.state == JobState::Queued {
                table.queue.push_back(rec.id);
                persist(&jobs_dir, &rec);
            }
            table.records.insert(rec.id, rec);
        }

        let workers = cfg.workers.max(1);
        let core = Arc::new(Core {
            cfg,
            addr,
            jobs_dir,
            fuzz_dir,
            jobs: Mutex::new(table),
            queue_cv: Condvar::new(),
            update_cv: Condvar::new(),
            cache,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            journal_quarantine,
            latencies: Mutex::new(VecDeque::new()),
            started: Instant::now(),
            counters_base: CounterSnapshot::capture(),
            degradations: AtomicU64::new(0),
            model_counts: Mutex::new(BTreeMap::new()),
        });

        let worker_handles = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("seqwm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&core))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let accept_core = Arc::clone(&core);
        let accept = std::thread::Builder::new()
            .name("seqwm-serve-accept".to_string())
            .spawn(move || accept_loop(&accept_core, &listener))
            .map_err(|e| format!("cannot spawn accept loop: {e}"))?;

        Ok(Server {
            core,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Number of jobs recovered from the journal at startup.
    pub fn recovered_jobs(&self) -> usize {
        self.core
            .lock_jobs()
            .records
            .values()
            .filter(|r| r.recovered)
            .count()
    }

    /// Asks the daemon to stop (same path as the `server.shutdown`
    /// RPC).
    pub fn shutdown(&self) {
        self.core.begin_shutdown();
    }

    /// Blocks until the daemon has stopped and all threads joined.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Accept loop and connection handling
// ---------------------------------------------------------------------

/// Decrements the open-connection count when a handler exits, however
/// it exits.
struct ConnPermit<'a> {
    core: &'a Core,
}

impl Drop for ConnPermit<'_> {
    fn drop(&mut self) {
        self.core.conns.fetch_sub(1, Ordering::Relaxed);
    }
}

fn accept_loop(core: &Arc<Core>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if core.stopping() {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Connection cap: reject at the door, before spending a
        // thread. The rejected client gets a structured error line so
        // it can tell "server full" from "server dead".
        let open = core.conns.fetch_add(1, Ordering::Relaxed);
        if open >= core.cfg.max_conns {
            core.conns.fetch_sub(1, Ordering::Relaxed);
            let _ = stream.set_write_timeout(Some(core.cfg.read_timeout));
            let err = RpcError::new(
                codes::TOO_MANY_CONNS,
                format!("connection cap reached ({} open)", core.cfg.max_conns),
            );
            let _ = write_line(&mut stream, &error_response(&Json::Null, &err));
            continue;
        }
        let conn_core = Arc::clone(core);
        let spawned = std::thread::Builder::new()
            .name("seqwm-serve-conn".to_string())
            .spawn(move || {
                let permit = ConnPermit { core: &conn_core };
                handle_conn(&conn_core, stream);
                drop(permit);
            });
        if spawned.is_err() {
            core.conns.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

/// One read-side outcome of [`FrameReader::next_frame`].
enum Frame {
    /// A complete newline-terminated request line.
    Line(String),
    /// Clean EOF or an unrecoverable socket error.
    Closed,
    /// The per-frame deadline expired before a full line arrived
    /// (slow-loris, or an idle client holding a slot).
    TimedOut,
    /// The frame exceeded the configured size cap.
    TooLarge,
}

/// Deadline- and size-bounded line framing over a raw socket.
///
/// `BufReader::lines` would block forever on a client that sends half
/// a frame and stalls; this reader re-arms the socket read timeout
/// with the *remaining* deadline budget on every chunk, so the clock
/// covers the whole frame, not each byte.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame: usize,
    deadline: Duration,
}

impl FrameReader {
    fn new(stream: TcpStream, max_frame: usize, deadline: Duration) -> FrameReader {
        FrameReader {
            stream,
            buf: Vec::new(),
            max_frame,
            deadline,
        }
    }

    fn next_frame(&mut self) -> Frame {
        let started = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Frame::Line(String::from_utf8_lossy(&line[..pos]).into_owned());
            }
            if self.buf.len() > self.max_frame {
                return Frame::TooLarge;
            }
            let Some(remaining) = self.deadline.checked_sub(started.elapsed()) else {
                return Frame::TimedOut;
            };
            if self
                .stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .is_err()
            {
                return Frame::Closed;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Frame::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Frame::TimedOut;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Frame::Closed,
            }
        }
    }
}

/// Consumes (briefly, boundedly) whatever the evicted client already
/// sent, so closing the socket sends a clean FIN instead of an RST
/// that would destroy the structured error still in flight to them.
fn drain_input(stream: &mut TcpStream) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let mut buf = [0u8; 4096];
    let mut total = 0usize;
    while total < (1 << 20) {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

fn handle_conn(core: &Arc<Core>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    // A client that stops reading cannot wedge this handler forever:
    // writes share the read deadline.
    let _ = writer.set_write_timeout(Some(core.cfg.read_timeout));
    let mut reader = FrameReader::new(read_half, core.cfg.max_frame_bytes, core.cfg.read_timeout);
    loop {
        let line = match reader.next_frame() {
            Frame::Line(line) => line,
            Frame::Closed => break,
            Frame::TimedOut => {
                let err = RpcError::new(
                    codes::SLOW_CLIENT,
                    format!(
                        "no complete frame within {}ms; closing connection",
                        core.cfg.read_timeout.as_millis()
                    ),
                );
                let _ = write_line(&mut writer, &error_response(&Json::Null, &err));
                drain_input(&mut reader.stream);
                break;
            }
            Frame::TooLarge => {
                let err = RpcError::new(
                    codes::FRAME_TOO_LARGE,
                    format!(
                        "frame exceeds {} bytes; closing connection",
                        core.cfg.max_frame_bytes
                    ),
                );
                let _ = write_line(&mut writer, &error_response(&Json::Null, &err));
                drain_input(&mut reader.stream);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        if core.stopping() {
            break;
        }
        let req = match parse_request(&line) {
            Ok(r) => r,
            Err((id, e)) => {
                if !write_line(&mut writer, &error_response(&id, &e)) {
                    break;
                }
                continue;
            }
        };
        // A malformed `drain` param draws INVALID_PARAMS from dispatch
        // and must NOT stop the daemon.
        let shutdown = if req.method == "server.shutdown" {
            opt_bool(&req.params, "drain")
                .ok()
                .map(|d| d.unwrap_or(false))
        } else {
            None
        };
        let reply = match dispatch(core, &req, &mut writer) {
            Ok(result) => response(&req.id, result),
            Err(e) => error_response(&req.id, &e),
        };
        let wrote = write_line(&mut writer, &reply);
        match shutdown {
            Some(true) => {
                begin_drain(core);
                break;
            }
            Some(false) => {
                core.begin_shutdown();
                break;
            }
            None => {}
        }
        if !wrote {
            break;
        }
    }
}

fn dispatch(core: &Arc<Core>, req: &Request, writer: &mut TcpStream) -> Result<Json, RpcError> {
    match req.method.as_str() {
        "refine.check" => run_sync(core, JobKind::Refine, req.params.clone()),
        "explore.run" => run_sync(core, JobKind::Explore, req.params.clone()),
        "optimize.run" => run_sync(core, JobKind::Optimize, req.params.clone()),
        "fuzz.campaign" => {
            let (id, cached) = submit(core, JobKind::Fuzz, req.params.clone())?;
            Ok(Json::obj(vec![
                ("job", Json::num(id)),
                ("cached", Json::Bool(cached)),
            ]))
        }
        "job.submit" => {
            let kind = req_str(&req.params, "kind")?;
            let kind = JobKind::parse(&kind).ok_or_else(|| {
                RpcError::invalid_params(format!(
                    "kind: expected refine|explore|fuzz|optimize, got {kind:?}"
                ))
            })?;
            let (id, cached) = submit(core, kind, req.params.clone())?;
            Ok(Json::obj(vec![
                ("job", Json::num(id)),
                ("cached", Json::Bool(cached)),
            ]))
        }
        "job.status" => {
            let id = req_job(&req.params)?;
            let table = core.lock_jobs();
            let rec = table.records.get(&id).ok_or_else(|| unknown_job(id))?;
            Ok(rec.status_json())
        }
        "job.result" => {
            let id = req_job(&req.params)?;
            if opt_bool(&req.params, "wait")?.unwrap_or(true) {
                wait_terminal(core, id)?;
            }
            terminal_reply(core, id)
        }
        "job.cancel" => cancel_job(core, req_job(&req.params)?),
        "job.events" => {
            let id = req_job(&req.params)?;
            let from = opt_u64(&req.params, "from")?.unwrap_or(0) as usize;
            stream_events(core, id, from, writer)
        }
        "server.stats" => Ok(stats_json(core)),
        "server.shutdown" => {
            let drain = opt_bool(&req.params, "drain")?.unwrap_or(false);
            let (running, queued) = {
                let table = core.lock_jobs();
                let running = table
                    .records
                    .values()
                    .filter(|r| r.state == JobState::Running)
                    .count();
                (running, table.queue.len())
            };
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("drain", Json::Bool(drain)),
                ("running", Json::num(running as u64)),
                ("queued", Json::num(queued as u64)),
            ]))
        }
        other => Err(RpcError::new(
            codes::METHOD_NOT_FOUND,
            format!("unknown method {other:?}"),
        )),
    }
}

/// Starts a graceful drain: new submissions are rejected with
/// [`codes::DRAINING`], running jobs get up to `drain_timeout` to
/// finish (then their cancel flags flip), queued jobs stay journaled
/// as queued so the next start recovers them, and the daemon stops
/// once the running set is empty.
fn begin_drain(core: &Arc<Core>) {
    if core.draining.swap(true, Ordering::Relaxed) {
        return; // Already draining.
    }
    {
        let _guard = core.lock_jobs();
        core.queue_cv.notify_all();
        core.update_cv.notify_all();
    }
    let core = Arc::clone(core);
    let _ = std::thread::Builder::new()
        .name("seqwm-serve-drain".to_string())
        .spawn(move || {
            let deadline = Instant::now() + core.cfg.drain_timeout;
            loop {
                let running: Vec<Arc<AtomicBool>> = {
                    let table = core.lock_jobs();
                    table
                        .records
                        .values()
                        .filter(|r| r.state == JobState::Running)
                        .map(|r| Arc::clone(&r.cancel))
                        .collect()
                };
                if running.is_empty() {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    // Patience exhausted: cancel the stragglers.
                    for flag in &running {
                        flag.store(true, Ordering::Relaxed);
                    }
                }
                if now >= deadline + Duration::from_secs(5) {
                    // A job that ignores its cancel flag must not pin
                    // the process open forever.
                    break;
                }
                std::thread::sleep(WAIT_TICK);
            }
            core.begin_shutdown();
        });
}

fn req_job(params: &Json) -> Result<u64, RpcError> {
    opt_u64(params, "job")?.ok_or_else(|| RpcError::invalid_params("job: required job id"))
}

fn unknown_job(id: u64) -> RpcError {
    RpcError::new(codes::UNKNOWN_JOB, format!("no such job: {id}"))
}

// ---------------------------------------------------------------------
// Submission, waiting, cancel
// ---------------------------------------------------------------------

/// A `job.event` lifecycle marker (`queued`, `running`, `done`,
/// `failed`, `canceled`), pushed for every job kind.
fn lifecycle_event(state: JobState) -> Json {
    Json::obj(vec![
        ("type", Json::str("lifecycle")),
        ("state", Json::str(state.as_str())),
    ])
}

/// Validates, consults the result cache, and either completes the job
/// instantly (hit) or enqueues it. Returns `(id, cached)`.
///
/// Admission control happens here: a draining daemon answers
/// [`codes::DRAINING`], and a saturated queue answers
/// [`codes::OVERLOADED`] with a `retry_after_ms` hint so well-behaved
/// clients back off instead of hammering.
fn submit(core: &Arc<Core>, kind: JobKind, params: Json) -> Result<(u64, bool), RpcError> {
    if core.draining() || core.stopping() {
        return Err(RpcError::new(
            codes::DRAINING,
            "server is draining; queued work is journaled for the next start",
        ));
    }
    let key = cache_key(kind, &params)?;
    let hit = key.as_deref().and_then(|k| core.cache.get(k));
    let mut table = core.lock_jobs();
    if hit.is_none() && table.queue.len() >= core.cfg.queue_depth {
        let depth = table.queue.len();
        drop(table);
        let retry = core.retry_after_ms(depth);
        return Err(RpcError::new(
            codes::OVERLOADED,
            format!("queue full ({depth} jobs waiting); retry in {retry}ms"),
        )
        .with_data(Json::obj(vec![
            ("retry_after_ms", Json::num(retry)),
            ("queue_depth", Json::num(depth as u64)),
            ("queue_capacity", Json::num(core.cfg.queue_depth as u64)),
        ])));
    }
    let id = table.next_id;
    table.next_id += 1;
    let mut rec = JobRecord::new(id, kind, params);
    rec.events.push(lifecycle_event(JobState::Queued));
    let cached = if let Some(result) = hit {
        rec.state = JobState::Done;
        rec.result = Some(result);
        rec.cached = true;
        rec.events.push(lifecycle_event(JobState::Done));
        true
    } else {
        false
    };
    persist(&core.jobs_dir, &rec);
    table.records.insert(id, rec);
    if cached {
        core.update_cv.notify_all();
    } else {
        table.queue.push_back(id);
        core.queue_cv.notify_all();
        core.update_cv.notify_all();
    }
    drop(table);
    Ok((id, cached))
}

/// Submits and blocks until the job is terminal, then replies as if
/// `job.result` had been called.
fn run_sync(core: &Arc<Core>, kind: JobKind, params: Json) -> Result<Json, RpcError> {
    let (id, _) = submit(core, kind, params)?;
    wait_terminal(core, id)?;
    terminal_reply(core, id)
}

fn wait_terminal(core: &Arc<Core>, id: u64) -> Result<(), RpcError> {
    let mut table = core.lock_jobs();
    loop {
        match table.records.get(&id) {
            None => return Err(unknown_job(id)),
            Some(r) if r.state.is_terminal() => return Ok(()),
            Some(_) => {}
        }
        if core.stopping() {
            return Err(RpcError::new(codes::JOB_FAILED, "server shutting down"));
        }
        table = match core.update_cv.wait_timeout(table, WAIT_TICK) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

/// The final reply for a terminal job: its result on `Done`, its
/// structured error otherwise.
fn terminal_reply(core: &Arc<Core>, id: u64) -> Result<Json, RpcError> {
    let table = core.lock_jobs();
    let rec = table.records.get(&id).ok_or_else(|| unknown_job(id))?;
    match rec.state {
        JobState::Done => {
            let mut fields = vec![
                ("job".to_string(), Json::num(id)),
                ("cached".to_string(), Json::Bool(rec.cached)),
                ("recovered".to_string(), Json::Bool(rec.recovered)),
            ];
            fields.push((
                "result".to_string(),
                rec.result.clone().unwrap_or(Json::Null),
            ));
            Ok(Json::Obj(fields))
        }
        _ => {
            let e = rec.error.clone().unwrap_or_else(canceled_error);
            let mut err = RpcError::new(e.code, e.message);
            if let Some(d) = e.data {
                err = err.with_data(d);
            }
            Err(err)
        }
    }
}

fn cancel_job(core: &Arc<Core>, id: u64) -> Result<Json, RpcError> {
    let mut table = core.lock_jobs();
    let pos = table.queue.iter().position(|&q| q == id);
    let rec = table.records.get_mut(&id).ok_or_else(|| unknown_job(id))?;
    match rec.state {
        JobState::Queued => {
            rec.state = JobState::Canceled;
            rec.error = Some(canceled_error());
            rec.cancel.store(true, Ordering::Relaxed);
            rec.events.push(lifecycle_event(JobState::Canceled));
            let snapshot = rec.status_json();
            persist(&core.jobs_dir, rec);
            if let Some(i) = pos {
                table.queue.remove(i);
            }
            core.update_cv.notify_all();
            Ok(snapshot)
        }
        JobState::Running => {
            // Cooperative: the worker observes the flag (fuzz at the
            // next case boundary) and finalizes as canceled.
            rec.cancel.store(true, Ordering::Relaxed);
            Ok(rec.status_json())
        }
        _ => Ok(rec.status_json()),
    }
}

// ---------------------------------------------------------------------
// Event streaming
// ---------------------------------------------------------------------

/// Replays recorded events from `from`, then follows live ones, each
/// as a `job.event` notification; returns the final summary once the
/// job is terminal.
fn stream_events(
    core: &Arc<Core>,
    id: u64,
    from: usize,
    writer: &mut TcpStream,
) -> Result<Json, RpcError> {
    let mut next = from;
    let mut table = core.lock_jobs();
    loop {
        let (batch, state) = {
            let rec = table.records.get(&id).ok_or_else(|| unknown_job(id))?;
            let batch: Vec<Json> = rec.events.get(next..).unwrap_or(&[]).to_vec();
            (batch, rec.state)
        };
        if !batch.is_empty() {
            drop(table);
            for ev in batch {
                let line = notification(
                    "job.event",
                    Json::obj(vec![
                        ("job", Json::num(id)),
                        ("seq", Json::num(next as u64)),
                        ("event", ev),
                    ]),
                );
                if !write_line(writer, &line) {
                    return Err(RpcError::new(codes::JOB_FAILED, "client went away"));
                }
                next += 1;
            }
            table = core.lock_jobs();
            continue;
        }
        if state.is_terminal() || core.stopping() {
            drop(table);
            return Ok(Json::obj(vec![
                ("job", Json::num(id)),
                ("state", Json::str(state.as_str())),
                ("delivered", Json::num(next.saturating_sub(from) as u64)),
            ]));
        }
        table = match core.update_cv.wait_timeout(table, WAIT_TICK) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

fn stats_json(core: &Arc<Core>) -> Json {
    let table = core.lock_jobs();
    let mut by_state = [0u64; 5];
    for r in table.records.values() {
        let i = match r.state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Canceled => 4,
        };
        by_state[i] += 1;
    }
    let queue_len = table.queue.len();
    let total = table.records.len();
    drop(table);
    let cache = core.cache.stats();
    let models: Vec<(String, Json)> = {
        let counts = match core.model_counts.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        counts
            .iter()
            .map(|(name, n)| ((*name).to_string(), Json::num(*n)))
            .collect()
    };
    let delta = CounterSnapshot::capture().since(&core.counters_base);
    let counters = delta
        .entries()
        .iter()
        .map(|(name, v)| ((*name).to_string(), Json::num(*v)))
        .collect();
    Json::obj(vec![
        ("addr", Json::str(core.addr.to_string())),
        (
            "uptime_ms",
            Json::num(core.started.elapsed().as_millis() as u64),
        ),
        ("workers", Json::num(core.cfg.workers as u64)),
        (
            "queue",
            Json::obj(vec![
                ("depth", Json::num(queue_len as u64)),
                ("capacity", Json::num(core.cfg.queue_depth as u64)),
            ]),
        ),
        (
            "jobs",
            Json::obj(vec![
                ("total", Json::num(total as u64)),
                ("queued", Json::num(by_state[0])),
                ("running", Json::num(by_state[1])),
                ("done", Json::num(by_state[2])),
                ("failed", Json::num(by_state[3])),
                ("canceled", Json::num(by_state[4])),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::num(cache.hits)),
                ("misses", Json::num(cache.misses)),
                ("evictions", Json::num(cache.evictions)),
                ("entries", Json::num(cache.entries as u64)),
            ]),
        ),
        (
            "quarantine",
            Json::obj(vec![
                ("journal", Json::num(core.journal_quarantine.count())),
                ("cache", Json::num(cache.quarantined)),
            ]),
        ),
        (
            "connections",
            Json::obj(vec![
                ("open", Json::num(core.conns.load(Ordering::Relaxed) as u64)),
                ("max", Json::num(core.cfg.max_conns as u64)),
            ]),
        ),
        ("draining", Json::Bool(core.draining())),
        (
            "degradations",
            Json::num(core.degradations.load(Ordering::Relaxed)),
        ),
        ("models", Json::Obj(models)),
        ("counters", Json::Obj(counters)),
    ])
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(core: &Arc<Core>) {
    loop {
        let id = {
            let mut table = core.lock_jobs();
            loop {
                if core.stopping() {
                    return;
                }
                // A draining daemon finishes what is running but
                // leaves the queue journaled for the next start.
                if !core.draining() {
                    if let Some(id) = table.queue.pop_front() {
                        break id;
                    }
                }
                table = match core.queue_cv.wait_timeout(table, WAIT_TICK) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        execute(core, id);
    }
}

fn execute(core: &Arc<Core>, id: u64) {
    let Some((kind, params, cancel)) = ({
        let mut table = core.lock_jobs();
        let picked = table.records.get_mut(&id).map(|rec| {
            rec.state = JobState::Running;
            rec.events.push(lifecycle_event(JobState::Running));
            persist(&core.jobs_dir, rec);
            (rec.kind, rec.params.clone(), Arc::clone(&rec.cancel))
        });
        drop(table);
        if picked.is_some() {
            core.update_cv.notify_all();
        }
        picked
    }) else {
        return;
    };

    let job_started = Instant::now();
    let outcome = if cancel.load(Ordering::Relaxed) {
        Err(canceled_error())
    } else {
        match catch_unwind(AssertUnwindSafe(|| {
            run_job(core, id, kind, &params, &cancel)
        })) {
            Ok(r) => r,
            Err(payload) => Err(JobError {
                code: codes::JOB_FAILED,
                message: format!("job panicked: {}", panic_text(payload.as_ref())),
                data: None,
            }),
        }
    };

    // Definitive successes feed the result cache before finalizing.
    if let Ok(result) = &outcome {
        if cacheable(kind, result) {
            if let Ok(Some(key)) = cache_key(kind, &params) {
                core.cache.put(&key, result);
            }
        }
    }

    core.record_latency(job_started.elapsed());

    let mut table = core.lock_jobs();
    if let Some(rec) = table.records.get_mut(&id) {
        match outcome {
            _ if cancel.load(Ordering::Relaxed) => {
                rec.state = JobState::Canceled;
                rec.error = Some(canceled_error());
            }
            Ok(result) => {
                rec.state = JobState::Done;
                rec.result = Some(result);
            }
            Err(e) => {
                rec.state = JobState::Failed;
                rec.error = Some(e);
            }
        }
        rec.events.push(lifecycle_event(rec.state));
        persist(&core.jobs_dir, rec);
    }
    drop(table);
    // Terminal explore jobs never resume, so their spill shards (and
    // any quarantined segments) are dead weight on disk.
    if kind == JobKind::Explore {
        let _ = fs::remove_dir_all(spill_dir(core, id));
    }
    core.update_cv.notify_all();
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Done results safe to serve to a future identical submission: any
/// refine verdict (budget trips are `Failed`, never `Done`), and
/// explore runs that completed their whole frontier in one life
/// (truncated or resumed runs carry run-specific statistics).
fn cacheable(kind: JobKind, result: &Json) -> bool {
    match kind {
        JobKind::Refine => true,
        JobKind::Explore => {
            matches!(result.get("stop"), Some(Json::Str(s)) if s == "completed")
                && matches!(result.get("resumed"), Some(Json::Bool(false)))
        }
        JobKind::Fuzz => false,
        // A "validated" verdict is budget-independent (a bigger budget
        // cannot un-discharge an obligation); refuted/inconclusive
        // verdicts surface as job errors and are never stored.
        JobKind::Optimize => {
            matches!(result.get("verdict"), Some(Json::Str(s)) if s == "validated")
        }
    }
}

fn run_job(
    core: &Arc<Core>,
    id: u64,
    kind: JobKind,
    params: &Json,
    cancel: &Arc<AtomicBool>,
) -> Result<Json, JobError> {
    let budgets = JobBudgets::from_params(params).map_err(JobError::from_rpc)?;
    match kind {
        JobKind::Refine => run_refine(core, params, &budgets),
        JobKind::Explore => run_explore(core, id, params, &budgets),
        JobKind::Fuzz => run_fuzz(core, id, params, cancel),
        JobKind::Optimize => run_optimize(core, params, &budgets),
    }
}

// ---------------------------------------------------------------------
// Model-routed execution (the `model` param)
// ---------------------------------------------------------------------

/// Maps job budgets onto the model planner's bounds. Planner runs are
/// in-memory only: checkpoint/spill durability does not apply to them
/// (the checker scans are not resumable), and they run single-worker
/// like every other job.
fn model_opts(budgets: &JobBudgets) -> ModelOpts {
    let mut opts = ModelOpts::default();
    if let Some(s) = budgets.max_states {
        opts.ps.max_states = s as usize;
        opts.sc.max_states = s as usize;
    }
    opts
}

/// One LDRF checker verdict as a result-object entry.
fn check_json(c: &seqwm_models::LdrfOutcome) -> Json {
    let mut fields = vec![
        ("level".to_string(), Json::str(c.level.name())),
        ("verdict".to_string(), Json::str(c.verdict.to_string())),
        ("states".to_string(), Json::num(c.states as u64)),
    ];
    if let Some(w) = &c.witness {
        fields.push(("witness".to_string(), Json::str(w.clone())));
    }
    Json::Obj(fields)
}

/// The shared result fields of a planner run (explore jobs extend
/// these with `stop`/`resumed` so the cacheability rule applies).
fn plan_json(requested: seqwm_models::ModelChoice, report: &PlanReport) -> Vec<(String, Json)> {
    vec![
        ("model_requested".to_string(), Json::str(requested.name())),
        ("model".to_string(), Json::str(report.chosen.name())),
        (
            "checks".to_string(),
            Json::Arr(report.checks.iter().map(check_json).collect()),
        ),
        ("scan_reused".to_string(), Json::Bool(report.reused_scan)),
        (
            "states".to_string(),
            Json::num(report.exploration.states as u64),
        ),
        (
            "checker_states".to_string(),
            Json::num(report.checker_states as u64),
        ),
        (
            "total_states".to_string(),
            Json::num(report.total_states() as u64),
        ),
        (
            "behaviors".to_string(),
            Json::num(report.exploration.behaviors.len() as u64),
        ),
        ("truncated".to_string(), Json::Bool(!report.complete())),
    ]
}

// ---------------------------------------------------------------------
// Job execution: refine
// ---------------------------------------------------------------------

fn refine_error(e: &RefineError) -> JobError {
    match e {
        RefineError::Truncated { configs } => JobError {
            code: codes::BUDGET_EXHAUSTED,
            message: "simulation fuel exhausted".to_string(),
            data: Some(Json::obj(vec![
                ("budget", Json::str("fuel")),
                ("configs", Json::num(*configs as u64)),
            ])),
        },
        other => JobError {
            code: codes::JOB_FAILED,
            message: other.to_string(),
            data: None,
        },
    }
}

fn refine_result(
    verdict: &str,
    method: &str,
    configs: usize,
    behaviors: usize,
    counterexample: Option<String>,
) -> Json {
    let mut fields = vec![
        ("verdict".to_string(), Json::str(verdict)),
        ("method".to_string(), Json::str(method)),
        ("configs".to_string(), Json::num(configs as u64)),
        ("behaviors".to_string(), Json::num(behaviors as u64)),
    ];
    if let Some(c) = counterexample {
        fields.push(("counterexample".to_string(), Json::str(c)));
    }
    Json::Obj(fields)
}

fn run_refine(core: &Arc<Core>, params: &Json, budgets: &JobBudgets) -> Result<Json, JobError> {
    let (src, tgt) = refine_programs(params).map_err(JobError::from_rpc)?;
    let choice = model_choice(params).map_err(JobError::from_rpc)?;
    let mut cfg = RefineConfig {
        max_fuel: budgets.fuel,
        ..RefineConfig::default()
    };
    if let Some(ms) = opt_u64(params, "max_steps").map_err(JobError::from_rpc)? {
        cfg.max_steps = ms as usize;
    }
    let simple = refines_simple(&src, &tgt, &cfg).map_err(|e| refine_error(&e))?;
    let mut result = if simple.holds {
        refine_result("holds", "simple", simple.configs, simple.behaviors, None)
    } else {
        // The simple check over-refutes (it quantifies over too few
        // environments); escalate to the oracle-quantified advanced
        // check before trusting the counterexample.
        let adv = refines_advanced(&src, &tgt, &cfg).map_err(|e| refine_error(&e))?;
        if adv.holds {
            refine_result("holds", "advanced", adv.configs, simple.behaviors, None)
        } else {
            refine_result(
                "refuted",
                "advanced",
                adv.configs,
                simple.behaviors,
                simple.counterexample.map(|c| c.to_string()),
            )
        }
    };
    // Model-level behavioral cross-check: enumerate both programs
    // under the requested backend (or the DRF-gated ladder) and check
    // closed-program behavioral refinement tgt ⊑ src there. This is a
    // second, independent verdict — it neither overrides nor gates
    // the SEQ verdict above.
    if let Some(choice) = choice {
        let opts = model_opts(budgets);
        let src_rep = plan_explore(std::slice::from_ref(&src), choice, &opts);
        let tgt_rep = plan_explore(std::slice::from_ref(&tgt), choice, &opts);
        core.record_model(tgt_rep.chosen.name());
        let verdict = if !src_rep.complete() || !tgt_rep.complete() {
            "inconclusive"
        } else if ps_behaviors_refine(
            &tgt_rep.exploration.behaviors,
            &src_rep.exploration.behaviors,
        )
        .is_ok()
        {
            "holds"
        } else {
            "refuted"
        };
        if let Json::Obj(fields) = &mut result {
            fields.push(("model_requested".to_string(), Json::str(choice.name())));
            fields.push(("model".to_string(), Json::str(tgt_rep.chosen.name())));
            fields.push(("model_verdict".to_string(), Json::str(verdict)));
        }
    }
    Ok(result)
}

// ---------------------------------------------------------------------
// Job execution: optimize
// ---------------------------------------------------------------------

fn run_optimize(core: &Arc<Core>, params: &Json, budgets: &JobBudgets) -> Result<Json, JobError> {
    let p = optimize_params(params).map_err(JobError::from_rpc)?;
    let pipeline = OptPipelineConfig {
        passes: p.passes.clone(),
        rounds: p.rounds as usize,
    };
    if !p.validate {
        let out = OptPipeline::new(pipeline).optimize(&p.program);
        return Ok(Json::obj(vec![
            ("verdict", Json::str("optimized")),
            ("program", Json::str(out.program.to_string())),
            ("rewrites", Json::num(out.total_rewrites() as u64)),
        ]));
    }
    let mut vcfg = ValidationConfig {
        contexts: p.contexts.clone(),
        ..ValidationConfig::default()
    };
    if let Some(s) = budgets.max_states {
        vcfg.ps.max_states = s as usize;
    }
    if let Some(ms) = budgets.deadline_ms {
        vcfg.deadline = Some(Duration::from_millis(ms));
    }
    // The daemon-wide validation memo cache lives beside the result
    // cache. Each job opens its own handle; entries are
    // content-addressed, so a lost race between concurrent jobs costs
    // one redundant check, never a wrong verdict. An unusable dir just
    // means validating uncached.
    let memo = ValidationCache::open(core.cfg.state_dir.join("opt-memo"), 4096).ok();
    match optimize_validated_with(&p.program, pipeline, &vcfg, memo.as_ref()) {
        Ok(v) => {
            let stages: Vec<Json> = v
                .validations
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("pass", Json::str(s.pass.to_string())),
                        ("by", Json::str(s.by.name())),
                        ("cached", Json::Bool(s.cached)),
                    ])
                })
                .collect();
            Ok(Json::obj(vec![
                ("verdict", Json::str("validated")),
                ("program", Json::str(v.result.program.to_string())),
                ("rewrites", Json::num(v.result.total_rewrites() as u64)),
                ("cached_stages", Json::num(v.cached_stages() as u64)),
                ("stages", Json::Arr(stages)),
            ]))
        }
        Err(fail) => Err(JobError {
            code: codes::JOB_FAILED,
            message: format!(
                "pass {} failed {} validation: {}",
                fail.pass,
                fail.pass.obligation(),
                fail.detail
            ),
            data: Some(Json::obj(vec![
                ("pass", Json::str(fail.pass.to_string())),
                ("detail", Json::str(fail.detail.clone())),
            ])),
        }),
    }
}

// ---------------------------------------------------------------------
// Job execution: explore
// ---------------------------------------------------------------------

/// Per-job spill directory: survives a daemon crash (so a resumed job
/// re-adopts its shards) and is removed once the job is terminal.
fn spill_dir(core: &Core, id: u64) -> PathBuf {
    core.cfg.state_dir.join("spill").join(format!("job-{id}"))
}

fn run_explore(
    core: &Arc<Core>,
    id: u64,
    params: &Json,
    budgets: &JobBudgets,
) -> Result<Json, JobError> {
    let progs = explore_programs(params).map_err(JobError::from_rpc)?;
    // Model-routed explore: the DRF-gated planner (or a fixed backend)
    // replaces the durable engine path. Planner runs are bounded and
    // in-memory — no checkpoint, no spill, no resume — so the result
    // carries `stop`/`resumed` to keep the cacheability rule uniform.
    if let Some(choice) = model_choice(params).map_err(JobError::from_rpc)? {
        let report = plan_explore(&progs, choice, &model_opts(budgets));
        core.record_model(report.chosen.name());
        let mut fields = plan_json(choice, &report);
        fields.push((
            "stop".to_string(),
            Json::str(if report.complete() {
                "completed"
            } else {
                "truncated"
            }),
        ));
        fields.push(("resumed".to_string(), Json::Bool(false)));
        return Ok(Json::Obj(fields));
    }
    let promises = opt_bool(params, "promises")
        .map_err(JobError::from_rpc)?
        .unwrap_or(false);
    let reduction = opt_bool(params, "reduction")
        .map_err(JobError::from_rpc)?
        .unwrap_or(true);
    let ps = if promises {
        let refs: Vec<&seqwm_lang::Program> = progs.iter().collect();
        PsConfig::with_promises(&refs)
    } else {
        PsConfig::default()
    };
    let mut ecfg = engine_config(&ps);
    ecfg.reduction = reduction;
    // Checkpoint-backed durability wants the deterministic
    // single-worker frontier (the engine requires it for periodic
    // saves); per-job parallelism comes from the daemon's worker pool.
    ecfg.workers = 1;
    if let Some(ms) = budgets.deadline_ms {
        ecfg.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(mb) = budgets.max_memory_mb {
        ecfg.max_memory = Some((mb as usize).saturating_mul(1024 * 1024));
    }
    if let Some(s) = budgets.max_states {
        ecfg.max_states = s as usize;
    }
    // Out-of-core: spill cold visited/frontier shards to disk before
    // the engine takes a lossy visited-set downgrade. The budget
    // defaults to the memory ceiling (or the engine's 64 MiB floor).
    let mut spec = SpillSpec::new(spill_dir(core, id));
    if let Some(mb) = budgets.spill_budget_mb {
        spec = spec.budget_bytes((mb as usize).saturating_mul(1024 * 1024));
    }
    ecfg.spill = Some(spec);
    let ckpt = checkpoint_path(&core.jobs_dir, id);
    ecfg.checkpoint = Some(CheckpointSpec::new(ckpt.clone()).every(core.cfg.checkpoint_every));
    let resumed_from_disk = ckpt.exists();
    if resumed_from_disk {
        ecfg.resume = Some(ckpt.clone());
    }
    let e = try_explore_engine(&progs, &ps, &ecfg).map_err(|err| JobError {
        code: codes::JOB_FAILED,
        message: err.to_string(),
        data: None,
    })?;
    // The frontier is spent; drop the checkpoint so a *future* restart
    // does not resurrect a finished job's state.
    let _ = fs::remove_file(&ckpt);
    let s = &e.stats;
    core.degradations
        .fetch_add(s.downgrades as u64, Ordering::Relaxed);
    // The last rung the visited set was forced down to, if any.
    let degraded_to = s.warnings.iter().rev().find_map(|w| match w {
        ExploreWarning::MemoryDowngrade { to, .. } => Some(*to),
        _ => None,
    });
    let mut fields = vec![
        ("states".to_string(), Json::num(s.states as u64)),
        ("transitions".to_string(), Json::num(s.transitions as u64)),
        ("behaviors".to_string(), Json::num(e.behaviors.len() as u64)),
        ("truncated".to_string(), Json::Bool(s.truncated)),
        ("stop".to_string(), Json::str(s.stop.to_string())),
        ("resumed".to_string(), Json::Bool(s.resumed)),
        (
            "checkpoint_saves".to_string(),
            Json::num(s.checkpoint_saves as u64),
        ),
        ("incidents".to_string(), Json::num(s.incident_count as u64)),
        (
            "elapsed_ms".to_string(),
            Json::num(s.elapsed.as_millis() as u64),
        ),
        ("downgrades".to_string(), Json::num(s.downgrades as u64)),
        ("warnings".to_string(), Json::num(s.warnings.len() as u64)),
        (
            "spill".to_string(),
            Json::obj(vec![
                ("shards", Json::num(s.spill_shards)),
                ("bytes", Json::num(s.spill_bytes)),
                ("probes", Json::num(s.spill_probes)),
                ("hits", Json::num(s.spill_hits)),
                ("quarantined", Json::num(s.spill_quarantined)),
            ]),
        ),
    ];
    if let Some(to) = degraded_to {
        fields.push(("degraded_to".to_string(), Json::str(to)));
    }
    Ok(Json::Obj(fields))
}

// ---------------------------------------------------------------------
// Job execution: fuzz
// ---------------------------------------------------------------------

fn event_json(ev: &CampaignEvent) -> Json {
    match ev {
        CampaignEvent::Progress {
            completed,
            cases,
            violations,
            incidents,
            states,
        } => Json::obj(vec![
            ("type", Json::str("progress")),
            ("completed", Json::num(*completed as u64)),
            ("cases", Json::num(*cases as u64)),
            ("violations", Json::num(*violations as u64)),
            ("incidents", Json::num(*incidents as u64)),
            ("states", Json::num(*states as u64)),
        ]),
        CampaignEvent::Failure(f) => Json::obj(vec![
            ("type", Json::str("failure")),
            ("fingerprint", Json::str(format!("{:016x}", f.fingerprint))),
            ("target", Json::str(f.target.to_string())),
            ("oracle", Json::str(f.oracle.to_string())),
            ("path", Json::str(f.path.display().to_string())),
            ("original_stmts", Json::num(f.original_stmts as u64)),
            ("shrunk_stmts", Json::num(f.shrunk_stmts as u64)),
        ]),
    }
}

fn run_fuzz(
    core: &Arc<Core>,
    id: u64,
    params: &Json,
    cancel: &Arc<AtomicBool>,
) -> Result<Json, JobError> {
    let get = |k: &str| opt_u64(params, k).map_err(JobError::from_rpc);
    let defaults = FuzzConfig::default();
    let cfg = FuzzConfig {
        cases: get("cases")?.map_or(defaults.cases, |v| v as usize),
        seed: get("seed")?.unwrap_or(defaults.seed),
        workers: get("workers")?.map_or(1, |v| (v as usize).max(1)),
        corpus_dir: core.fuzz_dir.join(format!("job-{id}")),
        max_failures: get("max_failures")?.map_or(defaults.max_failures, |v| v as usize),
        stop: Some(Arc::clone(cancel)),
        ..defaults
    };
    let sink = |ev: &CampaignEvent| {
        let doc = event_json(ev);
        let mut table = core.lock_jobs();
        if let Some(rec) = table.records.get_mut(&id) {
            rec.events.push(doc);
        }
        drop(table);
        core.update_cv.notify_all();
    };
    let summary = run_campaign_with(&cfg, &sink).map_err(|e| JobError {
        code: codes::JOB_FAILED,
        message: e,
        data: None,
    })?;
    Json::parse(&summary.to_json()).map_err(|e| JobError {
        code: codes::JOB_FAILED,
        message: format!("summary rendering failed: {e}"),
        data: None,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A tiny blocking client for the tests: one connection, one
    /// request per call, skipping any interleaved notifications.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
        next_id: u64,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
                next_id: 1,
            }
        }

        fn send_raw(&mut self, line: &str) {
            self.writer.write_all(line.as_bytes()).unwrap();
            self.writer.write_all(b"\n").unwrap();
            self.writer.flush().unwrap();
        }

        fn read_doc(&mut self) -> Json {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            assert!(!line.is_empty(), "server closed the connection");
            Json::parse(line.trim()).unwrap()
        }

        /// Sends a request and returns its response, collecting any
        /// notifications that arrive first.
        fn call_collect(&mut self, method: &str, params: Json) -> (Json, Vec<Json>) {
            let id = self.next_id;
            self.next_id += 1;
            let req = Json::obj(vec![
                ("jsonrpc", Json::str("2.0")),
                ("id", Json::num(id)),
                ("method", Json::str(method)),
                ("params", params),
            ]);
            self.send_raw(&req.to_string());
            let mut notes = Vec::new();
            loop {
                let doc = self.read_doc();
                if doc.get("id").is_some() {
                    return (doc, notes);
                }
                notes.push(doc);
            }
        }

        fn call(&mut self, method: &str, params: Json) -> Json {
            self.call_collect(method, params).0
        }
    }

    fn result_of(doc: &Json) -> &Json {
        doc.get("result")
            .unwrap_or_else(|| panic!("expected result, got {doc}"))
    }

    fn error_code(doc: &Json) -> i64 {
        let e = doc
            .get("error")
            .unwrap_or_else(|| panic!("expected error, got {doc}"));
        match e.get("code").unwrap() {
            Json::Num(n) => *n as i64,
            other => panic!("non-numeric code {other}"),
        }
    }

    fn test_server(tag: &str) -> (Server, PathBuf) {
        test_server_with(tag, |_| {})
    }

    fn test_server_with(tag: &str, tweak: impl FnOnce(&mut ServeConfig)) -> (Server, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("seqwm-serve-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut cfg = ServeConfig {
            state_dir: dir.clone(),
            ..ServeConfig::default()
        };
        tweak(&mut cfg);
        let server = Server::start(cfg).unwrap();
        (server, dir)
    }

    fn stop(server: Server, dir: &PathBuf) {
        server.shutdown();
        server.wait();
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn refine_check_round_trip_and_cache_hit() {
        let (server, dir) = test_server("refine");
        let mut c = Client::connect(server.addr());
        let params = Json::obj(vec![
            ("src", Json::str("a := load[rlx](x); return a;")),
            ("tgt", Json::str("a := load[rlx](x); return a;")),
        ]);
        let doc = c.call("refine.check", params.clone());
        let r = result_of(&doc);
        assert_eq!(
            r.get("result").unwrap().get("verdict").unwrap(),
            &Json::str("holds")
        );
        assert_eq!(r.get("cached").unwrap(), &Json::Bool(false));

        // Identical resubmission must be a cache hit.
        let doc = c.call("refine.check", params);
        let r = result_of(&doc);
        assert_eq!(r.get("cached").unwrap(), &Json::Bool(true));

        let stats = c.call("server.stats", Json::obj(vec![]));
        let cache = result_of(&stats).get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap(), &Json::num(1));
        stop(server, &dir);
    }

    #[test]
    fn refuted_refinement_carries_a_counterexample() {
        let (server, dir) = test_server("refuted");
        let mut c = Client::connect(server.addr());
        let doc = c.call(
            "refine.check",
            Json::obj(vec![
                // Reordering a release store past a relaxed load is
                // observable: not a refinement.
                (
                    "src",
                    Json::str("store[rel](x, 1); a := load[rlx](y); return a;"),
                ),
                (
                    "tgt",
                    Json::str("a := load[rlx](y); store[rel](x, 1); return a;"),
                ),
            ]),
        );
        let r = result_of(&doc).get("result").unwrap();
        assert_eq!(r.get("verdict").unwrap(), &Json::str("refuted"));
        assert!(
            r.get("counterexample").is_some(),
            "refutation must explain itself"
        );
        stop(server, &dir);
    }

    #[test]
    fn fuel_starved_refine_is_a_structured_budget_error() {
        let (server, dir) = test_server("fuel");
        let mut c = Client::connect(server.addr());
        let doc = c.call(
            "refine.check",
            Json::obj(vec![
                (
                    "src",
                    Json::str("a := load[rlx](x); b := load[rlx](y); return a + b;"),
                ),
                (
                    "tgt",
                    Json::str("b := load[rlx](y); a := load[rlx](x); return a + b;"),
                ),
                ("fuel", Json::num(1)),
            ]),
        );
        assert_eq!(error_code(&doc), codes::BUDGET_EXHAUSTED);
        let data = doc.get("error").unwrap().get("data").unwrap();
        assert_eq!(data.get("budget").unwrap(), &Json::str("fuel"));
        stop(server, &dir);
    }

    #[test]
    fn invalid_programs_method_and_json_are_rejected() {
        let (server, dir) = test_server("reject");
        let mut c = Client::connect(server.addr());

        let doc = c.call(
            "refine.check",
            Json::obj(vec![
                ("src", Json::str("store[")),
                ("tgt", Json::str("return 0;")),
            ]),
        );
        assert_eq!(error_code(&doc), codes::INVALID_PARAMS);

        let doc = c.call("no.such.method", Json::obj(vec![]));
        assert_eq!(error_code(&doc), codes::METHOD_NOT_FOUND);

        c.send_raw("{this is not json");
        let doc = c.read_doc();
        assert_eq!(error_code(&doc), codes::PARSE_ERROR);

        c.send_raw(r#"{"id":5,"method":"server.stats"}"#);
        let doc = c.read_doc();
        assert_eq!(error_code(&doc), codes::INVALID_REQUEST);
        assert_eq!(doc.get("id").unwrap(), &Json::num(5));
        stop(server, &dir);
    }

    #[test]
    fn optimize_run_validates_caches_and_rejects_bad_passes() {
        let (server, dir) = test_server("optimize");
        let mut c = Client::connect(server.addr());
        let params = Json::obj(vec![
            (
                "program",
                Json::str(
                    "store[na](ov_x, 42); a := load[na](ov_x); \
                     fence[acq]; fence[acq]; return a;",
                ),
            ),
            ("passes", Json::str("all")),
        ]);
        let doc = c.call("optimize.run", params.clone());
        let outer = result_of(&doc);
        assert_eq!(outer.get("cached").unwrap(), &Json::Bool(false));
        let r = outer.get("result").unwrap();
        assert_eq!(r.get("verdict").unwrap(), &Json::str("validated"));
        let text = match r.get("program").unwrap() {
            Json::Str(s) => s.clone(),
            other => panic!("program: {other}"),
        };
        assert!(text.contains("a := 42;"), "{text}");
        assert!(!text.contains("fence"), "{text}");
        assert!(matches!(r.get("stages").unwrap(), Json::Arr(s) if s.len() == 9));

        // Identical resubmission is a result-cache hit.
        let doc = c.call("optimize.run", params);
        assert_eq!(result_of(&doc).get("cached").unwrap(), &Json::Bool(true));

        let doc = c.call(
            "optimize.run",
            Json::obj(vec![
                ("program", Json::str("return 0;")),
                ("passes", Json::str("nope")),
            ]),
        );
        assert_eq!(error_code(&doc), codes::INVALID_PARAMS);
        stop(server, &dir);
    }

    #[test]
    fn explore_run_reports_engine_stats() {
        let (server, dir) = test_server("explore");
        let mut c = Client::connect(server.addr());
        let doc = c.call(
            "explore.run",
            Json::obj(vec![(
                "programs",
                Json::Arr(vec![
                    Json::str("store[rlx](x, 1); a := load[rlx](y); return a;"),
                    Json::str("store[rlx](y, 1); a := load[rlx](x); return a;"),
                ]),
            )]),
        );
        let r = result_of(&doc).get("result").unwrap();
        assert_eq!(r.get("stop").unwrap(), &Json::str("completed"));
        assert_eq!(r.get("truncated").unwrap(), &Json::Bool(false));
        // Store buffering: both threads can read 0.
        assert!(matches!(r.get("behaviors").unwrap(), Json::Num(n) if *n >= 4.0));
        stop(server, &dir);
    }

    #[test]
    fn explore_jobs_spill_and_surface_degradation_stats() {
        let (server, dir) = test_server("spill");
        let mut c = Client::connect(server.addr());
        let progs = Json::Arr(vec![
            Json::str("store[rlx](x, 1); store[rlx](x, 2); a := load[rlx](y); return a;"),
            Json::str("store[rlx](y, 1); store[rlx](y, 2); a := load[rlx](z); return a;"),
            Json::str("store[rlx](z, 1); store[rlx](z, 2); a := load[rlx](x); return a;"),
        ]);
        // Baseline: default spill budget (64 MiB) never trips. The
        // state budget keeps the runs short and (being truncated)
        // uncacheable, so the second submission really re-runs.
        let doc = c.call(
            "explore.run",
            Json::obj(vec![
                ("programs", progs.clone()),
                ("reduction", Json::Bool(false)),
                ("max_states", Json::num(4000)),
            ]),
        );
        let base = result_of(&doc).get("result").unwrap().clone();

        // Zero budget: every eligible shard spills to disk; the run
        // must stay lossless (identical state/behavior counts).
        let doc = c.call(
            "explore.run",
            Json::obj(vec![
                ("programs", progs),
                ("reduction", Json::Bool(false)),
                ("max_states", Json::num(4000)),
                ("spill_budget_mb", Json::num(0)),
            ]),
        );
        let id = result_of(&doc).get("job").unwrap().clone();
        let r = result_of(&doc).get("result").unwrap();
        assert_eq!(r.get("states").unwrap(), base.get("states").unwrap());
        assert_eq!(r.get("behaviors").unwrap(), base.get("behaviors").unwrap());
        assert_eq!(r.get("downgrades").unwrap(), &Json::num(0));
        let spill = r.get("spill").unwrap();
        assert!(
            matches!(spill.get("shards").unwrap(), Json::Num(n) if *n > 0.0),
            "zero budget must spill shards: {spill}"
        );
        assert_eq!(spill.get("quarantined").unwrap(), &Json::num(0));

        // The per-job spill directory is gone once the job is terminal.
        let job_id = match id {
            Json::Num(n) => n as u64,
            other => panic!("non-numeric job id {other}"),
        };
        assert!(!dir.join("spill").join(format!("job-{job_id}")).exists());

        let stats = c.call("server.stats", Json::obj(vec![]));
        assert!(
            matches!(result_of(&stats).get("degradations"), Some(Json::Num(_))),
            "stats must carry the degradations counter"
        );
        stop(server, &dir);
    }

    #[test]
    fn model_routed_explore_downgrades_and_counts_backends() {
        let (server, dir) = test_server("model");
        let mut c = Client::connect(server.addr());
        // Race-free MP: the auto ladder downgrades to the promise-free
        // backend and reuses its scan as the final enumeration.
        let params = Json::obj(vec![
            (
                "programs",
                Json::Arr(vec![
                    Json::str("store[na](d, 1); store[rel](f, 1); return 0;"),
                    Json::str("a := load[acq](f); if (a == 1) { b := load[na](d); } return a;"),
                ]),
            ),
            ("model", Json::str("auto")),
        ]);
        let doc = c.call("explore.run", params.clone());
        let r = result_of(&doc).get("result").unwrap();
        assert_eq!(r.get("model_requested").unwrap(), &Json::str("auto"));
        assert_eq!(r.get("model").unwrap(), &Json::str("pf"));
        assert_eq!(r.get("scan_reused").unwrap(), &Json::Bool(true));
        assert_eq!(r.get("stop").unwrap(), &Json::str("completed"));
        assert!(
            matches!(r.get("checks").unwrap(), Json::Arr(cs) if cs.len() == 3),
            "SC, RA and PF verdicts reported: {r}"
        );

        // A complete model-routed run is cacheable.
        let doc = c.call("explore.run", params);
        assert_eq!(result_of(&doc).get("cached").unwrap(), &Json::Bool(true));

        // Per-backend counters (the cache hit must not double-count).
        let stats = c.call("server.stats", Json::obj(vec![]));
        let models = result_of(&stats).get("models").unwrap();
        assert_eq!(models.get("pf").unwrap(), &Json::num(1));

        // Unknown model names are rejected at validation time.
        let doc = c.call(
            "explore.run",
            Json::obj(vec![
                ("programs", Json::Arr(vec![Json::str("return 0;")])),
                ("model", Json::str("tso")),
            ]),
        );
        assert_eq!(error_code(&doc), codes::INVALID_PARAMS);
        stop(server, &dir);
    }

    #[test]
    fn refine_with_model_adds_cross_model_verdict() {
        let (server, dir) = test_server("model-refine");
        let mut c = Client::connect(server.addr());
        let doc = c.call(
            "refine.check",
            Json::obj(vec![
                ("src", Json::str("a := load[rlx](x); return a;")),
                ("tgt", Json::str("a := load[rlx](x); return a;")),
                ("model", Json::str("auto")),
            ]),
        );
        let r = result_of(&doc).get("result").unwrap();
        assert_eq!(r.get("verdict").unwrap(), &Json::str("holds"));
        // Single-threaded closed programs are conflict-free, so the
        // ladder lands on the SC backend for the cross-check.
        assert_eq!(r.get("model").unwrap(), &Json::str("sc"));
        assert_eq!(r.get("model_verdict").unwrap(), &Json::str("holds"));
        stop(server, &dir);
    }

    #[test]
    fn fuzz_campaign_streams_events_and_completes() {
        let (server, dir) = test_server("fuzz");
        let mut c = Client::connect(server.addr());
        let doc = c.call(
            "fuzz.campaign",
            Json::obj(vec![("cases", Json::num(6)), ("seed", Json::num(7))]),
        );
        let id = result_of(&doc).get("job").unwrap().clone();
        let job = Json::obj(vec![("job", id.clone())]);

        // Follow the stream to the end; the final response arrives
        // after the terminal state.
        let (done, notes) = c.call_collect("job.events", job.clone());
        let summary = result_of(&done);
        assert_eq!(summary.get("state").unwrap(), &Json::str("done"));
        assert!(
            !notes.is_empty(),
            "at least the final progress batch must stream"
        );
        for n in &notes {
            assert_eq!(n.get("method").unwrap(), &Json::str("job.event"));
        }

        let doc = c.call("job.result", job);
        let r = result_of(&doc).get("result").unwrap();
        assert!(r.get("cases_run").is_some(), "campaign summary: {r}");
        stop(server, &dir);
    }

    #[test]
    fn cancel_a_queued_job_and_query_unknown_jobs() {
        let (server, dir) = test_server("cancel");
        let mut c = Client::connect(server.addr());
        let doc = c.call(
            "fuzz.campaign",
            Json::obj(vec![("cases", Json::num(200_000)), ("seed", Json::num(1))]),
        );
        let id = result_of(&doc).get("job").unwrap().clone();
        let job = Json::obj(vec![("job", id)]);
        let doc = c.call("job.cancel", job.clone());
        assert!(result_of(&doc).get("state").is_some());
        let doc = c.call("job.result", job);
        assert_eq!(error_code(&doc), codes::CANCELED);

        let doc = c.call("job.status", Json::obj(vec![("job", Json::num(999))]));
        assert_eq!(error_code(&doc), codes::UNKNOWN_JOB);
        stop(server, &dir);
    }

    #[test]
    fn shutdown_rpc_stops_the_daemon() {
        let (server, dir) = test_server("shutdown");
        let mut c = Client::connect(server.addr());
        let doc = c.call("server.shutdown", Json::obj(vec![]));
        assert_eq!(result_of(&doc).get("ok").unwrap(), &Json::Bool(true));
        server.wait();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_client_is_evicted_by_the_frame_deadline() {
        let (server, dir) = test_server_with("slowloris", |cfg| {
            cfg.read_timeout = Duration::from_millis(200);
        });
        let mut c = Client::connect(server.addr());
        // Half a frame, then silence: the deadline must evict us with
        // a structured error, not hang a handler thread forever.
        c.writer
            .write_all(br#"{"jsonrpc":"2.0","id":1,"met"#)
            .unwrap();
        c.writer.flush().unwrap();
        let doc = c.read_doc();
        assert_eq!(error_code(&doc), codes::SLOW_CLIENT);
        // The connection is closed after the error.
        let mut rest = String::new();
        assert_eq!(c.reader.read_line(&mut rest).unwrap(), 0, "EOF expected");
        // The daemon itself is healthy: a well-behaved client works.
        let mut c2 = Client::connect(server.addr());
        let doc = c2.call("server.stats", Json::obj(vec![]));
        assert!(doc.get("result").is_some());
        stop(server, &dir);
    }

    #[test]
    fn oversized_frames_are_rejected_with_a_structured_error() {
        let (server, dir) = test_server_with("bigframe", |cfg| {
            cfg.max_frame_bytes = 512;
        });
        let mut c = Client::connect(server.addr());
        let huge = format!(
            r#"{{"jsonrpc":"2.0","id":1,"method":"server.stats","params":{{"pad":"{}"}}}}"#,
            "x".repeat(4096)
        );
        // The server may slam the door while we are still writing;
        // EPIPE here is part of the expected behavior, not a failure.
        let _ = c.writer.write_all(huge.as_bytes());
        let _ = c.writer.write_all(b"\n");
        let _ = c.writer.flush();
        let doc = c.read_doc();
        assert_eq!(error_code(&doc), codes::FRAME_TOO_LARGE);
        let mut rest = String::new();
        assert_eq!(c.reader.read_line(&mut rest).unwrap(), 0, "EOF expected");
        stop(server, &dir);
    }

    #[test]
    fn connection_cap_rejects_at_the_door() {
        let (server, dir) = test_server_with("conncap", |cfg| {
            cfg.max_conns = 1;
        });
        let mut c1 = Client::connect(server.addr());
        // Round-trip to guarantee c1's handler holds the only slot.
        let doc = c1.call("server.stats", Json::obj(vec![]));
        let conns = result_of(&doc).get("connections").unwrap();
        assert_eq!(conns.get("open").unwrap(), &Json::num(1));
        assert_eq!(conns.get("max").unwrap(), &Json::num(1));

        let mut c2 = Client::connect(server.addr());
        let doc = c2.read_doc();
        assert_eq!(error_code(&doc), codes::TOO_MANY_CONNS);

        // The original connection is unaffected.
        let doc = c1.call("server.stats", Json::obj(vec![]));
        assert!(doc.get("result").is_some());
        stop(server, &dir);
    }

    #[test]
    fn saturated_queue_sheds_load_with_a_retry_hint() {
        let (server, dir) = test_server_with("overload", |cfg| {
            cfg.workers = 1;
            cfg.queue_depth = 1;
        });
        let mut c = Client::connect(server.addr());
        // Fill the single worker with a long campaign…
        let doc = c.call(
            "fuzz.campaign",
            Json::obj(vec![("cases", Json::num(200_000)), ("seed", Json::num(1))]),
        );
        let a = result_of(&doc).get("job").unwrap().clone();
        // …wait until it is actually running so the queue is empty…
        loop {
            let doc = c.call("job.status", Json::obj(vec![("job", a.clone())]));
            if result_of(&doc).get("state").unwrap() == &Json::str("running") {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // …then occupy the one queue slot…
        let doc = c.call(
            "fuzz.campaign",
            Json::obj(vec![("cases", Json::num(200_000)), ("seed", Json::num(2))]),
        );
        let b = result_of(&doc).get("job").unwrap().clone();
        // …and the next submission must be shed with a backoff hint.
        let doc = c.call(
            "fuzz.campaign",
            Json::obj(vec![("cases", Json::num(10)), ("seed", Json::num(3))]),
        );
        assert_eq!(error_code(&doc), codes::OVERLOADED);
        let data = doc.get("error").unwrap().get("data").unwrap();
        let retry = data.get("retry_after_ms").unwrap().as_u64("r").unwrap();
        assert!(retry >= 10, "retry_after_ms {retry} below clamp floor");
        assert_eq!(data.get("queue_capacity").unwrap(), &Json::num(1));
        for id in [a, b] {
            c.call("job.cancel", Json::obj(vec![("job", id)]));
        }
        stop(server, &dir);
    }

    #[test]
    fn lifecycle_events_stream_for_every_job_kind() {
        let (server, dir) = test_server("lifecycle");
        let mut c = Client::connect(server.addr());
        let params = Json::obj(vec![
            ("src", Json::str("return 2;")),
            ("tgt", Json::str("return 2;")),
        ]);
        let doc = c.call("refine.check", params.clone());
        let id = result_of(&doc).get("job").unwrap().clone();
        let (_, notes) = c.call_collect("job.events", Json::obj(vec![("job", id)]));
        let states: Vec<String> = notes
            .iter()
            .filter_map(|n| {
                let ev = n.get("params")?.get("event")?;
                if ev.get("type")? == &Json::str("lifecycle") {
                    Some(ev.get("state")?.as_str("s").ok()?.to_string())
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(states, ["queued", "running", "done"]);

        // A cache hit still narrates its (instant) lifecycle.
        let doc = c.call("refine.check", params);
        let id = result_of(&doc).get("job").unwrap().clone();
        let (_, notes) = c.call_collect("job.events", Json::obj(vec![("job", id)]));
        let states: Vec<String> = notes
            .iter()
            .filter_map(|n| {
                let ev = n.get("params")?.get("event")?;
                ev.get("state")
                    .and_then(|s| s.as_str("s").ok())
                    .map(str::to_string)
            })
            .collect();
        assert_eq!(states, ["queued", "done"]);
        stop(server, &dir);
    }

    #[test]
    fn drain_cancels_stragglers_and_preserves_the_queue() {
        let (server, dir) = test_server_with("drain", |cfg| {
            cfg.workers = 1;
            cfg.drain_timeout = Duration::from_millis(300);
        });
        let addr = server.addr();
        let mut c = Client::connect(addr);
        // A campaign far too long to finish inside the drain window…
        let doc = c.call(
            "fuzz.campaign",
            Json::obj(vec![("cases", Json::num(500_000)), ("seed", Json::num(1))]),
        );
        let a = result_of(&doc).get("job").unwrap().clone();
        loop {
            let doc = c.call("job.status", Json::obj(vec![("job", a.clone())]));
            if result_of(&doc).get("state").unwrap() == &Json::str("running") {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // …plus one queued behind it.
        let doc = c.call(
            "fuzz.campaign",
            Json::obj(vec![("cases", Json::num(500_000)), ("seed", Json::num(2))]),
        );
        let b = match result_of(&doc).get("job").unwrap() {
            Json::Num(n) => *n as u64,
            other => panic!("job id {other}"),
        };

        let doc = c.call(
            "server.shutdown",
            Json::obj(vec![("drain", Json::Bool(true))]),
        );
        let r = result_of(&doc);
        assert_eq!(r.get("drain").unwrap(), &Json::Bool(true));
        assert_eq!(r.get("running").unwrap(), &Json::num(1));
        assert_eq!(r.get("queued").unwrap(), &Json::num(1));

        // New submissions are refused while draining.
        let mut c2 = Client::connect(addr);
        let doc = c2.call(
            "fuzz.campaign",
            Json::obj(vec![("cases", Json::num(5)), ("seed", Json::num(9))]),
        );
        assert_eq!(error_code(&doc), codes::DRAINING);

        server.wait();
        // The straggler was canceled at the drain deadline; the
        // queued job is journaled as queued for the next start.
        let jobs_dir = dir.join("jobs");
        let rec_a = crate::state::read_record(&crate::job::journal_path(&jobs_dir, 1)).unwrap();
        assert_eq!(rec_a.get("state").unwrap(), &Json::str("canceled"));
        let rec_b = crate::state::read_record(&crate::job::journal_path(&jobs_dir, b)).unwrap();
        assert_eq!(rec_b.get("state").unwrap(), &Json::str("queued"));

        // A restarted daemon recovers the queued job.
        let server = Server::start(ServeConfig {
            state_dir: dir.clone(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        assert_eq!(server.recovered_jobs(), 1);
        let mut c = Client::connect(server.addr());
        c.call("job.cancel", Json::obj(vec![("job", Json::num(b))]));
        stop(server, &dir);
    }

    #[test]
    fn deeply_nested_params_are_a_parse_error_not_a_crash() {
        let (server, dir) = test_server("nesting");
        let mut c = Client::connect(server.addr());
        let bomb = format!(
            r#"{{"jsonrpc":"2.0","id":1,"method":"server.stats","params":{{"a":{}1{}}}}}"#,
            "[".repeat(400),
            "]".repeat(400)
        );
        c.send_raw(&bomb);
        let doc = c.read_doc();
        assert_eq!(error_code(&doc), codes::PARSE_ERROR);
        // Still serving.
        let doc = c.call("server.stats", Json::obj(vec![]));
        assert!(doc.get("result").is_some());
        stop(server, &dir);
    }
}
