//! Behaviors of SEQ (Def. 2.1) and the simple behavioral refinement order
//! on them (Def. 2.3, item 3).
//!
//! A behavior is a pair `⟨tr, r⟩` where `tr` is a finite trace of transition
//! labels and `r` is one of
//!
//! * `trm(v, F, M)` — normal termination with value `v`, written set `F`,
//!   memory `M`,
//! * `prt(F)` — a partial (ongoing) execution with current written set `F`,
//! * `⊥` — erroneous termination (UB).
//!
//! [`enumerate_behaviors`] computes (a bounded-exhaustive approximation of)
//! the behavior set `{⟨tr,r⟩ | S ⇓ ⟨tr,r⟩}`, exact for programs whose
//! executions fit within the step budget.

use std::collections::HashSet;

use seqwm_lang::Value;

use crate::label::{trace_refines, LocSet, SeqLabel, Valuation};
use crate::machine::{EnumDomain, SeqState};

/// The terminal component `r` of a behavior.
///
/// `Ord` is derived (structurally) so behavior ends can live in ordered
/// sets — in particular the `seqwm-explore` engine's behavior sets.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BehaviorEnd {
    /// `trm(v, F, M)`: normal termination.
    Term {
        /// Final value.
        val: Value,
        /// Final written-locations set.
        written: LocSet,
        /// Final memory, restricted to the checked footprint.
        mem: Valuation,
    },
    /// `prt(F)`: partial execution.
    Partial {
        /// Current written-locations set.
        written: LocSet,
    },
    /// `⊥`: erroneous termination.
    Bottom,
}

impl std::fmt::Display for BehaviorEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let set = |s: &LocSet| {
            s.iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        match self {
            BehaviorEnd::Term { val, written, mem } => {
                let m = mem
                    .iter()
                    .map(|(x, v)| format!("{x}↦{v}"))
                    .collect::<Vec<_>>()
                    .join(",");
                write!(f, "trm({val}, {{{}}}, [{m}])", set(written))
            }
            BehaviorEnd::Partial { written } => write!(f, "prt({{{}}})", set(written)),
            BehaviorEnd::Bottom => write!(f, "⊥"),
        }
    }
}

/// A SEQ behavior `⟨tr, r⟩`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Behavior {
    /// The trace of transition labels.
    pub trace: Vec<SeqLabel>,
    /// The terminal component.
    pub end: BehaviorEnd,
}

impl std::fmt::Display for Behavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tr = self
            .trace
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(" · ");
        write!(f, "⟨[{tr}], {}⟩", self.end)
    }
}

impl Behavior {
    /// The behavior refinement `⟨tr_tgt, r_tgt⟩ ⊑ ⟨tr_src, r_src⟩` of
    /// Def. 2.3 (item 3):
    ///
    /// * source UB matches any target behavior whose trace extends a
    ///   refinement of the source trace;
    /// * terminated behaviors match with `v_tgt ⊑ v_src`,
    ///   `F_tgt ⊆ F_src`, `M_tgt ⊑ M_src`;
    /// * partial behaviors match with `F_tgt ⊆ F_src`.
    pub fn refines(&self, src: &Behavior) -> bool {
        match &src.end {
            // ⟨tr_tgt · tr, r⟩ ⊑ ⟨tr_src, ⊥⟩ when tr_tgt ⊑ tr_src.
            BehaviorEnd::Bottom => {
                self.trace.len() >= src.trace.len()
                    && trace_refines(&self.trace[..src.trace.len()], &src.trace)
            }
            BehaviorEnd::Term {
                val: sv,
                written: sf,
                mem: sm,
            } => match &self.end {
                BehaviorEnd::Term {
                    val: tv,
                    written: tf,
                    mem: tm,
                } => {
                    trace_refines(&self.trace, &src.trace)
                        && tv.refines(*sv)
                        && tf.is_subset(sf)
                        && mem_refines(tm, sm)
                }
                _ => false,
            },
            BehaviorEnd::Partial { written: sf } => match &self.end {
                BehaviorEnd::Partial { written: tf } => {
                    trace_refines(&self.trace, &src.trace) && tf.is_subset(sf)
                }
                _ => false,
            },
        }
    }
}

fn mem_refines(tgt: &Valuation, src: &Valuation) -> bool {
    // Both valuations are restrictions to the same checked footprint.
    tgt.iter()
        .all(|(x, v)| v.refines(src.get(x).copied().unwrap_or_default()))
}

/// Enumerates (a bounded-exhaustive approximation of) the behavior set of a
/// SEQ state under the given domain.
///
/// Exactness: complete for executions of at most `dom.max_steps` machine
/// steps with environment non-determinism drawn from `dom`; partial
/// behaviors at the budget boundary are still recorded, so the result is an
/// *under*-approximation of the true behavior set, adequate for refuting
/// refinement and (for programs fitting the budget) for establishing it.
pub fn enumerate_behaviors(init: &SeqState, dom: &EnumDomain) -> HashSet<Behavior> {
    let mut fuel = u64::MAX;
    enumerate_behaviors_fuel(init, dom, &mut fuel).unwrap_or_default()
}

/// Like [`enumerate_behaviors`], but draws every explored state from a
/// caller-owned `fuel` budget shared across invocations. Returns `None`
/// (and leaves `fuel` at zero) when the budget runs out mid-enumeration —
/// the partial set is discarded because an incomplete source set would make
/// refinement checks unsound in *both* directions.
///
/// The budget is deterministic (a state count, not wall-clock), so a
/// truncated verdict is exactly reproducible from the same inputs.
pub fn enumerate_behaviors_fuel(
    init: &SeqState,
    dom: &EnumDomain,
    fuel: &mut u64,
) -> Option<HashSet<Behavior>> {
    let initial = *fuel;
    let mut out = HashSet::new();
    let mut trace = Vec::new();
    let complete = go(init, dom, &mut trace, dom.max_steps, fuel, &mut out);
    seqwm_explore::counters::add(&seqwm_explore::counters::REFINE_FUEL_SPENT, initial - *fuel);
    if complete {
        seqwm_explore::counters::add(&seqwm_explore::counters::REFINE_ENUMERATIONS, 1);
    }
    complete.then_some(out)
}

fn go(
    s: &SeqState,
    dom: &EnumDomain,
    trace: &mut Vec<SeqLabel>,
    budget: usize,
    fuel: &mut u64,
    out: &mut HashSet<Behavior>,
) -> bool {
    if *fuel == 0 {
        return false;
    }
    *fuel -= 1;
    if s.is_bottom() {
        out.insert(Behavior {
            trace: trace.clone(),
            end: BehaviorEnd::Bottom,
        });
        return true;
    }
    if let Some(v) = s.returned() {
        out.insert(Behavior {
            trace: trace.clone(),
            end: BehaviorEnd::Term {
                val: v,
                written: s.written.clone(),
                mem: s.mem.restrict(&dom.na_locs.iter().copied().collect()),
            },
        });
        return true;
    }
    // Any intermediate point yields a partial behavior.
    out.insert(Behavior {
        trace: trace.clone(),
        end: BehaviorEnd::Partial {
            written: s.written.clone(),
        },
    });
    if budget == 0 {
        return true;
    }
    for (label, next) in s.transitions(dom) {
        let ok = match label {
            Some(l) => {
                trace.push(l);
                let ok = go(&next, dom, trace, budget - 1, fuel, out);
                trace.pop();
                ok
            }
            None => go(&next, dom, trace, budget - 1, fuel, out),
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Checks behavior-set inclusion up to `⊑`: every target behavior must be
/// matched by some source behavior. Returns the first unmatched target
/// behavior as a counterexample.
pub fn behaviors_refine(tgt: &HashSet<Behavior>, src: &HashSet<Behavior>) -> Result<(), Behavior> {
    for tb in tgt {
        if !src.iter().any(|sb| tb.refines(sb)) {
            return Err(tb.clone());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Memory;
    use seqwm_lang::parser::parse_program;
    use seqwm_lang::Loc;

    fn behaviors(src: &str, perm: &[&str], mem: &[(&str, i64)]) -> HashSet<Behavior> {
        let p = parse_program(src).unwrap();
        let dom = EnumDomain::for_program(&p);
        let st = SeqState::new(
            &p,
            perm.iter().map(|n| Loc::new(n)).collect(),
            LocSet::new(),
            Memory::from_pairs(mem.iter().map(|(n, v)| (Loc::new(n), Value::Int(*v)))),
        );
        enumerate_behaviors(&st, &dom)
    }

    #[test]
    fn example_2_2_behaviors() {
        // x_rlx := 1 ; y_na := 2 ; return 3 — with y ∈ P.
        let bs = behaviors(
            "store[rlx](e22x, 1); store[na](e22y, 2); return 3;",
            &["e22y"],
            &[],
        );
        let y = Loc::new("e22y");
        let wrlx = SeqLabel::WriteRlx(Loc::new("e22x"), Value::Int(1));
        // ⟨ε, prt(∅)⟩
        assert!(bs.contains(&Behavior {
            trace: vec![],
            end: BehaviorEnd::Partial {
                written: LocSet::new()
            }
        }));
        // ⟨Wrlx(x,1), prt(∅)⟩
        assert!(bs.contains(&Behavior {
            trace: vec![wrlx.clone()],
            end: BehaviorEnd::Partial {
                written: LocSet::new()
            }
        }));
        // ⟨Wrlx(x,1), prt({y})⟩
        assert!(bs.contains(&Behavior {
            trace: vec![wrlx.clone()],
            end: BehaviorEnd::Partial {
                written: [y].into_iter().collect()
            }
        }));
        // Terminating behavior ⟨Wrlx(x,1), trm(3, {y}, M[y↦2])⟩.
        assert!(bs.iter().any(|b| {
            b.trace == vec![wrlx.clone()]
                && matches!(&b.end, BehaviorEnd::Term { val, written, mem }
                    if *val == Value::Int(3)
                    && written.contains(&y)
                    && mem.get(&y) == Some(&Value::Int(2)))
        }));
        // No UB behaviors.
        assert!(!bs.iter().any(|b| b.end == BehaviorEnd::Bottom));
    }

    #[test]
    fn example_2_2_racy_variant() {
        // With y ∉ P, ⟨Wrlx(x,1), ⊥⟩ is the only maximal behavior.
        let bs = behaviors(
            "store[rlx](e22rx, 1); store[na](e22ry, 2); return 3;",
            &[],
            &[],
        );
        let wrlx = SeqLabel::WriteRlx(Loc::new("e22rx"), Value::Int(1));
        assert!(bs.contains(&Behavior {
            trace: vec![wrlx],
            end: BehaviorEnd::Bottom
        }));
        assert!(!bs.iter().any(|b| matches!(b.end, BehaviorEnd::Term { .. })));
    }

    #[test]
    fn source_bottom_matches_extensions() {
        let x = Loc::new("bmx");
        let src = Behavior {
            trace: vec![],
            end: BehaviorEnd::Bottom,
        };
        let tgt = Behavior {
            trace: vec![SeqLabel::WriteRlx(x, Value::Int(1))],
            end: BehaviorEnd::Term {
                val: Value::Int(0),
                written: LocSet::new(),
                mem: Valuation::new(),
            },
        };
        assert!(tgt.refines(&src), "⊥ source matches any continuation");
    }

    #[test]
    fn bottom_prefix_must_refine() {
        let x = Loc::new("bpx");
        let src = Behavior {
            trace: vec![SeqLabel::ReadRlx(x, Value::Int(1))],
            end: BehaviorEnd::Bottom,
        };
        let tgt_match = Behavior {
            trace: vec![
                SeqLabel::ReadRlx(x, Value::Int(1)),
                SeqLabel::Choose(Value::Int(0)),
            ],
            end: BehaviorEnd::Bottom,
        };
        let tgt_mismatch = Behavior {
            trace: vec![SeqLabel::ReadRlx(x, Value::Int(2))],
            end: BehaviorEnd::Bottom,
        };
        let tgt_short = Behavior {
            trace: vec![],
            end: BehaviorEnd::Bottom,
        };
        assert!(tgt_match.refines(&src));
        assert!(!tgt_mismatch.refines(&src));
        assert!(!tgt_short.refines(&src), "source trace longer than target");
    }

    #[test]
    fn term_matching_checks_value_written_memory() {
        let x = Loc::new("tmx");
        let mk = |val: Value, written: &[Loc], memv: Value| Behavior {
            trace: vec![],
            end: BehaviorEnd::Term {
                val,
                written: written.iter().copied().collect(),
                mem: [(x, memv)].into_iter().collect(),
            },
        };
        // v_tgt ⊑ v_src.
        assert!(mk(Value::Int(1), &[], Value::Int(0)).refines(&mk(
            Value::Undef,
            &[],
            Value::Int(0)
        )));
        assert!(!mk(Value::Undef, &[], Value::Int(0)).refines(&mk(
            Value::Int(1),
            &[],
            Value::Int(0)
        )));
        // F_tgt ⊆ F_src.
        assert!(mk(Value::Int(0), &[], Value::Int(0)).refines(&mk(
            Value::Int(0),
            &[x],
            Value::Int(0)
        )));
        assert!(!mk(Value::Int(0), &[x], Value::Int(0)).refines(&mk(
            Value::Int(0),
            &[],
            Value::Int(0)
        )));
        // M_tgt ⊑ M_src.
        assert!(mk(Value::Int(0), &[], Value::Int(2)).refines(&mk(
            Value::Int(0),
            &[],
            Value::Undef
        )));
        assert!(!mk(Value::Int(0), &[], Value::Undef).refines(&mk(
            Value::Int(0),
            &[],
            Value::Int(2)
        )));
    }

    #[test]
    fn partial_does_not_match_term() {
        let prt = Behavior {
            trace: vec![],
            end: BehaviorEnd::Partial {
                written: LocSet::new(),
            },
        };
        let trm = Behavior {
            trace: vec![],
            end: BehaviorEnd::Term {
                val: Value::Int(0),
                written: LocSet::new(),
                mem: Valuation::new(),
            },
        };
        assert!(!prt.refines(&trm));
        assert!(!trm.refines(&prt));
    }

    #[test]
    fn behavior_set_inclusion() {
        let bs1 = behaviors("skip; return 1;", &[], &[]);
        let bs2 = behaviors("return 1;", &[], &[]);
        assert!(behaviors_refine(&bs1, &bs2).is_ok());
        assert!(behaviors_refine(&bs2, &bs1).is_ok());
        let bs3 = behaviors("return 2;", &[], &[]);
        assert!(behaviors_refine(&bs3, &bs2).is_err());
    }
}
