//! The sequential permission machine **SEQ** (§2, Fig. 1).
//!
//! A SEQ state `⟨σ, P, F, M⟩` instruments a program state `σ` with
//!
//! * the *permission set* `P ⊆ Loc^na` of non-atomic locations that may be
//!   safely accessed,
//! * the *written-locations set* `F ⊆ Loc^na` of non-atomic locations
//!   written since the last release, and
//! * the non-atomic *memory* `M : Loc^na → Val`.
//!
//! Acquire transitions non-deterministically *gain* permissions (with fresh
//! values), release transitions non-deterministically *lose* them — this is
//! how SEQ abstracts all possible interference by other threads while
//! remaining a sequential machine.
//!
//! [`SeqState::transitions`] enumerates all machine transitions with their
//! labels, bounding the inherent non-determinism by an [`EnumDomain`]
//! (footprint locations and a finite value domain), which is sound for
//! refinement between two concrete programs (a standard framing argument —
//! see DESIGN.md §1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use seqwm_lang::{
    ChoiceSet, FenceMode, Loc, ProgState, Program, ReadMode, Step, Stmt, Value, WriteMode,
};

use crate::label::{LocSet, SeqLabel, SyncInfo, Valuation};

/// The non-atomic memory `M : Loc^na → Val`, total with default `0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Memory {
    map: BTreeMap<Loc, Value>,
}

impl Memory {
    /// The all-zero memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Builds a memory from explicit assignments.
    pub fn from_pairs<I: IntoIterator<Item = (Loc, Value)>>(pairs: I) -> Self {
        Memory {
            map: pairs.into_iter().collect(),
        }
    }

    /// Reads `M(x)` (default `0`).
    pub fn get(&self, x: Loc) -> Value {
        self.map.get(&x).copied().unwrap_or_default()
    }

    /// Writes `M[x ↦ v]`.
    pub fn set(&mut self, x: Loc, v: Value) {
        self.map.insert(x, v);
    }

    /// Restriction `M|_P` as a partial valuation.
    pub fn restrict(&self, p: &LocSet) -> Valuation {
        p.iter().map(|&x| (x, self.get(x))).collect()
    }

    /// Applies the updates in `v` (acquire-gained values).
    pub fn update(&mut self, v: &Valuation) {
        for (&x, &val) in v {
            self.set(x, val);
        }
    }

    /// The memory refinement `M_tgt ⊑ M_src` pointwise over `locs`.
    pub fn refines_on(&self, src: &Memory, locs: &LocSet) -> bool {
        locs.iter().all(|&x| self.get(x).refines(src.get(x)))
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (x, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}={v}")?;
        }
        write!(f, "]")
    }
}

/// The finite enumeration domain for SEQ's environment non-determinism.
///
/// The footprint restriction is sound for checking refinement between two
/// concrete programs: environment transitions touching locations outside
/// both programs' footprints commute with every program step.
#[derive(Clone, Debug)]
pub struct EnumDomain {
    /// Non-atomic footprint: locations `P`/`F`/`M` range over.
    pub na_locs: Vec<Loc>,
    /// Values used for atomic-read results, acquire-gained memory values,
    /// and initial memories. Includes `undef` unless configured otherwise.
    pub values: Vec<Value>,
    /// Defined values used to resolve `freeze` of `undef`.
    pub choose_values: Vec<i64>,
    /// Maximum machine steps explored per execution path.
    pub max_steps: usize,
}

impl EnumDomain {
    /// Builds the domain for checking `tgt` against `src`: footprint and
    /// constants are the union of both programs', one fresh value is added
    /// so that "the environment writes something the program never
    /// mentions" is representable, and `undef` is included.
    pub fn for_pair(src: &Program, tgt: &Program) -> Self {
        let mut na: BTreeSet<Loc> = src.na_locs();
        na.extend(tgt.na_locs());
        let mut consts: BTreeSet<i64> = src.constants();
        consts.extend(tgt.constants());
        consts.insert(0);
        let fresh = consts.iter().max().copied().unwrap_or(0) + 1;
        consts.insert(fresh);
        let mut values: Vec<Value> = consts.iter().map(|&n| Value::Int(n)).collect();
        values.push(Value::Undef);
        EnumDomain {
            na_locs: na.into_iter().collect(),
            choose_values: consts.into_iter().collect(),
            values,
            max_steps: 256,
        }
    }

    /// Domain for a single program (running it in isolation).
    pub fn for_program(p: &Program) -> Self {
        Self::for_pair(p, p)
    }

    /// Checks the paper's no-mixing discipline: no location is accessed
    /// both atomically and non-atomically by either program.
    pub fn check_no_mixing(src: &Program, tgt: &Program) -> Result<(), Loc> {
        let mut na: BTreeSet<Loc> = src.na_locs();
        na.extend(tgt.na_locs());
        let mut at: BTreeSet<Loc> = src.atomic_locs();
        at.extend(tgt.atomic_locs());
        match na.intersection(&at).next() {
            Some(&x) => Err(x),
            None => Ok(()),
        }
    }

    /// All subsets of the non-atomic footprint.
    pub fn loc_subsets(&self) -> Vec<LocSet> {
        subsets(&self.na_locs)
    }

    /// All valuations of `locs` into the value domain.
    pub fn valuations(&self, locs: &[Loc]) -> Vec<Valuation> {
        let mut out = vec![Valuation::new()];
        for &x in locs {
            let mut next = Vec::with_capacity(out.len() * self.values.len());
            for v in &self.values {
                for m in &out {
                    let mut m = m.clone();
                    m.insert(x, *v);
                    next.push(m);
                }
            }
            out = next;
        }
        out
    }
}

/// All subsets of a slice of locations.
pub fn subsets(locs: &[Loc]) -> Vec<LocSet> {
    let mut out = vec![LocSet::new()];
    for &x in locs {
        let mut more = Vec::with_capacity(out.len());
        for s in &out {
            let mut s = s.clone();
            s.insert(x);
            more.push(s);
        }
        out.extend(more);
    }
    out
}

/// A SEQ machine state `⟨σ, P, F, M⟩`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SeqState {
    /// The program state `σ`.
    pub prog: ProgState,
    /// The permission set `P`.
    pub perm: LocSet,
    /// The written-locations set `F`.
    pub written: LocSet,
    /// The non-atomic memory `M`.
    pub mem: Memory,
}

impl SeqState {
    /// Builds the initial SEQ state for a program.
    pub fn new(prog: &Program, perm: LocSet, written: LocSet, mem: Memory) -> Self {
        SeqState {
            prog: ProgState::new(prog),
            perm,
            written,
            mem,
        }
    }

    /// Is the program at the error state `⊥`?
    pub fn is_bottom(&self) -> bool {
        self.prog.is_failed()
    }

    /// Has the program terminated normally?
    pub fn returned(&self) -> Option<Value> {
        self.prog.returned()
    }

    fn with_prog(&self, prog: ProgState) -> SeqState {
        SeqState {
            prog,
            perm: self.perm.clone(),
            written: self.written.clone(),
            mem: self.mem.clone(),
        }
    }

    /// The racy-na-write rule: the machine moves to `⟨⊥, P, F, M⟩`.
    fn to_bottom(&self) -> SeqState {
        self.with_prog(ProgState::bottom())
    }

    /// Enumerates the acquire choices `(P′, V)` with `P ⊆ P′` and
    /// `dom(V) = P′ ∖ P` over the domain.
    fn acq_choices(&self, dom: &EnumDomain) -> Vec<(LocSet, Valuation)> {
        let gains: Vec<Loc> = dom
            .na_locs
            .iter()
            .copied()
            .filter(|x| !self.perm.contains(x))
            .collect();
        let mut out = Vec::new();
        for gained in subsets(&gains) {
            let gained_vec: Vec<Loc> = gained.iter().copied().collect();
            for vals in dom.valuations(&gained_vec) {
                let mut p_after = self.perm.clone();
                p_after.extend(gained.iter().copied());
                out.push((p_after, vals));
            }
        }
        out
    }

    /// Enumerates the release choices `P′ ⊆ P`.
    fn rel_choices(&self) -> Vec<LocSet> {
        let p: Vec<Loc> = self.perm.iter().copied().collect();
        subsets(&p)
    }

    /// Enumerates every machine transition `S → S′` (with its label, if
    /// labeled) under the given enumeration domain.
    ///
    /// Terminated and `⊥` states have no transitions; use
    /// [`SeqState::is_bottom`] / [`SeqState::returned`] to classify them.
    pub fn transitions(&self, dom: &EnumDomain) -> Vec<(Option<SeqLabel>, SeqState)> {
        let mut out = Vec::new();
        match self.prog.step() {
            Step::Terminated(_) | Step::Fail => {}
            // (silent)
            Step::Silent(next) => out.push((None, self.with_prog(next))),
            // (choice)
            Step::Choose(cs) => {
                let choices = match &cs {
                    ChoiceSet::Explicit(vs) => vs.clone(),
                    ChoiceSet::AnyDefined => {
                        dom.choose_values.iter().map(|&n| Value::Int(n)).collect()
                    }
                };
                for v in choices {
                    out.push((
                        Some(SeqLabel::Choose(v)),
                        self.with_prog(self.prog.resume_choose(v)),
                    ));
                }
            }
            Step::Read { loc, mode } => match mode {
                // (na-read) / (racy-na-read)
                ReadMode::Na => {
                    let v = if self.perm.contains(&loc) {
                        self.mem.get(loc)
                    } else {
                        Value::Undef
                    };
                    out.push((None, self.with_prog(self.prog.resume_read(v))));
                }
                // (relaxed read): value unconstrained, recorded in trace.
                ReadMode::Rlx => {
                    for &v in &dom.values {
                        out.push((
                            Some(SeqLabel::ReadRlx(loc, v)),
                            self.with_prog(self.prog.resume_read(v)),
                        ));
                    }
                }
                // (acq-read)
                ReadMode::Acq => {
                    for &v in &dom.values {
                        for (p_after, vals) in self.acq_choices(dom) {
                            let info = SyncInfo {
                                p_before: self.perm.clone(),
                                p_after: p_after.clone(),
                                written: self.written.clone(),
                                vals: vals.clone(),
                            };
                            let mut next = self.with_prog(self.prog.resume_read(v));
                            next.perm = p_after;
                            next.mem.update(&vals);
                            out.push((Some(SeqLabel::AcqRead { loc, val: v, info }), next));
                        }
                    }
                }
            },
            Step::Write {
                loc,
                mode,
                val,
                next,
            } => match mode {
                // (na-write) / (racy-na-write)
                WriteMode::Na => {
                    if self.perm.contains(&loc) {
                        let mut s = self.with_prog(next);
                        s.mem.set(loc, val);
                        s.written.insert(loc);
                        out.push((None, s));
                    } else {
                        out.push((None, self.to_bottom()));
                    }
                }
                // (relaxed write)
                WriteMode::Rlx => {
                    out.push((Some(SeqLabel::WriteRlx(loc, val)), self.with_prog(next)));
                }
                // (rel-write)
                WriteMode::Rel => {
                    for p_after in self.rel_choices() {
                        let info = SyncInfo {
                            p_before: self.perm.clone(),
                            p_after: p_after.clone(),
                            written: self.written.clone(),
                            vals: self.mem.restrict(&self.perm),
                        };
                        let mut s = self.with_prog(next.clone());
                        s.perm = p_after;
                        s.written = LocSet::new();
                        out.push((Some(SeqLabel::RelWrite { loc, val, info }), s));
                    }
                }
            },
            Step::Fence { mode, next } => match mode {
                FenceMode::Acq => {
                    for (p_after, vals) in self.acq_choices(dom) {
                        let info = SyncInfo {
                            p_before: self.perm.clone(),
                            p_after: p_after.clone(),
                            written: self.written.clone(),
                            vals: vals.clone(),
                        };
                        let mut s = self.with_prog(next.clone());
                        s.perm = p_after;
                        s.mem.update(&vals);
                        out.push((Some(SeqLabel::AcqFence { info }), s));
                    }
                }
                FenceMode::Rel => {
                    for p_after in self.rel_choices() {
                        let info = SyncInfo {
                            p_before: self.perm.clone(),
                            p_after: p_after.clone(),
                            written: self.written.clone(),
                            vals: self.mem.restrict(&self.perm),
                        };
                        let mut s = self.with_prog(next.clone());
                        s.perm = p_after;
                        s.written = LocSet::new();
                        out.push((Some(SeqLabel::RelFence { info }), s));
                    }
                }
                // Composite fences decompose into a release part now,
                // leaving the acquire part in the continuation.
                FenceMode::AcqRel | FenceMode::Sc => {
                    let cont = next.prefixed(Stmt::Fence(FenceMode::Acq));
                    for p_after in self.rel_choices() {
                        let info = SyncInfo {
                            p_before: self.perm.clone(),
                            p_after: p_after.clone(),
                            written: self.written.clone(),
                            vals: self.mem.restrict(&self.perm),
                        };
                        let mut s = self.with_prog(cont.clone());
                        s.perm = p_after;
                        s.written = LocSet::new();
                        out.push((Some(SeqLabel::RelFence { info }), s));
                    }
                }
            },
            Step::Rmw { loc, mode } => {
                for &read in &dom.values {
                    let res = self.prog.resume_rmw(read);
                    if res.next.is_failed() {
                        // UB during the update (e.g. CAS comparison on
                        // undef): the read still happened.
                        let acq = mode.read_mode().is_atomic().then(|| SyncInfo {
                            p_before: self.perm.clone(),
                            p_after: self.perm.clone(),
                            written: self.written.clone(),
                            vals: Valuation::new(),
                        });
                        out.push((
                            Some(SeqLabel::Rmw {
                                loc,
                                mode,
                                read,
                                write: None,
                                acq: if mode.read_mode() == ReadMode::Acq {
                                    acq
                                } else {
                                    None
                                },
                                rel: None,
                            }),
                            self.to_bottom(),
                        ));
                        continue;
                    }
                    // Acquire side choices (if the mode acquires).
                    let acq_opts: Vec<Option<(LocSet, Valuation)>> =
                        if mode.read_mode() == ReadMode::Acq {
                            self.acq_choices(dom).into_iter().map(Some).collect()
                        } else {
                            vec![None]
                        };
                    for acq_choice in acq_opts {
                        let mut mid = self.with_prog(res.next.clone());
                        let acq_info = acq_choice.as_ref().map(|(p_after, vals)| {
                            let info = SyncInfo {
                                p_before: self.perm.clone(),
                                p_after: p_after.clone(),
                                written: self.written.clone(),
                                vals: vals.clone(),
                            };
                            mid.perm = p_after.clone();
                            mid.mem.update(vals);
                            info
                        });
                        // Release side (only if the update writes).
                        if res.write.is_some() && mode.write_mode() == WriteMode::Rel {
                            let rel_perm: Vec<Loc> = mid.perm.iter().copied().collect();
                            for p_after in subsets(&rel_perm) {
                                let rel_info = SyncInfo {
                                    p_before: mid.perm.clone(),
                                    p_after: p_after.clone(),
                                    written: mid.written.clone(),
                                    vals: mid.mem.restrict(&mid.perm),
                                };
                                let mut s = mid.clone();
                                s.perm = p_after;
                                s.written = LocSet::new();
                                out.push((
                                    Some(SeqLabel::Rmw {
                                        loc,
                                        mode,
                                        read,
                                        write: res.write,
                                        acq: acq_info.clone(),
                                        rel: Some(rel_info),
                                    }),
                                    s,
                                ));
                            }
                        } else {
                            out.push((
                                Some(SeqLabel::Rmw {
                                    loc,
                                    mode,
                                    read,
                                    write: res.write,
                                    acq: acq_info,
                                    rel: None,
                                }),
                                mid,
                            ));
                        }
                    }
                }
            }
            Step::Syscall { val, next } => {
                out.push((Some(SeqLabel::Syscall(val)), self.with_prog(next)));
            }
        }
        out
    }

    /// The maximal sequence of states reachable via *unlabeled* transitions
    /// (silent steps and non-atomic accesses), starting with `self`.
    ///
    /// Unlabeled transitions are deterministic, so this is a path; it stops
    /// at the first labeled, terminated, or `⊥` state (inclusive), or when
    /// `max_steps` is exhausted (e.g. a silent infinite loop).
    pub fn unlabeled_path(&self, dom: &EnumDomain) -> Vec<SeqState> {
        let mut path = vec![self.clone()];
        let mut seen: std::collections::HashSet<SeqState> = std::collections::HashSet::new();
        seen.insert(self.clone());
        for _ in 0..dom.max_steps {
            let cur = path.last().expect("non-empty path");
            if cur.is_bottom() || cur.returned().is_some() {
                break;
            }
            let trans = cur.transitions(dom);
            match trans.as_slice() {
                [(None, next)] => {
                    if !seen.insert(next.clone()) {
                        break; // silent cycle
                    }
                    path.push(next.clone());
                }
                _ => break, // labeled or stuck
            }
        }
        path
    }
}

impl fmt::Display for SeqState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let set = |s: &LocSet| {
            s.iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "⟨{}, P={{{}}}, F={{{}}}, M={}⟩",
            self.prog,
            set(&self.perm),
            set(&self.written),
            self.mem
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqwm_lang::parser::parse_program;

    fn dom_for(src: &str) -> (Program, EnumDomain) {
        let p = parse_program(src).unwrap();
        let d = EnumDomain::for_program(&p);
        (p, d)
    }

    fn full_perm(d: &EnumDomain) -> LocSet {
        d.na_locs.iter().copied().collect()
    }

    #[test]
    fn na_read_with_permission_reads_memory() {
        let (p, d) = dom_for("a := load[na](mx); return a;");
        let x = Loc::new("mx");
        let st = SeqState::new(
            &p,
            full_perm(&d),
            LocSet::new(),
            Memory::from_pairs([(x, Value::Int(7))]),
        );
        let path = st.unlabeled_path(&d);
        let last = path.last().unwrap();
        assert_eq!(last.returned(), Some(Value::Int(7)));
    }

    #[test]
    fn racy_na_read_returns_undef() {
        let (p, d) = dom_for("a := load[na](mrx); return a;");
        let st = SeqState::new(&p, LocSet::new(), LocSet::new(), Memory::new());
        let last = st.unlabeled_path(&d).last().unwrap().clone();
        assert_eq!(last.returned(), Some(Value::Undef));
    }

    #[test]
    fn na_write_updates_memory_and_written_set() {
        let (p, d) = dom_for("store[na](mwx, 3);");
        let x = Loc::new("mwx");
        let st = SeqState::new(&p, full_perm(&d), LocSet::new(), Memory::new());
        let last = st.unlabeled_path(&d).last().unwrap().clone();
        assert_eq!(last.returned(), Some(Value::ZERO));
        assert_eq!(last.mem.get(x), Value::Int(3));
        assert!(last.written.contains(&x));
    }

    #[test]
    fn racy_na_write_is_ub() {
        let (p, d) = dom_for("store[na](mbx, 3);");
        let st = SeqState::new(&p, LocSet::new(), LocSet::new(), Memory::new());
        let last = st.unlabeled_path(&d).last().unwrap().clone();
        assert!(last.is_bottom(), "write without permission must reach ⊥");
        // P, F, M are preserved at ⊥ (Fig. 1 racy-na-write).
        assert_eq!(last.perm, LocSet::new());
    }

    #[test]
    fn rlx_read_branches_over_domain() {
        let (p, d) = dom_for("a := load[rlx](arx); return a;");
        let st = SeqState::new(&p, LocSet::new(), LocSet::new(), Memory::new());
        let at_read = st.unlabeled_path(&d).last().unwrap().clone();
        let trans = at_read.transitions(&d);
        // One branch per domain value, each labeled Rrlx.
        assert_eq!(trans.len(), d.values.len());
        assert!(trans
            .iter()
            .all(|(l, _)| matches!(l, Some(SeqLabel::ReadRlx(_, _)))));
    }

    #[test]
    fn acq_read_gains_permissions_and_values() {
        // One na loc (may) + one atomic loc (may not be gained).
        let (p, d) = dom_for("a := load[acq](aax); b := load[na](may); return b;");
        let may = Loc::new("may");
        let st = SeqState::new(&p, LocSet::new(), LocSet::new(), Memory::new());
        let at_acq = st.unlabeled_path(&d).last().unwrap().clone();
        let trans = at_acq.transitions(&d);
        // values × (gain nothing | gain `may` with each domain value).
        let per_value = 1 + d.values.len();
        assert_eq!(trans.len(), d.values.len() * per_value);
        // Some branch gains permission on `may` with value 1.
        assert!(trans.iter().any(|(l, s)| {
            matches!(l, Some(SeqLabel::AcqRead { .. }))
                && s.perm.contains(&may)
                && s.mem.get(may) == Value::Int(1)
        }));
        // No branch ever gains permission on the *atomic* location.
        assert!(trans
            .iter()
            .all(|(_, s)| !s.perm.contains(&Loc::new("aax"))));
    }

    #[test]
    fn rel_write_loses_permissions_and_resets_written() {
        let (p, d) = dom_for("store[na](rwy, 1); store[rel](rwx, 1);");
        let y = Loc::new("rwy");
        let st = SeqState::new(&p, full_perm(&d), LocSet::new(), Memory::new());
        // Run the na write first.
        let at_rel = st.unlabeled_path(&d).last().unwrap().clone();
        assert!(at_rel.written.contains(&y));
        let trans = at_rel.transitions(&d);
        // P = {rwy} so the release may keep or drop it: 2 choices.
        assert_eq!(trans.len(), 2);
        for (l, s) in &trans {
            let Some(SeqLabel::RelWrite { info, .. }) = l else {
                panic!("expected release label");
            };
            assert!(info.written.contains(&y), "label records F before reset");
            assert_eq!(info.vals.get(&y), Some(&Value::Int(1)), "V = M|P");
            assert!(s.written.is_empty(), "release resets F");
        }
        assert!(trans.iter().any(|(_, s)| s.perm.contains(&y)));
        assert!(trans.iter().any(|(_, s)| !s.perm.contains(&y)));
    }

    #[test]
    fn choose_is_labeled() {
        let (p, d) = dom_for("c := choose(1, 2); return c;");
        let st = SeqState::new(&p, LocSet::new(), LocSet::new(), Memory::new());
        let at_choose = st.unlabeled_path(&d).last().unwrap().clone();
        let trans = at_choose.transitions(&d);
        assert_eq!(trans.len(), 2);
        assert!(trans
            .iter()
            .all(|(l, _)| matches!(l, Some(SeqLabel::Choose(_)))));
    }

    #[test]
    fn composite_fence_decomposes() {
        let (p, d) = dom_for("fence[sc];");
        let st = SeqState::new(&p, LocSet::new(), LocSet::new(), Memory::new());
        let at_fence = st.unlabeled_path(&d).last().unwrap().clone();
        let trans = at_fence.transitions(&d);
        assert!(trans
            .iter()
            .all(|(l, _)| matches!(l, Some(SeqLabel::RelFence { .. }))));
        // The follow-up step is the acquire part.
        let (_, after_rel) = &trans[0];
        let t2 = after_rel.transitions(&d);
        assert!(t2
            .iter()
            .all(|(l, _)| matches!(l, Some(SeqLabel::AcqFence { .. }))));
    }

    #[test]
    fn rmw_reads_and_writes() {
        let (p, d) = dom_for("r := fadd[rlx](frx, 1); return r;");
        let st = SeqState::new(&p, LocSet::new(), LocSet::new(), Memory::new());
        let at_rmw = st.unlabeled_path(&d).last().unwrap().clone();
        let trans = at_rmw.transitions(&d);
        assert_eq!(trans.len(), d.values.len());
        for (l, _) in &trans {
            let Some(SeqLabel::Rmw { read, write, .. }) = l else {
                panic!("expected RMW label");
            };
            match read {
                Value::Int(n) => assert_eq!(*write, Some(Value::Int(n + 1))),
                Value::Undef => assert_eq!(*write, Some(Value::Undef)),
            }
        }
    }

    #[test]
    fn footprint_and_domain_construction() {
        let src = parse_program("store[na](fp_a, 2); b := load[rlx](fp_b);").unwrap();
        let tgt = parse_program("store[na](fp_c, 5);").unwrap();
        let d = EnumDomain::for_pair(&src, &tgt);
        assert_eq!(d.na_locs.len(), 2); // fp_a, fp_c (fp_b is atomic)
        assert!(d.values.contains(&Value::Int(0)));
        assert!(d.values.contains(&Value::Int(2)));
        assert!(d.values.contains(&Value::Int(5)));
        assert!(d.values.contains(&Value::Int(6))); // fresh = max + 1
        assert!(d.values.contains(&Value::Undef));
    }

    #[test]
    fn no_mixing_check() {
        let ok_src = parse_program("store[na](nm_x, 1);").unwrap();
        let ok_tgt = parse_program("a := load[rlx](nm_y);").unwrap();
        assert!(EnumDomain::check_no_mixing(&ok_src, &ok_tgt).is_ok());
        let bad = parse_program("store[na](nm_z, 1); a := load[rlx](nm_z);").unwrap();
        assert_eq!(
            EnumDomain::check_no_mixing(&bad, &bad),
            Err(Loc::new("nm_z"))
        );
    }

    #[test]
    fn subsets_enumeration() {
        let locs = [Loc::new("ss_a"), Loc::new("ss_b")];
        let ss = subsets(&locs);
        assert_eq!(ss.len(), 4);
    }

    #[test]
    fn unlabeled_path_handles_silent_divergence() {
        let (p, d) = dom_for("while 1 { skip; }");
        let st = SeqState::new(&p, LocSet::new(), LocSet::new(), Memory::new());
        // Must terminate (cycle detection), not hang.
        let path = st.unlabeled_path(&d);
        assert!(!path.is_empty());
    }
}
